"""Packaging for the repro library and its consolidated CLI.

Kept as a plain ``setup.py`` so ``pip install -e .`` works on
environments whose setuptools is too old to build PEP 660 editable
wheels without the ``wheel`` package installed.  Installing registers
the ``repro`` console script — the same program as ``python -m repro``
(run / cache / distrib / serve / selftest subcommands).
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

# Single-source the version from the package; importing it here would
# drag in numpy at build time.
_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
VERSION = re.search(r'^__version__ = "([^"]+)"', _INIT.read_text(),
                    re.MULTILINE).group(1)

setup(
    name="repro",
    version=VERSION,
    description=("Behavioural reproduction of 'Energy-Modulated Computing' "
                 "(Yakovlev, DATE 2011) with a parallel, cacheable, "
                 "distributable experiment engine"),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
)
