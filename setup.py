"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists only so
that ``pip install -e .`` (and ``python setup.py develop``) work on
environments whose setuptools is too old to build PEP 660 editable wheels
without the ``wheel`` package installed.
"""

from setuptools import setup

setup()
