"""Scenario tests for Section II-B: battery-operated versus EH-based design.

The paper contrasts the two supply regimes directly: a battery "can supply
finite energy ... but while it is still operational the available power can
be very large" and is stable, whereas an energy harvester "can in principle
supply infinite energy, but the power levels may be small and variable".
These tests exercise the library's supply models against exactly that
contrast, plus the cold-start and drought behaviours an EH system must
survive.
"""

import pytest

from repro.core.design_styles import HybridDesign
from repro.core.power_adaptive import AdaptationPolicy, PowerAdaptiveController
from repro.errors import SupplyCollapseError
from repro.power.battery import Battery
from repro.power.capacitor import Capacitor
from repro.power.harvester import IntermittentHarvester, VibrationHarvester
from repro.power.power_chain import PowerChain
from repro.power.supply import ConstantSupply
from repro.selftimed.counter import SelfTimedCounter
from repro.sim.simulator import Simulator


class TestBatteryVersusHarvester:
    def test_battery_is_stable_until_it_dies(self):
        """Stable voltage while operational, then a hard end of life."""
        battery = Battery(nominal_voltage=1.0, capacity_joules=1e-3)
        voltages = []
        with pytest.raises(SupplyCollapseError):
            for step in range(10_000):
                voltages.append(battery.voltage(float(step)))
                battery.draw_charge(5e-7, float(step))
        # Up to the failure point the rail stayed within a narrow band.
        observed = voltages[: int(0.8 * len(voltages))]
        assert max(observed) - min(observed) < 0.2
        assert battery.empty

    def test_harvester_power_is_small_and_variable_but_unending(self):
        harvester = VibrationHarvester(peak_power=100e-6, wander=0.2, seed=3)
        samples = [harvester.available_power(float(t)) for t in range(0, 300, 3)]
        # Small (microwatts)...
        assert max(samples) < 1e-3
        # ...variable...
        assert max(samples) > 1.2 * min(samples)
        # ...and it never runs out: energy keeps accumulating.
        first = harvester.harvest(300.0, 10.0)
        second = harvester.harvest(310.0, 10.0)
        assert first > 0 and second > 0

    def test_same_counter_runs_from_either_source(self, tech):
        """The computational load does not care what is behind the rail."""
        results = {}
        for name, supply in (
                ("battery", Battery(nominal_voltage=0.8, capacity_joules=1e-6)),
                ("capacitor", Capacitor(capacitance=10e-9, initial_voltage=0.8,
                                        min_operating_voltage=tech.vdd_min)),
                ("ideal", ConstantSupply(0.8))):
            sim = Simulator()
            counter = SelfTimedCounter(sim, supply, tech, width=8,
                                       max_pulses=50)
            counter.start_oscillator()
            sim.run()
            results[name] = counter.pulses_generated
        # Plenty of energy in all three cases: every source yields all pulses.
        assert results["battery"] == results["capacitor"] == results["ideal"] == 50


class TestColdStartAndDrought:
    def test_chain_cold_start_charges_before_the_rail_comes_up(self):
        chain = PowerChain(
            harvester=VibrationHarvester(peak_power=300e-6, wander=0.0, seed=1),
            storage_capacitance=10e-6,
            output_voltage=0.5,
            initial_store_voltage=0.0,   # cold start
        )
        assert chain.output_rail.voltage(0.0) == 0.0
        chain.advance(5.0)
        assert chain.store.voltage(chain.time) > 0.0
        # Once the store clears the converter's brown-out threshold the rail
        # reaches its set-point.
        if chain.store.voltage(chain.time) > chain.converter.minimum_input_voltage:
            assert chain.output_rail.voltage(chain.time) == pytest.approx(0.5)

    def test_adaptive_controller_survives_a_long_drought(self, tech):
        harvester = IntermittentHarvester(peak_power=150e-6, mean_on_time=0.1,
                                          mean_off_time=1.0, seed=4)
        chain = PowerChain(harvester=harvester, storage_capacitance=22e-6,
                           initial_store_voltage=1.0)
        controller = PowerAdaptiveController(
            chain=chain, design=HybridDesign(tech),
            policy=AdaptationPolicy(store_low=0.6, store_high=1.8,
                                    vdd_floor=0.25, vdd_nominal=1.0,
                                    max_operations_per_step=20_000),
            step_interval=0.05)
        records = controller.run(3.0)
        # The loop never raised, the store never went negative, and the
        # controller throttled the rail well below nominal during droughts.
        assert len(records) == 60
        assert all(r.stored_energy >= 0.0 for r in records)
        assert min(r.target_voltage for r in records) < 0.75
        assert max(r.target_voltage for r in records) <= 1.0

    def test_drought_throttles_admitted_load(self, tech):
        rich = VibrationHarvester(peak_power=400e-6, wander=0.0, seed=5)
        poor = VibrationHarvester(peak_power=5e-6, wander=0.0, seed=5)
        admitted = {}
        for name, harvester in (("rich", rich), ("poor", poor)):
            chain = PowerChain(harvester=harvester, storage_capacitance=22e-6,
                               initial_store_voltage=0.9)
            controller = PowerAdaptiveController(
                chain=chain, design=HybridDesign(tech),
                policy=AdaptationPolicy(store_low=0.7, store_high=1.5,
                                        vdd_floor=0.25, vdd_nominal=1.0,
                                        max_operations_per_step=50_000),
                step_interval=0.05)
            controller.run(2.0)
            admitted[name] = controller.operations_done
        assert admitted["rich"] >= admitted["poor"]
