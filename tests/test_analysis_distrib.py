"""Tests for sharded multi-machine execution (:mod:`repro.analysis.distrib`).

The subsystem's contract: a plan partitions into content-addressed shards
whose concatenation is bit-identical to the serial executor; workers claim
shards through atomic, heartbeated leases (an expired lease is stolen, a
live one is exclusive); and the coordinator merges shard slices — and the
per-shard provenance — back into one result stored under the very key a
plain persistent-cache run would compute.

Everything here runs in-process (a :class:`Worker` object is just driven
by the test) except one smoke test of the real ``worker --once`` CLI; the
full multi-process fleet, including the kill-mid-lease reclaim, is
exercised by ``python -m repro.analysis.distrib --selftest``.
"""

import subprocess
import sys
import time

import pytest

from repro.analysis.cache import ResultCache, result_key
from repro.analysis.distrib import (
    DistribBackend,
    DistribJob,
    DistribTimeout,
    UnpicklablePayload,
    Worker,
    fleet_queue_stats,
    job_status,
    list_jobs,
    list_workers,
    main as distrib_main,
    merge_job,
    queue_summary,
    shard_key,
    submit,
    wait_for_job,
    worker_id,
)
from repro.analysis.runner import Executor, ExperimentPlan
from repro.errors import ConfigurationError

XS = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]


def _double(x):
    return 2.0 * x


def _square(x):
    return x * x


def _grid_sum(x, y):
    return x + 10.0 * y


def _mc_delay(perturbed):
    from repro.models.gate import GateModel

    return GateModel(technology=perturbed).delay(0.4)


def _explode_above_two(x):
    if x > 2.0:
        raise ValueError(f"boom at {x}")
    return x


def tiny_plan():
    """Plan factory used by the CLI tests (MODULE:CALLABLE spec)."""
    return ExperimentPlan.sweep("x", XS), {"double": _double}


@pytest.fixture()
def plan():
    return ExperimentPlan.sweep("x", XS)


@pytest.fixture()
def quantities():
    return {"double": _double, "square": _square}


class TestShardGeometry:
    def test_ranges_are_contiguous_and_balanced(self, plan):
        ranges = plan.shard_ranges(3)
        assert ranges == [(0, 3), (3, 5), (5, 7)]
        sizes = [stop - start for start, stop in ranges]
        assert max(sizes) <= 3
        assert max(sizes) - min(sizes) <= 1

    def test_one_shard_covers_everything(self, plan):
        assert plan.shard_ranges(100) == [(0, len(XS))]

    def test_invalid_shard_size_rejected(self, plan):
        with pytest.raises(ConfigurationError):
            plan.shard_ranges(0)

    def test_shard_keys_are_deterministic_and_distinct(self):
        assert shard_key("job", 0, 3) == shard_key("job", 0, 3)
        assert shard_key("job", 0, 3) != shard_key("job", 3, 6)
        assert shard_key("job", 0, 3) != shard_key("other", 0, 3)


class TestRunShard:
    def test_shard_concatenation_is_bit_identical(self, plan, quantities):
        full = Executor(workers=0).run(plan, quantities)
        merged = {name: [] for name in quantities}
        for start, stop in plan.shard_ranges(2):
            part = Executor(workers=0).run_shard(plan, quantities,
                                                 start, stop)
            for name in quantities:
                merged[name].extend(part[name])
        assert merged == full.values

    def test_monte_carlo_shards_keep_global_seed_streams(self, tech):
        plan = ExperimentPlan.monte_carlo(9, technology=tech, seed=11)
        full = Executor(workers=0).run(plan, {"d": _mc_delay})
        tail = Executor(workers=0).run_shard(plan, {"d": _mc_delay}, 6, 9)
        assert tail["d"] == full.values["d"][6:9]

    def test_out_of_range_shard_rejected(self, plan, quantities):
        executor = Executor(workers=0)
        with pytest.raises(ConfigurationError):
            executor.run_shard(plan, quantities, 3, 99)
        with pytest.raises(ConfigurationError):
            executor.run_shard(plan, quantities, -1, 2)
        with pytest.raises(ConfigurationError):
            executor.run_shard(plan, {}, 0, 1)


class TestSubmit:
    def test_manifest_round_trip(self, tmp_path, plan, quantities):
        job = submit(plan, quantities, root=tmp_path, shard_size=2)
        loaded = DistribJob.load(tmp_path, job.salt, job.key)
        assert loaded == job
        reloaded_plan, reloaded_quantities = loaded.load_payload()
        assert reloaded_plan == plan
        assert set(reloaded_quantities) == set(quantities)

    def test_submit_is_idempotent(self, tmp_path, plan, quantities):
        first = submit(plan, quantities, root=tmp_path, shard_size=2)
        second = submit(plan, quantities, root=tmp_path, shard_size=2)
        assert first == second
        assert len(list_jobs(tmp_path)) == 1

    def test_job_key_matches_the_persistent_cache_key(self, tmp_path, plan,
                                                      quantities):
        job = submit(plan, quantities, root=tmp_path)
        assert job.key == result_key(plan, quantities, salt=job.salt)

    def test_closure_payload_is_rejected(self, tmp_path, plan):
        scale = 3.0
        with pytest.raises(UnpicklablePayload):
            submit(plan, {"q": lambda x: scale * x}, root=tmp_path)

    def test_fresh_job_status_is_all_pending(self, tmp_path, plan,
                                             quantities):
        job = submit(plan, quantities, root=tmp_path, shard_size=2)
        status = job_status(job)
        assert status["done"] == 0
        assert status["total"] == len(job.shards)
        assert not status["complete"]
        assert all(s["state"] == "pending" for s in status["shards"])

    def test_cache_clear_removes_jobs_and_presence(self, tmp_path, plan,
                                                   quantities):
        job = submit(plan, quantities, root=tmp_path)
        worker = Worker(root=tmp_path)
        worker.announce()
        cache = ResultCache(root=tmp_path, mode="rw", salt=job.salt)
        # manifest + payload + presence file
        assert cache.clear() == 3
        assert list_jobs(tmp_path) == []
        assert list_workers(tmp_path) == []
        assert DistribJob.load(tmp_path, job.salt, job.key) is None

    def test_stale_clear_keeps_current_salt_jobs(self, tmp_path, plan,
                                                 quantities):
        current = submit(plan, quantities, root=tmp_path)
        submit(plan, quantities, root=tmp_path, salt="old-code")
        cache = ResultCache(root=tmp_path, mode="rw", salt=current.salt)
        assert cache.clear(stale_only=True) == 2  # old manifest + payload
        assert [job.key for job in list_jobs(tmp_path)] == [current.key]


class TestWorkerExecution:
    def test_worker_completes_a_job(self, tmp_path, plan, quantities):
        job = submit(plan, quantities, root=tmp_path, shard_size=2)
        worker = Worker(root=tmp_path)
        assert worker.run_once() == len(job.shards)
        status = job_status(job)
        assert status["complete"]
        serial = Executor(workers=0).run(plan, quantities)
        values, metas = merge_job(job)
        assert values == serial.values
        assert [m["worker"] for m in metas] == [worker.id] * len(job.shards)
        assert all(m["wall_time_s"] >= 0.0 for m in metas)

    def test_second_pass_finds_nothing_to_do(self, tmp_path, plan,
                                             quantities):
        submit(plan, quantities, root=tmp_path, shard_size=2)
        worker = Worker(root=tmp_path)
        assert worker.run_once() > 0
        assert worker.run_once() == 0

    def test_live_lease_is_respected(self, tmp_path, plan, quantities):
        job = submit(plan, quantities, root=tmp_path, shard_size=2)
        cache = ResultCache(root=tmp_path, mode="rw", salt=job.salt)
        assert cache.claim_lease(job.shards[0].key, "other-host:1", ttl=30.0)
        worker = Worker(root=tmp_path)
        assert worker.process_job(job) == len(job.shards) - 1
        assert not cache.has_result(job.shards[0].key)

    def test_expired_lease_is_reclaimed_and_completed(self, tmp_path, plan,
                                                      quantities):
        job = submit(plan, quantities, root=tmp_path, shard_size=2)
        cache = ResultCache(root=tmp_path, mode="rw", salt=job.salt)
        # A worker that died mid-shard: claimed, then stopped heartbeating.
        assert cache.claim_lease(job.shards[0].key, "dead-host:9", ttl=0.05)
        time.sleep(0.1)
        worker = Worker(root=tmp_path)
        assert worker.process_job(job) == len(job.shards)
        values, metas = merge_job(job)
        assert values == Executor(workers=0).run(plan, quantities).values
        assert metas[0]["worker"] == worker.id

    def test_worker_skips_jobs_of_other_code_versions(self, tmp_path, plan,
                                                      quantities, capsys):
        submit(plan, quantities, root=tmp_path, salt="other-code")
        worker = Worker(root=tmp_path)
        assert worker.run_once() == 0
        assert "salt" in capsys.readouterr().out

    def test_daemon_survives_a_poisoned_shard(self, tmp_path, capsys):
        # Shard size 1: points 1.0 and 2.0 succeed, the rest raise.
        plan = ExperimentPlan.sweep("x", XS)
        job = submit(plan, {"q": _explode_above_two}, root=tmp_path,
                     shard_size=1)
        worker = Worker(root=tmp_path)
        assert worker.run_once() == 2  # the healthy shards completed
        assert "boom" in capsys.readouterr().out
        # Poisoned shards are remembered, not hot-looped; their leases
        # were released so other workers may still try.
        assert worker.run_once() == 0
        cache = ResultCache(root=tmp_path, mode="ro", salt=job.salt)
        assert all(cache.lease_info(shard.key) is None
                   for shard in job.shards)
        assert not job_status(job)["complete"]

    def test_coordinator_propagates_quantity_errors(self, tmp_path):
        plan = ExperimentPlan.sweep("x", XS)
        job = submit(plan, {"q": _explode_above_two}, root=tmp_path,
                     shard_size=1)
        with pytest.raises(ValueError):
            wait_for_job(job, timeout_s=60.0)

    def test_worker_presence_announce_and_retire(self, tmp_path):
        worker = Worker(root=tmp_path)
        worker.announce()
        fleet = list_workers(tmp_path)
        assert [info["worker"] for info in fleet] == [worker.id]
        assert fleet[0]["age_s"] < 5.0
        worker.retire()
        assert list_workers(tmp_path) == []

    def test_torn_presence_objects_are_skipped_and_counted(self, tmp_path):
        import json as _json
        import time as _time

        worker = Worker(root=tmp_path)
        worker.announce()
        # A torn/partial write as a concurrent reader may observe it, a
        # wrong-typed heartbeat, and a foreign object under workers/.
        worker.store.put_atomic("workers/torn.json", b'{"worker": "x", "he')
        worker.store.put_atomic("workers/badtype.json", _json.dumps(
            {"worker": "y", "heartbeat": "soon"}).encode())
        worker.store.put_atomic("workers/notes.json", b'"operator note"')
        fleet = list_workers(tmp_path)
        assert [info["worker"] for info in fleet] == [worker.id]
        assert fleet.skipped == 3

        # A worker clock ahead of the reader's must clamp to age zero,
        # not report a negative heartbeat age.
        worker.store.put_atomic("workers/future.json", _json.dumps(
            {"worker": "z", "heartbeat": _time.time() + 3600.0}).encode())
        ages = {info["worker"]: info["age_s"]
                for info in list_workers(tmp_path)}
        assert ages["z"] == 0.0

    def test_status_surfaces_skipped_presences(self, tmp_path, capsys):
        import json as _json

        worker = Worker(root=tmp_path)
        worker.announce()
        worker.store.put_atomic("workers/torn.json", b'{"worker": "x", "he')
        assert distrib_main(["status", "--root", str(tmp_path),
                             "--json"]) == 0
        report = _json.loads(capsys.readouterr().out)
        assert len(report["workers"]) == 1
        assert report["workers_skipped"] == 1
        assert distrib_main(["status", "--root", str(tmp_path)]) == 0
        assert "1 unreadable worker presence" in capsys.readouterr().out


class TestCoordination:
    def test_participating_wait_needs_no_fleet(self, tmp_path, plan,
                                               quantities):
        job = submit(plan, quantities, root=tmp_path, shard_size=3)
        values, metas = wait_for_job(job, timeout_s=60.0)
        assert values == Executor(workers=0).run(plan, quantities).values
        assert len(metas) == len(job.shards)
        assert job_status(job)["merged"]

    def test_merged_job_feeds_the_plain_persistent_cache(self, tmp_path,
                                                         plan, quantities):
        job = submit(plan, quantities, root=tmp_path, shard_size=3)
        wait_for_job(job, timeout_s=60.0)
        replay = Executor(
            persistent=ResultCache(root=tmp_path, mode="ro")).run(
            plan, quantities)
        assert replay.provenance.executor == "persistent-cache"
        assert replay.values == Executor(workers=0).run(plan,
                                                        quantities).values

    def test_wait_heals_a_corrupt_merged_entry(self, tmp_path, plan,
                                               quantities):
        job = submit(plan, quantities, root=tmp_path, shard_size=3)
        cache = ResultCache(root=tmp_path, mode="rw", salt=job.salt)
        cache.store.put_atomic(cache._result_obj(job.key),
                               b"{corrupt leftover}")
        values, _ = wait_for_job(job, timeout_s=60.0)
        assert cache.load_result(job.key, list(job.names),
                                 job.points) == values

    def test_unattended_wait_times_out(self, tmp_path, plan, quantities):
        job = submit(plan, quantities, root=tmp_path)
        with pytest.raises(DistribTimeout):
            wait_for_job(job, participate=False, poll_s=0.01, timeout_s=0.1)

    def test_merge_refuses_partial_results(self, tmp_path, plan, quantities):
        job = submit(plan, quantities, root=tmp_path, shard_size=2)
        worker = Worker(root=tmp_path)
        cache = ResultCache(root=tmp_path, mode="rw", salt=job.salt)
        # Block the last shard so exactly one slice is missing.
        assert cache.claim_lease(job.shards[-1].key, "other:1", ttl=30.0)
        worker.process_job(job)
        with pytest.raises(ConfigurationError):
            merge_job(job)

    def test_monte_carlo_distributed_run_matches_serial(self, tmp_path,
                                                        tech):
        plan = ExperimentPlan.monte_carlo(8, technology=tech, seed=5)
        serial = Executor(workers=0).run(plan, {"d": _mc_delay})
        job = submit(plan, {"d": _mc_delay}, root=tmp_path, shard_size=3)
        values, _ = wait_for_job(job, timeout_s=120.0)
        assert values == serial.values


class TestExecutorBackend:
    def test_distributed_run_is_bit_identical(self, tmp_path, plan,
                                              quantities):
        serial = Executor(workers=0).run(plan, quantities)
        backend = DistribBackend(root=tmp_path, shard_size=2,
                                 timeout_s=60.0)
        distributed = Executor(distrib=backend).run(plan, quantities)
        assert distributed.values == serial.values

    def test_provenance_folds_per_shard_records(self, tmp_path, plan,
                                                quantities):
        backend = DistribBackend(root=tmp_path, shard_size=2,
                                 timeout_s=60.0)
        record = Executor(distrib=backend).run(plan, quantities).provenance
        assert record.executor == f"distrib[{len(record.shards)} shards]"
        assert len(record.shards) == len(plan.shard_ranges(2))
        assert sum(s["points"] for s in record.shards) == plan.point_count
        assert record.shard_workers == (worker_id(),)
        assert record.as_dict()["shards"] == [dict(s)
                                              for s in record.shards]

    def test_closure_quantities_fall_back_to_local(self, tmp_path, plan):
        scale = 4.0
        backend = DistribBackend(root=tmp_path, timeout_s=60.0)
        result = Executor(distrib=backend).run(plan,
                                               {"q": lambda x: scale * x})
        assert result.provenance.executor == "serial"
        assert result.provenance.shards == ()
        assert result.values["q"] == [scale * x for x in XS]

    def test_shared_root_keeps_the_fleet_provenance_meta(self, tmp_path,
                                                         plan, quantities):
        # Persistent cache and distrib backend over the SAME root: the
        # coordinator stores the merge under the job key with the fleet's
        # meta, and Executor.run must not re-store (and clobber) it.
        store = ResultCache(root=tmp_path, mode="rw")
        backend = DistribBackend(root=tmp_path, shard_size=2,
                                 timeout_s=60.0)
        result = Executor(persistent=store, distrib=backend).run(plan,
                                                                 quantities)
        assert result.provenance.executor.startswith("distrib[")
        meta = store.load_meta(store.result_key(plan, quantities))
        assert meta is not None and meta["distrib"] is True
        assert meta["workers"] == [worker_id()]

    def test_persistent_hit_short_circuits_distribution(self, tmp_path,
                                                        plan, quantities):
        store = ResultCache(root=tmp_path, mode="rw")
        Executor(persistent=store).run(plan, quantities)
        backend = DistribBackend(root=tmp_path / "unused", timeout_s=60.0)
        replay = Executor(persistent=store, distrib=backend).run(plan,
                                                                 quantities)
        assert replay.provenance.executor == "persistent-cache"
        assert not (tmp_path / "unused" / "jobs").exists()


class TestQueueStats:
    def test_queue_summary_counts_claimable_and_leased(self):
        statuses = [
            {"created": 100.0, "shards": [{"state": "pending"},
                                          {"state": "leased"}]},
            {"created": 50.0, "shards": [{"state": "done"},
                                         {"state": "expired"}]},
            {"created": 10.0, "shards": [{"state": "done"}]},
        ]
        stats = queue_summary(statuses, now=110.0)
        assert stats["jobs"] == 3
        # pending + expired are claimable; done jobs add nothing.
        assert stats["queue_depth"] == 2
        assert stats["leased"] == 1
        # The oldest job *with claimable work* (created=50), not the
        # oldest job overall (created=10, fully done).
        assert stats["oldest_unclaimed_age_s"] == 60.0

    def test_empty_queue_has_no_age(self):
        stats = queue_summary([])
        assert stats == {"jobs": 0, "queue_depth": 0, "leased": 0,
                         "oldest_unclaimed_age_s": None}

    def test_fleet_queue_stats_over_a_real_root(self, tmp_path, plan,
                                                quantities):
        job = submit(plan, quantities, root=tmp_path, shard_size=2)
        cache = ResultCache(root=tmp_path, mode="rw", salt=job.salt)
        assert cache.claim_lease(job.shards[0].key, "host:1", ttl=30.0)
        stats = fleet_queue_stats(tmp_path)
        assert stats["jobs"] == 1
        assert stats["queue_depth"] == len(job.shards) - 1
        assert stats["leased"] == 1
        assert stats["oldest_unclaimed_age_s"] >= 0.0
        # Drain the job: the queue empties and the age clears.
        assert cache.release_lease(job.shards[0].key, "host:1")
        Worker(root=tmp_path).run_once()
        drained = fleet_queue_stats(tmp_path)
        assert drained["queue_depth"] == 0
        assert drained["leased"] == 0
        assert drained["oldest_unclaimed_age_s"] is None

    def test_status_cli_reports_queue_pressure(self, tmp_path, capsys):
        import json

        root = str(tmp_path)
        assert distrib_main(["submit", "--root", root, "--plan",
                             "test_analysis_distrib:tiny_plan",
                             "--shard-size", "2"]) == 0
        capsys.readouterr()
        assert distrib_main(["status", "--root", root, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        shards = sum(len(j["shards"]) for j in payload["jobs"])
        assert payload["queue_depth"] == shards
        assert payload["leased"] == 0
        assert payload["oldest_unclaimed_age_s"] >= 0.0
        assert distrib_main(["status", "--root", root]) == 0
        text = capsys.readouterr().out
        assert f"queue: {shards} unclaimed shard(s)" in text


class TestCLI:
    def test_no_arguments_prints_help(self, capsys):
        assert distrib_main([]) == 2
        assert "worker" in capsys.readouterr().out

    def test_submit_status_run_round_trip(self, tmp_path, capsys):
        spec = "test_analysis_distrib:tiny_plan"
        root = str(tmp_path)
        assert distrib_main(["submit", "--root", root, "--plan", spec,
                             "--shard-size", "2"]) == 0
        assert "submitted job" in capsys.readouterr().out
        assert distrib_main(["status", "--root", root]) == 0
        assert "pending" in capsys.readouterr().out
        assert distrib_main(["run", "--root", root, "--plan", spec,
                             "--shard-size", "2", "--timeout", "60"]) == 0
        assert "merged" in capsys.readouterr().out
        plan, quantities = tiny_plan()
        values, _ = merge_job(list_jobs(tmp_path)[0])
        assert values == Executor(workers=0).run(plan, quantities).values

    def test_worker_skips_payloads_it_cannot_import(self, tmp_path, plan,
                                                    quantities, capsys,
                                                    monkeypatch):
        job = submit(plan, quantities, root=tmp_path, shard_size=2)
        worker = Worker(root=tmp_path)
        monkeypatch.setattr(DistribJob, "load_payload",
                            lambda self, store=None: (_ for _ in ()).throw(
                                ImportError("no module named elsewhere")))
        # A payload referencing a module this machine does not ship must
        # leave the job untouched for capable fleet members, not crash.
        assert worker.process_job(job) == 0
        assert "elsewhere" in capsys.readouterr().out
        assert not job_status(job)["done"]

    def test_worker_once_subprocess_executes_a_job(self, tmp_path):
        """One real ``worker --once`` process over a pre-submitted job.

        Uses the library's own :func:`selftest_plan` so the payload's
        quantities resolve inside the subprocess (a quantity defined in
        this test module would pickle by reference to a module the worker
        cannot import — exactly the skip case tested above).
        """
        from repro.analysis.distrib import selftest_plan
        import repro
        from pathlib import Path

        plan, quantities = selftest_plan()
        job = submit(plan, quantities, root=tmp_path, shard_size=4)
        completed = subprocess.run(
            [sys.executable, "-m", "repro.analysis.distrib", "worker",
             "--root", str(tmp_path), "--once"],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": str(Path(repro.__file__).parent.parent),
                 "PATH": "/usr/bin:/bin"})
        assert completed.returncode == 0, completed.stderr
        assert job_status(job)["complete"]
        values, metas = merge_job(job)
        assert values == Executor(workers=0).run(plan, quantities).values
        # The subprocess, not this test process, executed the shards.
        assert all(m["worker"] != worker_id() for m in metas)
