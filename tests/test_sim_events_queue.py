"""Tests for events and the event queue."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.events import Event, EventKind, make_stop_event
from repro.sim.scheduler import EventQueue


class TestEvent:
    def test_fire_runs_action(self):
        hits = []
        event = Event(time=1.0, action=lambda: hits.append(1))
        event.fire()
        assert hits == [1]

    def test_cancelled_event_does_not_run(self):
        hits = []
        event = Event(time=1.0, action=lambda: hits.append(1))
        event.cancel()
        event.fire()
        assert hits == []

    def test_sequence_numbers_increase(self):
        first = Event(time=0.0, action=lambda: None)
        second = Event(time=0.0, action=lambda: None)
        assert second.sequence > first.sequence

    def test_make_stop_event_kind(self):
        stop = make_stop_event(5.0)
        assert stop.time == 5.0
        assert stop.kind is EventKind.STOP


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        times = [3.0, 1.0, 2.0, 0.5]
        for t in times:
            queue.push(Event(time=t, action=lambda: None))
        popped = [queue.pop().time for _ in range(len(times))]
        assert popped == sorted(times)

    def test_equal_times_fifo_by_sequence(self):
        queue = EventQueue()
        labels = []
        for name in "abc":
            queue.push(Event(time=1.0, action=lambda: None, label=name))
        popped = [queue.pop().label for _ in range(3)]
        assert popped == ["a", "b", "c"]
        assert labels == []

    def test_priority_breaks_ties(self):
        queue = EventQueue()
        queue.push(Event(time=1.0, action=lambda: None, priority=5, label="low"))
        queue.push(Event(time=1.0, action=lambda: None, priority=-5, label="high"))
        assert queue.pop().label == "high"

    def test_len_and_counts(self):
        queue = EventQueue()
        assert len(queue) == 0
        queue.push(Event(time=0.0, action=lambda: None))
        queue.push(Event(time=1.0, action=lambda: None))
        assert len(queue) == 2
        assert queue.pushed_count == 2
        queue.pop()
        assert queue.popped_count == 1
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(Event(time=2.5, action=lambda: None))
        queue.push(Event(time=1.5, action=lambda: None))
        assert queue.peek_time() == 1.5

    def test_clear_empties_queue(self):
        queue = EventQueue()
        queue.push(Event(time=0.0, action=lambda: None))
        queue.clear()
        assert len(queue) == 0

    def test_prune_removes_cancelled(self):
        queue = EventQueue()
        keep = Event(time=1.0, action=lambda: None)
        drop = Event(time=2.0, action=lambda: None)
        queue.push(keep)
        queue.push(drop)
        drop.cancel()
        queue.prune()
        assert len(queue) == 1

    @given(st.lists(st.floats(min_value=0, max_value=1e3), min_size=1, max_size=40))
    def test_queue_is_a_total_order_property(self, times):
        queue = EventQueue()
        for t in times:
            queue.push(Event(time=t, action=lambda: None))
        out = [queue.pop().time for _ in range(len(times))]
        assert out == sorted(times)
