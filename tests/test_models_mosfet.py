"""Tests for the MOSFET current model."""

import pytest
from hypothesis import given, strategies as st

from repro.models.mosfet import MosfetModel


@pytest.fixture(scope="module")
def nmos(tech):
    return MosfetModel(tech)


class TestOnCurrent:
    def test_increases_with_gate_voltage(self, nmos):
        assert nmos.on_current(1.0) > nmos.on_current(0.6) > nmos.on_current(0.3)

    def test_positive_even_below_threshold(self, nmos, tech):
        # Sub-threshold conduction is the physical basis of 0.2 V operation.
        sub_vth = 0.2
        assert sub_vth < tech.vth
        assert nmos.on_current(sub_vth) > 0

    def test_subthreshold_current_is_exponential_like(self, nmos):
        # Equal voltage steps below threshold give (roughly) equal ratios.
        ratio1 = nmos.on_current(0.25) / nmos.on_current(0.20)
        ratio2 = nmos.on_current(0.20) / nmos.on_current(0.15)
        assert ratio1 == pytest.approx(ratio2, rel=0.35)

    def test_scales_with_width(self, tech):
        narrow = MosfetModel(tech, width_um=1.0)
        wide = MosfetModel(tech, width_um=4.0)
        assert wide.on_current(1.0) == pytest.approx(4 * narrow.on_current(1.0),
                                                     rel=1e-6)

    def test_vth_offset_weakens_device(self, tech):
        nominal = MosfetModel(tech)
        slow = MosfetModel(tech, vth_offset=0.05)
        assert slow.on_current(0.4) < nominal.on_current(0.4)

    def test_drive_derating_scales_current(self, tech):
        nominal = MosfetModel(tech)
        derated = MosfetModel(tech, drive_derating=0.5)
        assert derated.on_current(1.0) == pytest.approx(
            0.5 * nominal.on_current(1.0), rel=1e-6)


class TestLeakageAndRatio:
    def test_leakage_much_smaller_than_on_current(self, nmos, tech):
        vdd = tech.vdd_nominal
        assert nmos.leakage_current(vdd) < 1e-3 * nmos.on_current(vdd)

    def test_on_off_ratio_degrades_at_low_vdd(self, nmos):
        # At low Vdd the on-current collapses faster than leakage: the ratio
        # shrinks, which is why sub-threshold SRAM is hard (paper Sec. III-A).
        assert nmos.on_off_ratio(1.0) > nmos.on_off_ratio(0.3) > 1.0

    def test_discharge_time_increases_as_vdd_falls(self, nmos):
        cap = 10e-15
        assert (nmos.discharge_time(0.25, cap, 0.1)
                > nmos.discharge_time(0.5, cap, 0.1)
                > nmos.discharge_time(1.0, cap, 0.1) > 0)

    def test_discharge_time_scales_with_capacitance(self, nmos):
        t1 = nmos.discharge_time(0.6, 5e-15, 0.1)
        t2 = nmos.discharge_time(0.6, 10e-15, 0.1)
        assert t2 == pytest.approx(2 * t1, rel=0.05)


class TestEffectiveVth:
    def test_offset_moves_effective_vth(self, tech):
        assert (MosfetModel(tech, vth_offset=0.04).effective_vth
                == pytest.approx(MosfetModel(tech).effective_vth + 0.04))


@given(vgs=st.floats(min_value=0.15, max_value=1.2))
def test_on_current_monotone_in_vgs_property(vgs):
    from repro.models.technology import get_technology
    nmos = MosfetModel(get_technology("cmos90"))
    higher = min(1.25, vgs + 0.05)
    assert nmos.on_current(higher) >= nmos.on_current(vgs)
