"""Tests for repro.units."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestScaleHelpers:
    def test_time_scales(self):
        assert units.ms(1) == pytest.approx(1e-3)
        assert units.us(1) == pytest.approx(1e-6)
        assert units.ns(1) == pytest.approx(1e-9)
        assert units.ps(1) == pytest.approx(1e-12)
        assert units.seconds(2.5) == 2.5

    def test_electrical_scales(self):
        assert units.mv(200) == pytest.approx(0.2)
        assert units.ua(3) == pytest.approx(3e-6)
        assert units.na(3) == pytest.approx(3e-9)
        assert units.pf(10) == pytest.approx(10e-12)
        assert units.ff(10) == pytest.approx(10e-15)

    def test_energy_and_power_scales(self):
        assert units.pj(5.8) == pytest.approx(5.8e-12)
        assert units.fj(1) == pytest.approx(1e-15)
        assert units.nw(4.1) == pytest.approx(4.1e-9)
        assert units.uw(1) == pytest.approx(1e-6)
        assert units.mw(1) == pytest.approx(1e-3)

    def test_frequency_scales(self):
        assert units.khz(1) == pytest.approx(1e3)
        assert units.mhz(1) == pytest.approx(1e6)

    def test_scales_compose(self):
        # 1 MHz period is 1 us.
        assert 1.0 / units.mhz(1) == pytest.approx(units.us(1))


class TestThermalVoltage:
    def test_room_temperature_value(self):
        # kT/q at 300 K is about 25.85 mV.
        assert units.thermal_voltage() == pytest.approx(0.02585, rel=0.01)

    def test_scales_linearly_with_temperature(self):
        assert units.thermal_voltage(600.0) == pytest.approx(
            2.0 * units.thermal_voltage(300.0))


class TestEng:
    def test_engineering_notation_basic(self):
        text = units.eng(5.8e-12, "J")
        assert "p" in text and "J" in text

    def test_zero(self):
        assert "0" in units.eng(0.0, "V")

    def test_negative_value(self):
        assert units.eng(-1e-3, "A").startswith("-")


class TestClampLerp:
    def test_clamp_inside(self):
        assert units.clamp(0.5, 0.0, 1.0) == 0.5

    def test_clamp_below_and_above(self):
        assert units.clamp(-1.0, 0.0, 1.0) == 0.0
        assert units.clamp(2.0, 0.0, 1.0) == 1.0

    def test_lerp_endpoints(self):
        assert units.lerp(0.0, 0.0, 1.0, 10.0, 20.0) == pytest.approx(10.0)
        assert units.lerp(1.0, 0.0, 1.0, 10.0, 20.0) == pytest.approx(20.0)

    def test_lerp_midpoint(self):
        assert units.lerp(0.5, 0.0, 1.0, 10.0, 20.0) == pytest.approx(15.0)

    @given(st.floats(min_value=-10, max_value=10),
           st.floats(min_value=-5, max_value=5),
           st.floats(min_value=-5, max_value=5))
    def test_clamp_always_within_bounds(self, value, a, b):
        low, high = min(a, b), max(a, b)
        result = units.clamp(value, low, high)
        assert low <= result <= high

    @given(st.floats(min_value=0.01, max_value=1e6))
    def test_eng_round_trips_order_of_magnitude(self, value):
        text = units.eng(value)
        assert isinstance(text, str) and len(text) > 0
        assert not math.isnan(value)
