"""Tests for the analysis helpers (metrics, sweeps, Monte-Carlo, reports)."""

import math

import pytest

from repro.analysis.metrics import (
    crossover_voltage,
    energy_delay_product,
    minimum_energy_point,
    monotonicity_violations,
    ratio_between,
)
from repro.analysis.montecarlo import MonteCarloStudy, MonteCarloSummary
from repro.analysis.report import Table, format_series, format_table
from repro.analysis.sweep import Series, sweep, vdd_range
from repro.errors import ConfigurationError
from repro.models.gate import GateModel


class TestMetrics:
    def test_minimum_energy_point_of_a_parabola(self):
        vdd, energy = minimum_energy_point(lambda v: (v - 0.4) ** 2 + 1.0,
                                           0.2, 1.0, points=400)
        assert vdd == pytest.approx(0.4, abs=0.01)
        assert energy == pytest.approx(1.0, abs=0.01)

    def test_energy_delay_product(self):
        assert energy_delay_product(lambda v: 2.0, lambda v: 3.0, 0.5) == 6.0

    def test_ratio_between(self):
        assert ratio_between(lambda v: v * v, 1.0, 0.5) == pytest.approx(4.0)
        assert ratio_between(lambda v: v, 1.0, 0.0) == float("inf")

    def test_crossover_voltage_found(self):
        crossing = crossover_voltage(lambda v: v, lambda v: 0.5, 0.2, 1.0)
        assert crossing == pytest.approx(0.5, abs=0.01)

    def test_crossover_absent_returns_none(self):
        assert crossover_voltage(lambda v: 0.0, lambda v: 1.0, 0.2, 1.0) is None

    def test_monotonicity_violations(self):
        assert monotonicity_violations([1, 2, 3]) == 0
        assert monotonicity_violations([1, 3, 2, 5, 4]) == 2

    def test_invalid_ranges(self):
        with pytest.raises(ConfigurationError):
            minimum_energy_point(lambda v: v, 1.0, 0.5)
        with pytest.raises(ConfigurationError):
            crossover_voltage(lambda v: v, lambda v: v, 1.0, 0.5)


class TestSweep:
    def test_sweep_evaluates_all_quantities(self, tech):
        gate = GateModel(technology=tech)
        result = sweep("vdd", [0.3, 0.6, 1.0],
                       {"delay": gate.delay, "energy": gate.transition_energy})
        assert result.names == ["delay", "energy"]
        assert len(result["delay"].points) == 3
        assert result["delay"].value_at(0.3) > result["delay"].value_at(1.0)

    def test_series_argmin_argmax(self):
        series = Series("s", points=[(0.2, 5.0), (0.5, 1.0), (1.0, 3.0)])
        assert series.argmin() == (0.5, 1.0)
        assert series.argmax() == (0.2, 5.0)
        assert series.xs == [0.2, 0.5, 1.0]
        assert series.ys == [5.0, 1.0, 3.0]

    def test_series_ties_break_towards_smaller_x(self):
        series = Series("s", points=[(0.25, 1.0), (0.75, 2.0), (1.0, 1.0)])
        # Equal minima/maxima: the smaller x wins, deterministically.
        assert series.argmin() == (0.25, 1.0)
        assert Series("s", points=[(0.2, 2.0), (1.0, 2.0)]).argmax() == (0.2, 2.0)
        # 0.5 is exactly equidistant from the samples at 0.25 and 0.75.
        assert series.value_at(0.5) == 1.0

    def test_series_nan_raises_instead_of_propagating(self):
        nan = float("nan")
        series = Series("s", points=[(0.2, 1.0), (0.5, nan), (1.0, 3.0)])
        with pytest.raises(ConfigurationError):
            series.argmin()
        with pytest.raises(ConfigurationError):
            series.argmax()
        with pytest.raises(ConfigurationError):
            series.value_at(0.5)
        # A lookup that resolves to a non-NaN sample still succeeds.
        assert series.value_at(0.15) == 1.0

    def test_unknown_series_raises(self, tech):
        gate = GateModel(technology=tech)
        result = sweep("vdd", [0.5], {"delay": gate.delay})
        with pytest.raises(ConfigurationError):
            result["missing"]

    def test_vdd_range_inclusive(self):
        values = vdd_range(0.2, 1.0, 5)
        assert values[0] == pytest.approx(0.2)
        assert values[-1] == pytest.approx(1.0)
        assert len(values) == 5

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep("vdd", [], {"f": lambda v: v})
        with pytest.raises(ConfigurationError):
            sweep("vdd", [1.0], {})


class TestMonteCarlo:
    def test_summary_statistics(self):
        summary = MonteCarloSummary(samples=[1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.count == 5
        assert summary.mean == pytest.approx(3.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.std == pytest.approx(math.sqrt(2.5))
        assert summary.percentile(0.0) == 1.0
        assert summary.percentile(1.0) == 5.0
        assert summary.failure_fraction(lambda x: x > 4.5) == pytest.approx(0.2)

    def test_empty_summary_rejected(self):
        with pytest.raises(ConfigurationError):
            MonteCarloSummary(samples=[])

    def test_study_is_reproducible_and_spreads(self, tech):
        def read_delay(perturbed):
            return GateModel(technology=perturbed).delay(0.4)

        study_a = MonteCarloStudy(tech, read_delay, seed=11)
        study_b = MonteCarloStudy(tech, read_delay, seed=11)
        summary_a = study_a.run(samples=40)
        summary_b = study_b.run(samples=40)
        assert summary_a.samples == summary_b.samples
        assert summary_a.relative_spread > 0.0
        assert study_a.nominal() > 0.0

    def test_variation_is_larger_at_low_vdd(self, tech):
        """Sub-threshold operation amplifies Vth variation — why corner
        analysis matters for the 0.2 V claims."""
        def delay_at(vdd):
            return MonteCarloStudy(
                tech, lambda t: GateModel(technology=t).delay(vdd), seed=5,
            ).run(samples=60).relative_spread

        assert delay_at(0.25) > delay_at(1.0)


class TestReport:
    def test_format_table_alignment_and_units(self):
        text = format_table("Energy per write", ["Vdd", "energy"],
                            [[1.0, 5.8e-12], [0.4, 1.9e-12]],
                            unit_hints=["V", "J"])
        assert "Energy per write" in text
        assert "Vdd" in text
        lines = text.splitlines()
        assert len(lines) == 5
        assert "pJ" in text

    def test_table_object_add_row_checks_width(self):
        table = Table("caption", headers=["a", "b"])
        table.add_row(1, 2)
        with pytest.raises(ConfigurationError):
            table.add_row(1)
        assert "caption" in table.render()

    def test_format_series(self):
        text = format_series("count vs vdd", [0.4, 0.8], [100, 200],
                             x_label="Vdd", y_label="count", x_unit="V")
        assert "count vs vdd" in text
        assert "Vdd" in text and "count" in text

    def test_mismatched_series_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            format_series("x", [1.0], [1.0, 2.0])

    def test_unit_hints_must_match_headers(self):
        with pytest.raises(ConfigurationError):
            format_table("c", ["a", "b"], [[1, 2]], unit_hints=["V"])
