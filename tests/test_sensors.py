"""Tests for the three voltage-sensing styles and the calibration machinery."""

import pytest

from repro.errors import CalibrationError, ConfigurationError, SensorError
from repro.power.supply import ConstantSupply
from repro.sensors.calibration import CalibrationTable, build_calibration
from repro.sensors.charge_to_digital import ChargeToDigitalConverter
from repro.sensors.reference_free import ReferenceFreeVoltageSensor
from repro.sensors.ring_oscillator import RingOscillatorSensor
from repro.analysis.metrics import monotonicity_violations


class TestCalibrationTable:
    def test_voltage_for_code_interpolates(self):
        table = CalibrationTable(points=[(10.0, 0.2), (20.0, 0.4), (30.0, 0.6)])
        assert table.voltage_for_code(15.0) == pytest.approx(0.3)
        assert table.voltage_for_code(30.0) == pytest.approx(0.6)

    def test_code_for_voltage_is_the_inverse(self):
        table = CalibrationTable(points=[(10.0, 0.2), (30.0, 0.6)])
        assert table.code_for_voltage(0.4) == pytest.approx(20.0)

    def test_resolution_reported_in_volts_per_code(self):
        table = CalibrationTable(points=[(0.0, 0.2), (100.0, 1.2)])
        assert table.resolution_at(0.5) == pytest.approx(0.01)
        assert table.worst_resolution() >= table.resolution_at(0.5) - 1e-12

    def test_ranges(self):
        table = CalibrationTable(points=[(5.0, 0.2), (50.0, 1.0)])
        assert table.code_range == (5.0, 50.0)
        assert table.voltage_range == (0.2, 1.0)

    def test_build_calibration_from_measurement_function(self):
        table = build_calibration(lambda v: 100.0 * v, [0.2, 0.4, 0.6, 0.8, 1.0])
        assert table.voltage_for_code(50.0) == pytest.approx(0.5, abs=0.01)

    def test_degenerate_calibration_rejected(self):
        with pytest.raises((CalibrationError, ConfigurationError)):
            CalibrationTable(points=[(1.0, 0.5)])


class TestRingOscillatorSensor:
    def test_frequency_increases_with_vdd(self, tech):
        sensor = RingOscillatorSensor(technology=tech)
        assert sensor.frequency(1.0) > sensor.frequency(0.5) > sensor.frequency(0.3)

    def test_raw_code_counts_cycles_in_the_window(self, tech):
        sensor = RingOscillatorSensor(technology=tech, measurement_window=1e-6)
        code = sensor.raw_code(0.8)
        assert code == pytest.approx(sensor.frequency(0.8) * 1e-6, rel=0.01)

    def test_calibrated_measurement_recovers_voltage(self, tech):
        sensor = RingOscillatorSensor(technology=tech)
        sensor.calibrate([0.2 + 0.05 * i for i in range(17)])
        for vdd in (0.3, 0.55, 0.9):
            assert sensor.measure(vdd) == pytest.approx(vdd, abs=0.02)

    def test_reference_error_degrades_accuracy(self, tech):
        """This baseline *needs* a time reference; the paper's sensors do not."""
        good = RingOscillatorSensor(technology=tech, reference_error=0.0)
        bad = RingOscillatorSensor(technology=tech, reference_error=0.1)
        voltages = [0.2 + 0.05 * i for i in range(17)]
        good.calibrate(voltages)
        bad.calibrate(voltages)
        assert bad.measurement_error(0.6) >= good.measurement_error(0.6)

    def test_energy_per_measurement_positive(self, tech):
        sensor = RingOscillatorSensor(technology=tech)
        assert sensor.energy_per_measurement(0.5) > 0


class TestChargeToDigitalConverter:
    @pytest.fixture(scope="class")
    def converter(self, tech):
        return ChargeToDigitalConverter(technology=tech,
                                        sampling_capacitance=30e-12)

    def test_conversion_produces_a_count_and_drains_the_cap(self, converter, tech):
        result = converter.convert(ConstantSupply(0.8))
        assert result.sampled_voltage == pytest.approx(0.8, rel=1e-3)
        assert result.count > 0
        assert result.final_voltage <= 2 * tech.vdd_min
        assert result.energy_consumed > 0
        assert result.conversion_time > 0

    def test_count_monotone_in_sampled_voltage(self, converter):
        """Fig. 11: the code grows with the initial capacitor voltage."""
        counts = [converter.convert(ConstantSupply(v)).count
                  for v in (0.3, 0.5, 0.7, 0.9)]
        assert monotonicity_violations(counts) == 0
        assert counts[-1] > counts[0]

    def test_zero_input_gives_zero_count(self, converter, tech):
        result = converter.convert(ConstantSupply(tech.vdd_min * 0.5))
        assert result.count == 0

    def test_predicted_count_tracks_simulation(self, converter):
        simulated = converter.convert(ConstantSupply(0.6)).count
        predicted = converter.predicted_count(0.6)
        assert predicted == pytest.approx(simulated, rel=0.25)

    def test_charge_per_count_roughly_constant(self, converter):
        """The paper's 'strong proportionality between charge and counts'."""
        r1 = converter.convert(ConstantSupply(0.5))
        r2 = converter.convert(ConstantSupply(1.0))
        assert r2.charge_consumed > r1.charge_consumed
        assert r1.charge_per_count == pytest.approx(r2.charge_per_count, rel=0.35)

    def test_larger_capacitor_gives_finer_codes(self, tech):
        small = ChargeToDigitalConverter(technology=tech, sampling_capacitance=10e-12)
        large = ChargeToDigitalConverter(technology=tech, sampling_capacitance=60e-12)
        assert (large.convert(ConstantSupply(0.8)).count
                > small.convert(ConstantSupply(0.8)).count)

    def test_measure_requires_calibration(self, tech):
        sensor = ChargeToDigitalConverter(technology=tech)
        with pytest.raises(SensorError):
            sensor.measure(ConstantSupply(0.5))

    def test_calibrated_measurement_recovers_voltage(self, tech):
        sensor = ChargeToDigitalConverter(technology=tech)
        sensor.calibrate([0.3 + 0.1 * i for i in range(8)], use_simulation=True)
        assert sensor.measure(ConstantSupply(0.65)) == pytest.approx(0.65, abs=0.03)

    def test_energy_per_conversion_is_small(self, converter):
        # Only the sampling charge is taken from the measured node.
        assert converter.energy_per_conversion(1.0) < 100e-12


class TestReferenceFreeVoltageSensor:
    @pytest.fixture(scope="class")
    def sensor(self, tech):
        return ReferenceFreeVoltageSensor(technology=tech)

    def test_code_decreases_as_vdd_rises(self, sensor):
        """The SRAM catches up with the inverter ruler at high Vdd (Fig. 12)."""
        codes = [sensor.raw_code(v) for v in (0.25, 0.4, 0.6, 0.8, 1.0)]
        assert monotonicity_violations(list(reversed(codes))) == 0
        assert codes[0] > codes[-1]

    def test_race_reports_delays_and_code(self, sensor):
        result = sensor.race(0.5)
        assert result.sram_delay > 0
        assert result.ruler_stage_delay > 0
        assert result.thermometer_code > 0
        assert len(result.thermometer_bits(result.thermometer_code + 2)) == \
            result.thermometer_code + 2

    def test_below_functional_minimum_rejected(self, sensor, tech):
        with pytest.raises(SensorError):
            sensor.race(tech.vdd_min * 0.5)

    def test_paper_accuracy_10mv_over_operating_range(self, sensor):
        """Paper: 0.2-1 V range with ~10 mV accuracy, no analog references."""
        calibration_points = [0.2 + 0.01 * i for i in range(81)]
        sensor.calibrate(calibration_points)
        probe_points = [0.225 + 0.05 * i for i in range(15)]
        assert sensor.worst_case_accuracy(probe_points) <= 0.010 + 1e-9

    def test_measure_requires_calibration(self, tech):
        fresh = ReferenceFreeVoltageSensor(technology=tech)
        with pytest.raises(SensorError):
            fresh.measure(0.5)

    def test_energy_per_measurement_positive(self, sensor):
        assert sensor.energy_per_measurement(0.5) > 0

    def test_operating_range_spans_the_paper_window(self, sensor):
        low, high = sensor.operating_range()
        assert low <= 0.25
        assert high >= 0.9
