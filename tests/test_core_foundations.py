"""Tests for QoS curves, proportionality metrics, design styles and Petri nets."""

import pytest

from repro.core.design_styles import (
    BundledDataDesign,
    HybridDesign,
    SpeedIndependentDesign,
)
from repro.core.energy_tokens import EnergyTokenNet
from repro.core.petri import PetriNet
from repro.core.proportionality import (
    ProportionalityCurve,
    build_proportionality_curve,
    dynamic_range,
    proportionality_index,
)
from repro.core.qos import QoSCurve, QoSMetric, qos_vs_vdd
from repro.errors import ConfigurationError, SchedulerError


@pytest.fixture(scope="module")
def design1(tech):
    return SpeedIndependentDesign(tech)


@pytest.fixture(scope="module")
def design2(tech):
    return BundledDataDesign(tech)


@pytest.fixture(scope="module")
def hybrid(tech):
    return HybridDesign(tech)


VDD_SWEEP = [0.15 + 0.05 * i for i in range(18)]  # 0.15 .. 1.0


class TestDesignStyles:
    def test_design1_functional_much_lower_than_design2(self, design1, design2):
        assert (design1.minimum_operating_voltage()
                < design2.minimum_operating_voltage() - 0.1)

    def test_design2_more_efficient_at_nominal(self, design1, design2):
        assert design2.energy_per_operation(1.0) < design1.energy_per_operation(1.0)
        assert design2.leakage_power(1.0) < design1.leakage_power(1.0)

    def test_design1_delivers_where_design2_cannot(self, design1, design2):
        vdd = design2.minimum_operating_voltage() - 0.1
        assert design1.throughput(vdd) > 0
        assert design2.throughput(vdd) == 0.0

    def test_power_includes_leakage_and_scales_with_utilisation(self, design1):
        idle = design1.power(0.8, utilisation=0.0)
        busy = design1.power(0.8, utilisation=1.0)
        assert idle == pytest.approx(design1.leakage_power(0.8))
        assert busy > idle
        with pytest.raises(ConfigurationError):
            design1.power(0.8, utilisation=1.5)

    def test_operations_per_joule_zero_when_off(self, design2):
        low = design2.minimum_operating_voltage() - 0.1
        assert design2.operations_per_joule(low) == 0.0
        assert design2.operations_per_joule(1.0) > 0.0

    def test_hybrid_inherits_design1_floor_and_design2_efficiency(self, hybrid,
                                                                  design1, design2):
        assert hybrid.minimum_operating_voltage() == pytest.approx(
            design1.minimum_operating_voltage())
        # At nominal the hybrid costs close to Design 2 (plus a small wrapper tax).
        assert hybrid.energy_per_operation(1.0) < design1.energy_per_operation(1.0)
        assert hybrid.energy_per_operation(1.0) < 1.3 * design2.energy_per_operation(1.0)

    def test_hybrid_switches_style_at_the_switch_voltage(self, hybrid):
        below = hybrid.switch_voltage - 0.05
        above = hybrid.switch_voltage + 0.05
        assert hybrid.active_design(below).name.startswith("design1")
        assert hybrid.active_design(above).name.startswith("design2")

    def test_invalid_construction(self, tech):
        with pytest.raises(ConfigurationError):
            SpeedIndependentDesign(tech, logic_depth=0)
        with pytest.raises(ConfigurationError):
            HybridDesign(tech, guard_band=-0.1)


class TestQoS:
    def test_fig2_onset_ordering(self, design1, design2):
        """Fig. 2: Design 1 starts delivering QoS at lower Vdd than Design 2."""
        curve1 = qos_vs_vdd(design1, VDD_SWEEP)
        curve2 = qos_vs_vdd(design2, VDD_SWEEP)
        assert curve1.onset_voltage() < curve2.onset_voltage()

    def test_fig2_power_efficiency_ordering_at_nominal(self, design1, design2):
        """Fig. 2: at nominal Vdd, Design 2 returns more QoS per watt invested."""
        qos_per_watt_1 = design1.throughput(1.0) / design1.power(1.0)
        qos_per_watt_2 = design2.throughput(1.0) / design2.power(1.0)
        assert qos_per_watt_2 > qos_per_watt_1
        # And per joule, which is the same statement phrased as the QoS metric.
        curve1 = qos_vs_vdd(design1, VDD_SWEEP, metric=QoSMetric.OPERATIONS_PER_JOULE)
        curve2 = qos_vs_vdd(design2, VDD_SWEEP, metric=QoSMetric.OPERATIONS_PER_JOULE)
        assert curve2.qos_at(1.0) > curve1.qos_at(1.0)

    def test_normalised_peak_is_one(self, design1):
        curve = qos_vs_vdd(design1, VDD_SWEEP).normalised()
        assert curve.peak()[1] == pytest.approx(1.0)

    def test_qos_at_nearest_point(self):
        curve = QoSCurve("d", QoSMetric.THROUGHPUT, [(0.2, 1.0), (0.4, 2.0)])
        assert curve.qos_at(0.29) == 1.0
        assert curve.qos_at(0.31) == 2.0

    def test_hybrid_tracks_the_better_design_everywhere(self, hybrid, design1,
                                                        design2):
        for vdd in (0.2, 0.4, 0.8, 1.0):
            hybrid_tp = hybrid.throughput(vdd)
            assert hybrid_tp >= min(design1.throughput(vdd), design2.throughput(vdd))

    def test_empty_sweep_rejected(self, design1):
        with pytest.raises(ConfigurationError):
            qos_vs_vdd(design1, [])


class TestProportionality:
    def test_perfectly_proportional_curve_scores_one(self):
        curve = ProportionalityCurve("ideal", [(1.0, 10.0), (2.0, 20.0), (4.0, 40.0)])
        assert proportionality_index(curve) == pytest.approx(1.0, abs=0.15)

    def test_fixed_overhead_curve_scores_lower(self):
        ideal = ProportionalityCurve("ideal", [(1.0, 10.0), (10.0, 100.0)])
        lazy = ProportionalityCurve("lazy", [(1.0, 0.0), (8.0, 0.0), (10.0, 100.0)])
        assert proportionality_index(lazy) < proportionality_index(ideal)

    def test_dynamic_range(self):
        curve = ProportionalityCurve("c", [(1e-9, 0.0), (1e-8, 5.0), (1e-6, 50.0)])
        assert dynamic_range(curve) == pytest.approx(100.0)

    def test_activity_interpolation(self):
        curve = ProportionalityCurve("c", [(0.0, 0.0), (2.0, 10.0)])
        assert curve.activity_at(1.0) == pytest.approx(5.0)
        assert curve.activity_at(5.0) == pytest.approx(10.0)

    def test_build_curve_from_function(self):
        curve = build_proportionality_curve("f", lambda e: 3.0 * e,
                                            [0.1, 1.0, 2.0, 3.0])
        assert proportionality_index(curve) > 0.9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProportionalityCurve("bad", [(1.0, 1.0)])
        with pytest.raises(ConfigurationError):
            ProportionalityCurve("bad", [(2.0, 1.0), (1.0, 2.0)])


class TestPetriNet:
    def build_producer_consumer(self):
        net = PetriNet("pc")
        net.add_place("free", tokens=2, capacity=2)
        net.add_place("full", tokens=0, capacity=2)
        net.add_transition("produce", {"free": 1}, {"full": 1})
        net.add_transition("consume", {"full": 1}, {"free": 1})
        return net

    def test_enabling_and_firing(self):
        net = self.build_producer_consumer()
        assert net.is_enabled("produce")
        assert not net.is_enabled("consume")
        net.fire("produce")
        assert net.marking() == {"free": 1, "full": 1}
        assert net.is_enabled("consume")

    def test_firing_disabled_transition_raises(self):
        net = self.build_producer_consumer()
        with pytest.raises(SchedulerError):
            net.fire("consume")

    def test_capacity_blocks_enabling(self):
        net = PetriNet()
        net.add_place("p", tokens=0, capacity=1)
        net.add_place("src", tokens=5)
        net.add_transition("t", {"src": 1}, {"p": 1})
        net.fire("t")
        assert not net.is_enabled("t")

    def test_run_until_quiescence_is_deterministic(self):
        net = PetriNet()
        net.add_place("a", tokens=3)
        net.add_place("b", tokens=0)
        net.add_transition("move", {"a": 1}, {"b": 1})
        fired = net.run()
        assert fired == ["move"] * 3
        assert net.is_deadlocked()

    def test_policy_orders_conflicting_transitions(self):
        net = PetriNet()
        net.add_place("shared", tokens=1)
        net.add_place("out1", tokens=0)
        net.add_place("out2", tokens=0)
        net.add_transition("t1", {"shared": 1}, {"out1": 1})
        net.add_transition("t2", {"shared": 1}, {"out2": 1})
        fired = net.run(policy=["t2", "t1"])
        assert fired == ["t2"]

    def test_duplicate_names_rejected(self):
        net = PetriNet()
        net.add_place("p")
        with pytest.raises(ConfigurationError):
            net.add_place("p")
        net.add_transition("t", {}, {"p": 1})
        with pytest.raises(ConfigurationError):
            net.add_transition("t", {}, {"p": 1})

    def test_unknown_place_in_arcs_rejected(self):
        net = PetriNet()
        with pytest.raises(ConfigurationError):
            net.add_transition("t", {"missing": 1}, {})


class TestEnergyTokenNet:
    def build_sensor_node_net(self, quantum=1e-9, capacity=None):
        net = EnergyTokenNet(joules_per_token=quantum,
                             energy_capacity_tokens=capacity)
        net.add_place("sample_ready", tokens=1)
        net.add_place("sample_done", tokens=0)
        net.add_energy_transition("sense", {"sample_ready": 1},
                                  {"sample_done": 1}, energy_tokens=2,
                                  useful_work=1.0)
        net.add_energy_transition("transmit", {"sample_done": 1}, {},
                                  energy_tokens=5, useful_work=4.0)
        return net

    def test_transitions_blocked_until_energy_arrives(self):
        net = self.build_sensor_node_net()
        assert not net.is_enabled("sense")
        assert net.starved_transitions() == {"sense": 2}
        net.deposit_energy(2e-9)
        assert net.is_enabled("sense")

    def test_energy_bookkeeping(self):
        net = self.build_sensor_node_net()
        net.deposit_energy(10e-9)
        net.fire("sense")
        net.fire("transmit")
        assert net.energy_spent == pytest.approx(7e-9)
        assert net.stored_energy == pytest.approx(3e-9)
        assert net.useful_work_done() == pytest.approx(5.0)
        assert net.energy_efficiency() == pytest.approx(5.0 / 10e-9, rel=1e-6)

    def test_fractional_deposits_accumulate(self):
        net = self.build_sensor_node_net(quantum=1e-9)
        for _ in range(4):
            net.deposit_energy(0.5e-9)
        assert net.energy_place.place.tokens == 2

    def test_storage_capacity_overflows_are_accounted(self):
        net = self.build_sensor_node_net(capacity=3)
        net.deposit_energy(10e-9)
        assert net.energy_place.place.tokens == 3
        assert net.energy_wasted == pytest.approx(7e-9)

    def test_zero_cost_transition_never_starves(self):
        net = EnergyTokenNet(joules_per_token=1e-9)
        net.add_place("go", tokens=1)
        net.add_energy_transition("free", {"go": 1}, {}, energy_tokens=0)
        assert net.is_enabled("free")
        assert net.starved_transitions() == {}

    def test_invalid_quantum_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyTokenNet(joules_per_token=0.0)
