"""Tests for the assembled SI SRAM, the bundled baseline and replica bundling."""

import pytest

from repro.errors import AddressError, ConfigurationError
from repro.power.supply import ConstantSupply, PiecewiseSupply
from repro.selftimed.bundled import TimingViolation
from repro.sim.simulator import Simulator
from repro.sram.bundling import ReplicaColumnBundling
from repro.sram.sram import BundledSRAM, SRAMConfig, SpeedIndependentSRAM


class TestSRAMConfig:
    def test_default_matches_the_paper(self):
        config = SRAMConfig()
        assert config.rows == 64
        assert config.columns == 16
        assert config.bits == 1024

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            SRAMConfig(rows=1)
        with pytest.raises(ConfigurationError):
            SRAMConfig(columns=0)


class TestSpeedIndependentSRAMAnalytical:
    def test_storage_peek_poke(self, fresh_si_sram):
        sram = fresh_si_sram
        assert sram.peek(5) is None
        sram.poke(5, 0xBEEF & 0xFFFF)
        assert sram.peek(5) == 0xBEEF & 0xFFFF
        assert sram.stored_words() == 1

    def test_address_and_value_bounds(self, fresh_si_sram):
        with pytest.raises(AddressError):
            fresh_si_sram.peek(64)
        with pytest.raises(ConfigurationError):
            fresh_si_sram.poke(0, 1 << 16)

    def test_operates_across_the_paper_voltage_range(self, si_sram):
        assert si_sram.minimum_operating_voltage() < 0.25
        for vdd in (0.25, 0.4, 0.7, 1.0):
            assert si_sram.read_latency(vdd) > 0
            assert si_sram.write_latency(vdd) > 0

    def test_latency_grows_monotonically_as_vdd_drops(self, si_sram):
        voltages = [1.0, 0.8, 0.6, 0.4, 0.3, 0.25]
        latencies = [si_sram.write_latency(v) for v in voltages]
        assert all(b > a for a, b in zip(latencies, latencies[1:]))

    def test_write_energy_matches_paper_anchors(self, si_sram):
        """Paper: 5.8 pJ per 16-bit write at 1 V, 1.9 pJ at 0.4 V."""
        assert si_sram.write_energy(1.0) == pytest.approx(5.8e-12, rel=0.05)
        assert si_sram.write_energy(0.4) == pytest.approx(1.9e-12, rel=0.05)

    def test_minimum_energy_point_near_0v4(self, si_sram):
        """Paper: 'minimum energy point per read or write at 0.4 V'."""
        model = si_sram.energy_model("write")
        vdd_opt, _ = model.minimum_energy_point(0.2, 1.0)
        assert 0.3 <= vdd_opt <= 0.55

    def test_read_cheaper_than_write(self, si_sram):
        assert si_sram.read_energy(1.0) < si_sram.write_energy(1.0) * 1.5

    def test_leakage_power_positive_and_voltage_dependent(self, si_sram):
        assert si_sram.total_leakage_power(1.0) > si_sram.total_leakage_power(0.3) > 0

    def test_uncalibrated_config_skips_energy_fit(self, tech):
        raw = SpeedIndependentSRAM(tech, SRAMConfig(calibrate_energy=False))
        assert raw.dynamic_energy_scale == 1.0
        assert raw.leakage_energy_scale == 1.0


class TestSpeedIndependentSRAMEventDriven:
    def test_write_then_read_through_the_controller(self, tech, small_sram_config):
        sram = SpeedIndependentSRAM(tech, small_sram_config)
        sim = Simulator()
        controller = sram.attach(sim, ConstantSupply(1.0))
        results = []
        controller.write(3, 0b1010,
                         on_complete=lambda rec, val: results.append(("w", val)))
        sim.run()
        controller.read(3, on_complete=lambda rec, val: results.append(("r", val)))
        sim.run()
        assert sram.peek(3) == 0b1010
        assert ("r", 0b1010) in results

    def test_operation_record_has_phases_and_latency(self, tech, small_sram_config):
        sram = SpeedIndependentSRAM(tech, small_sram_config)
        sim = Simulator()
        controller = sram.attach(sim, ConstantSupply(1.0))
        controller.write(1, 5)
        sim.run()
        record = controller.last_record()
        assert record.latency > 0
        assert record.energy > 0
        phase_names = [phase.name for phase in record.phases]
        assert any("precharge" in name for name in phase_names)

    def test_fig7_write_slower_at_low_vdd(self, tech, small_sram_config):
        """Fig. 7: the first (low-Vdd) write takes much longer than the second."""
        latencies = {}
        for vdd in (0.25, 1.0):
            sram = SpeedIndependentSRAM(tech, small_sram_config)
            sim = Simulator()
            controller = sram.attach(sim, ConstantSupply(vdd))
            controller.write(0, 1)
            sim.run()
            latencies[vdd] = controller.last_record().latency
        assert latencies[0.25] > 3 * latencies[1.0]
        # Both writes still committed the data — only the speed changed.

    def test_busy_controller_rejects_overlapping_operations(self, tech,
                                                            small_sram_config):
        sram = SpeedIndependentSRAM(tech, small_sram_config)
        sim = Simulator()
        controller = sram.attach(sim, ConstantSupply(1.0))
        controller.write(0, 1)
        with pytest.raises(ConfigurationError):
            controller.read(0)
        sim.run()

    def test_operation_survives_a_supply_dip(self, tech, small_sram_config):
        """The supply droops mid-operation; the handshake stretches, data lands."""
        sram = SpeedIndependentSRAM(tech, small_sram_config)
        sim = Simulator()
        supply = PiecewiseSupply([(0.0, 1.0), (20e-12, 0.1), (5e-6, 0.8)])
        controller = sram.attach(sim, supply)
        controller.write(2, 0b111)
        sim.run_until_idle(max_time=1e-3)
        assert sram.peek(2) == 0b111
        # The dip stretched the operation well past its nominal ~0.1 ns latency.
        assert controller.last_record().latency > 1e-6


class TestBundledSRAM:
    def test_functional_window_is_narrower_than_si(self, si_sram, bundled_sram):
        assert (bundled_sram.minimum_operating_voltage()
                > si_sram.minimum_operating_voltage())
        assert bundled_sram.is_functional(1.0)
        assert not bundled_sram.is_functional(0.2)

    def test_raises_timing_violation_below_floor(self, bundled_sram):
        low = bundled_sram.minimum_operating_voltage() - 0.05
        with pytest.raises(TimingViolation):
            bundled_sram.read_latency(low)

    def test_margin_shrinks_with_vdd(self, bundled_sram):
        assert bundled_sram.timing_margin(0.5) < bundled_sram.timing_margin(1.0)

    def test_faster_than_si_sram_at_nominal(self, si_sram, bundled_sram):
        # The bundled design does not pay for completion detection at 1 V.
        assert bundled_sram.read_latency(1.0) < si_sram.read_latency(1.0) * 1.2

    def test_storage_is_shared_infrastructure(self, tech):
        bundled = BundledSRAM(tech, SRAMConfig(rows=8, columns=4,
                                               calibrate_energy=False))
        bundled.poke(1, 3)
        assert bundled.peek(1) == 3


class TestReplicaColumnBundling:
    def test_replica_tracks_column_delay(self, tech):
        replica = ReplicaColumnBundling(technology=tech, seed=1)
        for vdd in (0.4, 0.7, 1.0):
            assert replica.replica_delay(vdd) >= replica.column_delay(vdd)

    def test_failure_probability_grows_at_low_vdd(self, tech):
        replica = ReplicaColumnBundling(technology=tech, sigma_delay=0.15, seed=1)
        assert (replica.failure_probability(0.25, samples=500)
                >= replica.failure_probability(1.0, samples=500))

    def test_analyse_produces_consistent_report(self, tech):
        replica = ReplicaColumnBundling(technology=tech, seed=2)
        report = replica.analyse(0.5, samples=300)
        assert report.vdd == 0.5
        assert report.replica_delay > 0
        assert 0.0 <= report.failure_probability <= 1.0

    def test_cheaper_read_energy_than_full_completion(self, tech, si_sram):
        """Reference [8]: only one column has full completion detection."""
        replica = ReplicaColumnBundling(technology=tech, seed=3)
        assert replica.read_energy(1.0) < si_sram.read_energy(1.0)
