"""Tests for handshake channels, bundled-data stages, pipelines and the synchronizer."""

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.power.supply import ConstantSupply
from repro.selftimed.bundled import BundledDataStage, MatchedDelayLine, TimingViolation
from repro.selftimed.handshake import HandshakeChannel, HandshakePhase
from repro.selftimed.pipeline import AsyncPipeline, PipelineStage
from repro.selftimed.synchronizer import RobustSynchronizer
from repro.sim.simulator import Simulator


class TestHandshakeChannel:
    def test_four_phase_cycle(self):
        sim = Simulator()
        channel = HandshakeChannel(sim, "ch")
        assert channel.phase is HandshakePhase.IDLE
        channel.request(1e-9)
        sim.run()
        assert channel.phase is HandshakePhase.REQUESTED
        channel.acknowledge(1e-9)
        sim.run()
        assert channel.phase is HandshakePhase.ACKNOWLEDGED
        channel.release(1e-9)
        sim.run()
        assert channel.phase is HandshakePhase.RELEASING
        channel.withdraw(1e-9)
        sim.run()
        assert channel.phase is HandshakePhase.IDLE
        assert channel.cycles_completed == 1
        assert channel.average_cycle_time() == pytest.approx(3e-9, rel=0.01)

    def test_protocol_violation_detected(self):
        sim = Simulator()
        channel = HandshakeChannel(sim, "ch")
        channel.acknowledge(1e-9)   # ack without req
        with pytest.raises(ProtocolError):
            sim.run()

    def test_release_before_ack_is_a_violation(self):
        sim = Simulator()
        channel = HandshakeChannel(sim, "ch")
        channel.request(1e-9)
        sim.run()
        channel.release(1e-9)
        with pytest.raises(ProtocolError):
            sim.run()

    def test_callbacks_fire_in_order(self):
        sim = Simulator()
        channel = HandshakeChannel(sim, "ch")
        order = []
        channel.on_request(lambda t: order.append("req"))
        channel.on_acknowledge(lambda t: order.append("ack"))
        channel.on_release(lambda t: order.append("rel"))
        channel.on_withdraw(lambda t: order.append("wd"))
        channel.request(1e-9)
        sim.run()
        channel.acknowledge(1e-9)
        sim.run()
        channel.release(1e-9)
        sim.run()
        channel.withdraw(1e-9)
        sim.run()
        assert order == ["req", "ack", "rel", "wd"]


class TestMatchedDelayLine:
    def test_margin_applied_at_calibration_voltage(self, tech):
        line = MatchedDelayLine(technology=tech, target_delay=1e-9,
                                calibration_vdd=1.0, margin=1.5)
        assert line.delay(1.0) >= 1.4e-9
        assert line.stages >= 2

    def test_delay_grows_at_low_vdd(self, tech):
        line = MatchedDelayLine(technology=tech, target_delay=1e-9,
                                calibration_vdd=1.0)
        assert line.delay(0.3) > line.delay(1.0)

    def test_energy_positive(self, tech):
        line = MatchedDelayLine(technology=tech, target_delay=1e-9,
                                calibration_vdd=1.0)
        assert line.energy(1.0) > 0


class TestBundledDataStage:
    def test_functional_at_nominal_but_not_subthreshold(self, tech):
        stage = BundledDataStage(technology=tech)
        assert stage.is_functional(1.0)
        assert not stage.is_functional(0.2)
        floor = stage.minimum_operating_voltage()
        assert 0.2 < floor < 1.0

    def test_timing_margin_shrinks_with_vdd(self, tech):
        stage = BundledDataStage(technology=tech)
        assert stage.timing_margin(0.4) < stage.timing_margin(1.0)

    def test_cycle_time_raises_below_floor_when_checked(self, tech):
        stage = BundledDataStage(technology=tech)
        low = stage.minimum_operating_voltage() - 0.05
        with pytest.raises(TimingViolation):
            stage.cycle_time(low)
        # Unchecked query still returns a number (for plotting the fault region).
        assert stage.cycle_time(low, check=False) > 0

    def test_energy_cheaper_than_speed_independent_design(self, tech):
        from repro.core.design_styles import SpeedIndependentDesign
        stage = BundledDataStage(technology=tech, logic_depth=10,
                                 datapath_width=16)
        si = SpeedIndependentDesign(tech, logic_depth=10, datapath_width=16)
        assert stage.energy_per_operation(1.0) < si.energy_per_operation(1.0)


class TestAsyncPipeline:
    def make_pipeline(self, tech, vdd=1.0, stages=3):
        sim = Simulator()
        supply = ConstantSupply(vdd)
        stage_objects = [
            PipelineStage(
                sim, supply, tech, f"s{i}",
                delay_model=lambda v: 1e-9 / max(v, 0.1),
                energy_model=lambda v: 1e-14 * v * v,
            )
            for i in range(stages)
        ]
        return sim, AsyncPipeline(sim, stage_objects)

    def test_all_tokens_flow_through(self, tech):
        sim, pipeline = self.make_pipeline(tech)
        pipeline.inject(10, interval=0.5e-9)
        sim.run()
        assert pipeline.tokens_completed == 10
        assert pipeline.throughput() > 0
        assert pipeline.energy_per_token() > 0

    def test_total_energy_sums_stage_energy(self, tech):
        sim, pipeline = self.make_pipeline(tech)
        pipeline.inject(5)
        sim.run()
        assert pipeline.total_energy() == pytest.approx(
            sum(s.energy_consumed for s in pipeline.stages))
        assert all(s.tokens_processed == 5 for s in pipeline.stages)

    def test_empty_pipeline_rejected(self, tech):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            AsyncPipeline(sim, [])

    def test_non_functional_stage_delays_but_does_not_lose_tokens(self, tech):
        sim = Simulator()
        supply = ConstantSupply(1.0)
        stage = PipelineStage(
            sim, supply, tech, "gated",
            delay_model=lambda v: 1e-9,
            energy_model=lambda v: 1e-14,
            functional_model=lambda v: sim.now > 1e-6,
            retry_interval=100e-9,
        )
        pipeline = AsyncPipeline(sim, [stage])
        pipeline.inject(3, interval=1e-9)
        sim.run()
        assert pipeline.tokens_completed == 3
        assert stage.stall_count > 0


class TestRobustSynchronizer:
    F_CLK = 100e6
    F_DATA = 10e6

    def test_mtbf_improves_with_settling_time(self, tech):
        sync = RobustSynchronizer(technology=tech)
        tau = sync.tau(0.5)
        assert (sync.mtbf(10 * tau, 0.5, self.F_CLK, self.F_DATA)
                > sync.mtbf(5 * tau, 0.5, self.F_CLK, self.F_DATA))

    def test_robust_variant_beats_plain_at_low_vdd(self, tech):
        robust = RobustSynchronizer(technology=tech, robust=True)
        plain = RobustSynchronizer(technology=tech, robust=False)
        assert robust.tau(0.3) <= plain.tau(0.3)
        assert (robust.mtbf(1e-9, 0.3, self.F_CLK, self.F_DATA)
                >= plain.mtbf(1e-9, 0.3, self.F_CLK, self.F_DATA))

    def test_required_settling_time_meets_target(self, tech):
        sync = RobustSynchronizer(technology=tech)
        target = 3.15e7  # one year in seconds
        settle = sync.required_settling_time(target, 0.5, self.F_CLK, self.F_DATA)
        assert (sync.mtbf(settle, 0.5, self.F_CLK, self.F_DATA)
                >= target * 0.99)

    def test_failure_probability_in_unit_interval(self, tech):
        sync = RobustSynchronizer(technology=tech)
        p = sync.failure_probability(1e-9, 0.5)
        assert 0.0 <= p <= 1.0

    def test_sampled_settling_times_reproducible_with_seed(self, tech):
        a = RobustSynchronizer(technology=tech, seed=9)
        b = RobustSynchronizer(technology=tech, seed=9)
        assert [a.sample_settling_time(0.5) for _ in range(5)] == \
               [b.sample_settling_time(0.5) for _ in range(5)]

    def test_synchronization_latency_scales_with_stages(self, tech):
        sync = RobustSynchronizer(technology=tech)
        assert sync.synchronization_latency(0.5, stages=3) > \
            sync.synchronization_latency(0.5, stages=2)
