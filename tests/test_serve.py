"""The multi-tenant experiment service (:mod:`repro.analysis.serve`).

The subsystem's contract, pinned here over a real HTTP socket: plans
POSTed in the ``run MODULE:FACTORY`` wire format (or as campaign
references) are ordered across tenants by a fair-share scheduler and
executed on one shared Session, so every served result is byte-identical
to a direct ``Session.run``; the admission gate refuses *new* work past
the watermarks with 429 + retry hint but never touches plans already
admitted.  The heavier two-tenant burst scenario lives in ``python -m
repro serve --selftest`` (chained by ``repro selftest`` and the CI
service smoke job); these tests keep each piece small and fast.
"""

import json
import threading

import pytest

from repro.analysis.runner import Executor, ExperimentPlan
from repro.analysis.serve import (
    AdmissionGate,
    ExperimentServer,
    ExperimentService,
    FIFOScheduler,
    PlanTicket,
    ServiceClient,
    ServiceError,
    ServiceOverloaded,
    VTCScheduler,
    demo_plan,
    estimate_cost,
    make_scheduler,
    steady_plan,
)
from repro.analysis.serve.client import PlanFailed
from repro.analysis.session import RunConfig, Session
from repro.errors import ConfigurationError


def hermetic_config():
    """No repro.toml / REPRO_* leakage into service-owned sessions."""
    return RunConfig.resolve(environ={}, config_file=False)


def failing_plan():
    """Plan factory whose quantity always raises (MODULE:CALLABLE spec)."""
    def broken(vdd):
        raise ValueError(f"modelling bug at {vdd}")

    return ExperimentPlan.sweep("vdd", [0.4, 0.6]), {"broken": broken}


def ticket(tenant, n, cost=1.0):
    plan, quantities = steady_plan()
    return PlanTicket(plan_id=f"{tenant}{n}", tenant=tenant, plan=plan,
                      quantities=quantities, cost=cost)


@pytest.fixture()
def service():
    svc = ExperimentService(hermetic_config(), dispatchers=1)
    yield svc
    svc.close()


@pytest.fixture()
def server(service):
    with ExperimentServer(service, port=0) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with ServiceClient(server.url) as cli:
        yield cli


# ---------------------------------------------------------------------------
# Schedulers


class TestSchedulers:
    def test_registry_and_unknown_name(self):
        assert isinstance(make_scheduler("fifo"), FIFOScheduler)
        assert isinstance(make_scheduler("vtc"), VTCScheduler)
        with pytest.raises(ConfigurationError, match="unknown scheduler"):
            make_scheduler("priority")

    def test_fifo_is_arrival_order(self):
        fifo = FIFOScheduler()
        for i in range(3):
            fifo.enqueue(ticket("a", i))
        fifo.enqueue(ticket("b", 0))
        assert [fifo.pop().plan_id for _ in range(4)] == \
            ["a0", "a1", "a2", "b0"]
        assert fifo.pop() is None

    def test_vtc_interleaves_and_charges_cost(self):
        vtc = VTCScheduler()
        for i in range(4):
            vtc.enqueue(ticket("a", i))
        for i in range(2):
            vtc.enqueue(ticket("b", i))
        assert [vtc.pop().plan_id for _ in range(6)] == \
            ["a0", "b0", "a1", "b1", "a2", "a3"]
        assert vtc.counters == {"a": 4.0, "b": 2.0}
        assert vtc.dispatched == {"a": 4, "b": 2}

    def test_vtc_keeps_per_tenant_fifo(self):
        vtc = VTCScheduler()
        for i in range(3):
            vtc.enqueue(ticket("a", i, cost=5.0))
        popped = [vtc.pop().plan_id for _ in range(3)]
        assert popped == ["a0", "a1", "a2"]

    def test_vtc_counter_lift_blocks_banked_credit(self):
        vtc = VTCScheduler()
        for i in range(4):
            vtc.enqueue(ticket("a", i, cost=10.0))
        vtc.pop(), vtc.pop()  # a has consumed 20 cost units
        # b arrives only now: lifted to a's floor, no idle-time credit —
        # it gets its fair share from here on, not a 20-unit head start.
        vtc.enqueue(ticket("b", 0, cost=10.0))
        assert vtc.counters["b"] == 20.0
        assert [vtc.pop().plan_id for _ in range(3)] == ["a2", "b0", "a3"]

    def test_depth_cost_and_describe(self):
        vtc = VTCScheduler()
        vtc.enqueue(ticket("a", 0, cost=3.0))
        vtc.enqueue(ticket("b", 0, cost=4.0))
        assert vtc.depth() == 2
        assert vtc.queued_cost() == 7.0
        described = vtc.describe()
        assert described["scheduler"] == "vtc"
        assert described["queued_by_tenant"] == {"a": 1, "b": 1}
        assert set(described) >= {"depth", "queued_cost", "virtual_time",
                                  "dispatched"}

    def test_estimate_cost_is_points_times_quantities(self):
        plan, quantities = demo_plan()
        assert estimate_cost(plan, quantities) == \
            plan.point_count * len(quantities)
        assert estimate_cost(plan, {}) == plan.point_count


# ---------------------------------------------------------------------------
# Admission gate


class TestAdmissionGate:
    def test_admits_under_both_watermarks(self):
        gate = AdmissionGate(max_depth=4, max_cost=100.0)
        decision = gate.decide(2, 50.0, depth=1, queued_cost=10.0)
        assert decision.admitted
        assert gate.admitted == 2

    def test_refuses_depth_and_cost_watermarks(self):
        gate = AdmissionGate(max_depth=4, max_cost=100.0)
        by_depth = gate.decide(3, 1.0, depth=2, queued_cost=0.0)
        by_cost = gate.decide(1, 95.0, depth=0, queued_cost=10.0)
        assert not by_depth.admitted and "depth watermark" in by_depth.reason
        assert not by_cost.admitted and "cost watermark" in by_cost.reason
        assert by_depth.retry_after_s > 0
        assert gate.rejected == 2

    def test_refusal_is_atomic_for_multi_plan_submissions(self):
        # 3 plans, 2 slots: none admitted (a half-admitted campaign would
        # hand the client a result set it never asked for).
        gate = AdmissionGate(max_depth=4, max_cost=None)
        assert not gate.decide(3, 3.0, depth=2, queued_cost=0.0).admitted
        assert gate.admitted == 0

    def test_none_disables_the_cost_watermark(self):
        gate = AdmissionGate(max_depth=4, max_cost=None)
        assert gate.decide(1, 1e12, depth=0, queued_cost=1e12).admitted

    def test_retry_hint_tracks_drain_rate_and_stays_bounded(self):
        gate = AdmissionGate(max_depth=1, max_cost=None)
        slow_before = gate.decide(2, 1.0, depth=0, queued_cost=500.0)
        # 10 cost units per second observed: 500 queued ≈ 50 s to drain.
        for _ in range(50):
            gate.record_completion(10.0, 1.0)
        slow_after = gate.decide(2, 1.0, depth=0, queued_cost=500.0)
        assert slow_after.retry_after_s > slow_before.retry_after_s
        assert 0.1 <= slow_after.retry_after_s <= 60.0
        described = gate.describe()
        assert described["rejected"] == 2
        assert described["drain_rate_cost_per_s"] == pytest.approx(10.0,
                                                                   rel=0.1)

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionGate(max_depth=0)
        with pytest.raises(ConfigurationError):
            AdmissionGate(max_cost=0.0)


# ---------------------------------------------------------------------------
# The service (no sockets)


class TestServiceSubmission:
    def test_malformed_bodies_are_rejected(self, service):
        for body, match in [
            ([], "JSON object"),
            ({}, "exactly one of"),
            ({"plan": "a:b", "campaign": "c"}, "exactly one of"),
            ({"plan": "a:b", "tenant": "  "}, "tenant"),
            ({"plan": 7}, "MODULE:FACTORY"),
            ({"campaign": 7}, "bundled name"),
            ({"plan": "a:b", "shard": 1}, "unknown submission key"),
            ({"campaign": "paper_space", "runs": "gate_metrics"},
             "list of run labels"),
            ({"campaign": "paper_space", "runs": ["nope"]}, "no run"),
        ]:
            with pytest.raises(ConfigurationError, match=match):
                service.submit(body)

    def test_submit_returns_full_records(self, service):
        [record] = service.submit(
            {"tenant": "alice", "plan": "repro.analysis.serve:demo_plan"})
        plan, quantities = demo_plan()
        assert record["tenant"] == "alice"
        assert record["spec"] == "repro.analysis.serve:demo_plan"
        assert record["kind"] == "sweep"
        assert record["points"] == plan.point_count
        assert record["quantities"] == sorted(quantities)
        assert record["cost"] == estimate_cost(plan, quantities)
        assert record["state"] in ("queued", "running", "done")

    def test_campaign_reference_expands_atomically(self, service):
        records = service.submit({"campaign": "paper_space", "smoke": True,
                                  "runs": ["gate_metrics[cmos90]",
                                           "sram_latency[cmos65]"],
                                  "tenant": "carol"})
        assert [r["label"] for r in records] == ["gate_metrics[cmos90]",
                                                 "sram_latency[cmos65]"]
        assert all(r["tenant"] == "carol" for r in records)

    def test_failed_plan_reports_error_and_counts_terminal(self, service):
        [record] = service.submit({"plan": "test_serve:failing_plan"})
        done = service.wait_for(record["id"], timeout_s=30)
        assert done["state"] == "failed"
        assert "ValueError: modelling bug" in done["error"]
        assert done["completed_seq"] is not None
        status = service.status()
        assert status["plans"]["failed"] == 1
        assert status["tenants"]["anonymous"]["failed"] == 1

    def test_submit_after_close_is_refused(self):
        service = ExperimentService(hermetic_config(), dispatchers=1)
        service.close()
        with pytest.raises(ConfigurationError, match="closed"):
            service.submit({"plan": "repro.analysis.serve:demo_plan"})
        with pytest.raises(ConfigurationError, match="closed"):
            service.start()

    def test_concurrent_close_joins_every_dispatcher(self):
        # Regression: close() used to walk self._threads outside the
        # lock, racing start()'s appends and a second closer's clear().
        import threading

        service = ExperimentService(hermetic_config(), dispatchers=2)
        [record] = service.submit(
            {"plan": "repro.analysis.serve:demo_plan"})
        assert service.wait_for(record["id"], timeout_s=60)["state"] == "done"
        threads = list(service._threads)
        closers = [threading.Thread(target=service.close) for _ in range(3)]
        for closer in closers:
            closer.start()
        for closer in closers:
            closer.join(timeout=60)
        assert not any(closer.is_alive() for closer in closers)
        assert all(not t.is_alive() for t in threads)
        assert service._threads == []
        service.close()  # idempotent after the race

    def test_unstarted_service_queues_without_executing(self):
        with ExperimentService(hermetic_config(), dispatchers=1,
                               start=False) as service:
            [record] = service.submit(
                {"plan": "repro.analysis.serve:demo_plan"})
            waited = service.wait_for(record["id"], timeout_s=0.05)
            assert waited["state"] == "queued"
            service.start()
            assert service.wait_for(record["id"],
                                    timeout_s=60)["state"] == "done"

    def test_shared_external_session_is_not_closed(self):
        with Session(hermetic_config()) as session:
            service = ExperimentService(session=session, dispatchers=1)
            [record] = service.submit(
                {"plan": "repro.analysis.serve:demo_plan"})
            assert service.wait_for(record["id"],
                                    timeout_s=60)["state"] == "done"
            service.close()
            # The caller's session survives the service shutdown.
            plan, quantities = demo_plan()
            assert session.run(plan, quantities).values


# ---------------------------------------------------------------------------
# The wire: HTTP server + client


class TestHTTPEndpoints:
    def test_served_result_is_byte_identical_to_direct_run(self, client):
        plan, quantities = demo_plan()
        direct = Executor(workers=0).run(plan, quantities)
        record = client.submit_plan("repro.analysis.serve:demo_plan",
                                    tenant="alice")
        finished = client.wait(record["id"], timeout_s=60)
        assert finished["state"] == "done"
        result = client.result(record["id"])
        assert result["values"] == direct.values
        assert result["provenance"]["points"] == plan.point_count

    def test_status_surfaces_queue_tenants_and_caches(self, client):
        record = client.submit_plan("repro.analysis.serve:steady_plan",
                                    tenant="bob")
        client.wait(record["id"], timeout_s=60)
        status = client.status()
        assert status["scheduler"]["scheduler"] == "vtc"
        assert status["tenants"]["bob"]["submitted"] == 1
        assert status["admission"]["admitted"] == 1
        assert status["plans"]["done"] >= 1
        assert "technology_cache" in status
        assert status["config"]["workers"] == 0

    def test_long_poll_returns_on_state_change(self, service, client):
        # Submit against a drained service: long-poll with the terminal
        # state as "known" must return at the timeout, not hang.
        record = client.submit_plan("repro.analysis.serve:steady_plan")
        client.wait(record["id"], timeout_s=60)
        polled = client.plan(record["id"], wait_s=0.05, known_state="done")
        assert polled["state"] == "done"

    def test_result_before_done_is_202(self):
        with ExperimentService(hermetic_config(), dispatchers=1,
                               start=False) as service, \
                ExperimentServer(service, port=0) as server:
            client = ServiceClient(server.url)
            record = client.submit_plan("repro.analysis.serve:demo_plan")
            with pytest.raises(ServiceError, match="still queued"):
                client.result(record["id"])

    def test_failed_plan_result_is_500(self, client):
        record = client.submit_plan("test_serve:failing_plan")
        assert client.wait(record["id"], timeout_s=60)["state"] == "failed"
        with pytest.raises(PlanFailed, match="modelling bug"):
            client.result(record["id"])

    def test_unknown_plan_and_endpoint_are_404(self, client):
        with pytest.raises(ConfigurationError, match="no plan"):
            client.plan("p999999")
        with pytest.raises(ConfigurationError, match="no plan"):
            client.result("p999999")

    def test_bad_submission_is_400(self, client):
        with pytest.raises(ConfigurationError, match="exactly one of"):
            client.submit({"tenant": "alice"})
        with pytest.raises(ConfigurationError, match="unknown submission"):
            client.submit({"plan": "a:b", "nonsense": 1})

    def test_overload_is_429_with_retry_after_header(self):
        import http.client as http_client

        with ExperimentService(hermetic_config(), dispatchers=1,
                               max_queue_depth=1, start=False) as service, \
                ExperimentServer(service, port=0) as server:
            client = ServiceClient(server.url)
            client.submit_plan("repro.analysis.serve:steady_plan")
            with pytest.raises(ServiceOverloaded) as refusal:
                client.submit_plan("repro.analysis.serve:steady_plan")
            assert refusal.value.retry_after_s > 0
            # The raw response carries the Retry-After header too.
            host, port = server.url.replace("http://", "").split(":")
            raw = http_client.HTTPConnection(host, int(port), timeout=30)
            raw.request("POST", "/v1/plans", body=json.dumps(
                {"plan": "repro.analysis.serve:steady_plan"}),
                headers={"Content-Type": "application/json"})
            response = raw.getresponse()
            response.read()
            assert response.status == 429
            assert int(response.getheader("Retry-After")) >= 1
            raw.close()

    def test_client_rejects_malformed_urls(self):
        for bad in ("ftp://h:1", "127.0.0.1:9210", "http://h:1/path"):
            with pytest.raises(ConfigurationError, match="http"):
                ServiceClient(bad)

    def test_client_wait_timeout_raises(self):
        with ExperimentService(hermetic_config(), dispatchers=1,
                               start=False) as service, \
                ExperimentServer(service, port=0) as server:
            client = ServiceClient(server.url)
            record = client.submit_plan("repro.analysis.serve:demo_plan")
            with pytest.raises(ServiceError, match="still queued"):
                client.wait(record["id"], timeout_s=0.1)

    def test_unreachable_service_raises_service_error(self):
        client = ServiceClient("http://127.0.0.1:9", timeout_s=2)
        with pytest.raises(ServiceError, match="unreachable"):
            client.status()


# ---------------------------------------------------------------------------
# Multi-tenant behaviour over the wire


class TestMultiTenant:
    def test_vtc_interleaves_two_tenants_over_http(self):
        burst_n, steady_n = 12, 4
        with ExperimentService(hermetic_config(), scheduler="vtc",
                               dispatchers=1, max_queue_depth=64,
                               max_queued_cost=None,
                               start=False) as service, \
                ExperimentServer(service, port=0) as server:
            client = ServiceClient(server.url)
            burst_ids = [client.submit_plan(
                "repro.analysis.serve:demo_plan", tenant="burst")["id"]
                for _ in range(burst_n)]
            steady_ids = [client.submit_plan(
                "repro.analysis.serve:steady_plan", tenant="steady")["id"]
                for _ in range(steady_n)]
            service.start()
            records = {pid: client.wait(pid, timeout_s=120)
                       for pid in burst_ids + steady_ids}
            assert all(r["state"] == "done" for r in records.values())
            # demo_plan costs 16, steady_plan 12: the steady tenant runs
            # at least every other dispatch, so its k-th completion
            # cannot sit behind more than ~2k burst plans.
            steady_seqs = [records[pid]["completed_seq"]
                           for pid in steady_ids]
            assert all(seq <= 3 * (k + 1)
                       for k, seq in enumerate(steady_seqs))
            assert max(steady_seqs) < burst_n

    def test_concurrent_tenant_threads_get_identical_results(self, server):
        plan, quantities = demo_plan()
        direct = Executor(workers=0).run(plan, quantities)
        results = {}
        errors = []

        def tenant_thread(name):
            try:
                with ServiceClient(server.url) as mine:
                    ids = [mine.submit_plan(
                        "repro.analysis.serve:demo_plan", tenant=name)["id"]
                        for _ in range(3)]
                    for pid in ids:
                        mine.wait(pid, timeout_s=120)
                    results[name] = [mine.result(pid)["values"]
                                     for pid in ids]
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append((name, exc))

        threads = [threading.Thread(target=tenant_thread, args=(f"t{i}",))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180)
        assert not errors
        assert set(results) == {f"t{i}" for i in range(4)}
        for values in results.values():
            assert values == [direct.values] * 3


# ---------------------------------------------------------------------------
# The consolidated CLI front (python -m repro serve ...)


class TestServeCLI:
    def test_bare_serve_is_a_deprecated_objstore_alias(self, monkeypatch,
                                                       capsys):
        import repro.analysis.objstore as objstore
        from repro.cli import main

        calls = []
        monkeypatch.setattr(objstore, "main",
                            lambda argv: calls.append(list(argv)) or 0)
        assert main(["serve", "--host", "0.0.0.0", "--port", "1"]) == 0
        assert calls == [["--serve", "--host", "0.0.0.0", "--port", "1"]]
        assert "deprecated" in capsys.readouterr().err

    def test_serve_objstore_subcommand_has_no_warning(self, monkeypatch,
                                                      capsys):
        import repro.analysis.objstore as objstore
        from repro.cli import main

        calls = []
        monkeypatch.setattr(objstore, "main",
                            lambda argv: calls.append(list(argv)) or 0)
        assert main(["serve", "objstore", "--port", "7"]) == 0
        assert calls == [["--serve", "--port", "7"]]
        assert capsys.readouterr().err == ""

    def test_submit_status_wait_round_trip(self, server, capsys):
        from repro.cli import main

        url = server.url
        assert main(["serve", "submit", "--url", url,
                     "--plan", "repro.analysis.serve:demo_plan",
                     "--tenant", "alice", "--wait", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        [record] = payload["plans"]
        assert record["state"] == "done"
        assert record["tenant"] == "alice"
        assert main(["serve", "wait", record["id"], "--url", url]) == 0
        assert record["id"] in capsys.readouterr().out
        assert main(["serve", "status", "--url", url, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["tenants"]["alice"]["completed"] == 1

    def test_submit_needs_exactly_one_source(self, capsys):
        from repro.cli import main

        assert main(["serve", "submit"]) == 2
        assert "exactly one of" in capsys.readouterr().err
        assert main(["serve", "submit", "--plan", "a:b",
                     "--campaign", "c"]) == 2

    def test_unreachable_url_is_a_clean_error(self, capsys):
        from repro.cli import main

        assert main(["serve", "status",
                     "--url", "http://127.0.0.1:9"]) == 1
        assert "unreachable" in capsys.readouterr().err

    def test_serve_selftest_flag_reaches_the_module_main(self, monkeypatch):
        import repro.analysis.serve as serve
        from repro.cli import main

        monkeypatch.setattr(serve, "main", lambda argv: 0)
        assert main(["serve", "--selftest"]) == 0

    def test_selftest_suites_include_serve(self):
        from repro.cli import SELFTEST_SUITES

        assert "serve" in SELFTEST_SUITES
