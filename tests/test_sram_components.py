"""Tests for SRAM cells, bit lines and peripheral blocks."""

import pytest

from repro.errors import ConfigurationError, RetentionError
from repro.models.delay import InverterChain
from repro.sram.bitline import BitlineModel, calibrate_bitline_to_fig5
from repro.sram.cell import CellType, SRAMCell
from repro.sram.completion import ColumnCompletionDetector
from repro.sram.decoder import AddressDecoder
from repro.sram.precharge import PrechargeUnit
from repro.sram.sense import ReadBuffer
from repro.sram.write_driver import WriteDriver


class TestSRAMCell:
    def test_write_then_read(self, tech):
        cell = SRAMCell(tech)
        cell.write(True, 1.0)
        assert cell.read(1.0) is True
        cell.write(False, 0.4)
        assert cell.read(0.4) is False

    def test_unwritten_cell_value_is_unknown(self, tech):
        cell = SRAMCell(tech)
        assert cell.value is None

    def test_retention_lost_below_retention_voltage(self, tech):
        cell = SRAMCell(tech, retention_voltage=0.15)
        cell.write(True, 1.0)
        cell.power_glitch(0.05)
        assert cell.value is None or isinstance(cell.value, bool)
        # Reading after a destructive glitch must not silently return the old data.
        try:
            result = cell.read(1.0)
        except RetentionError:
            return
        assert result in (True, False)

    def test_write_time_longer_at_low_vdd(self, tech):
        cell = SRAMCell(tech)
        assert cell.write_time(0.3) > cell.write_time(1.0)

    def test_read_current_higher_at_high_vdd(self, tech):
        cell = SRAMCell(tech)
        assert cell.read_current(1.0) > cell.read_current(0.4) > 0

    def test_8t_cell_leaks_less_than_6t(self, tech):
        six = SRAMCell(tech, cell_type=CellType.SIX_T)
        eight = SRAMCell(tech, cell_type=CellType.EIGHT_T)
        assert eight.leakage_power(1.0) < six.leakage_power(1.0)
        assert CellType.EIGHT_T.transistors == 8
        assert CellType.SIX_T.transistors == 6

    def test_cell_types_have_area_ordering(self):
        assert CellType.EIGHT_T.area_factor > CellType.SIX_T.area_factor


class TestBitlineModel:
    def test_read_delay_grows_with_rows(self, tech):
        small = BitlineModel(technology=tech, rows=16)
        large = BitlineModel(technology=tech, rows=256)
        assert large.read_delay(0.5) > small.read_delay(0.5)

    def test_mismatch_ratio_grows_as_vdd_falls(self, tech):
        """The core Fig. 5 phenomenon: SRAM scales worse than logic."""
        bitline = BitlineModel(technology=tech, rows=64)
        assert bitline.mismatch_ratio(0.19) > bitline.mismatch_ratio(0.5) > 1.0

    def test_fig5_calibration_hits_anchor_points(self, tech):
        bitline = calibrate_bitline_to_fig5(tech)
        assert bitline.read_delay_in_inverters(1.0) == pytest.approx(50.0, rel=0.1)
        assert bitline.read_delay_in_inverters(0.19) == pytest.approx(158.0, rel=0.1)

    def test_read_delay_in_inverters_consistent_with_ruler(self, tech):
        bitline = calibrate_bitline_to_fig5(tech)
        ruler = InverterChain(technology=tech, stages=1)
        expected = bitline.read_delay(0.7) / ruler.stage_delay(0.7)
        assert bitline.read_delay_in_inverters(0.7) == pytest.approx(expected, rel=0.05)

    def test_energies_positive_and_ordered(self, tech):
        bitline = BitlineModel(technology=tech, rows=64)
        assert bitline.precharge_energy(1.0) > 0
        assert bitline.read_energy(1.0) > bitline.read_energy(0.4) > 0
        assert bitline.write_energy(1.0) > 0

    def test_leakage_positive(self, tech):
        bitline = BitlineModel(technology=tech, rows=64)
        assert bitline.leakage_power(1.0) > 0


class TestPeriphery:
    def test_decoder_delay_and_energy_scale_with_rows(self, tech):
        small = AddressDecoder(technology=tech, rows=16)
        large = AddressDecoder(technology=tech, rows=256)
        assert small.address_bits == 4
        assert large.address_bits == 8
        assert large.delay(0.5) > small.delay(0.5)
        assert large.energy(0.5) > small.energy(0.5)

    def test_decoder_address_check(self, tech):
        decoder = AddressDecoder(technology=tech, rows=64)
        decoder.check_address(0)
        decoder.check_address(63)
        with pytest.raises(Exception):
            decoder.check_address(64)

    def test_precharge_faster_with_stronger_driver(self, tech):
        bitline = BitlineModel(technology=tech, rows=64)
        weak = PrechargeUnit(technology=tech, bitline=bitline, drive_strength=1.0)
        strong = PrechargeUnit(technology=tech, bitline=bitline, drive_strength=8.0)
        assert strong.delay(0.5) < weak.delay(0.5)

    def test_write_driver_delay_includes_cell_write_time(self, tech):
        bitline = BitlineModel(technology=tech, rows=64)
        driver = WriteDriver(technology=tech, bitline=bitline)
        cell = SRAMCell(tech)
        assert driver.write_delay(0.5, cell) >= driver.drive_delay(0.5)

    def test_read_buffer_dual_rail_costs_more_energy(self, tech):
        bitline = BitlineModel(technology=tech, rows=64)
        single = ReadBuffer(technology=tech, bitline=bitline, dual_rail_output=False)
        dual = ReadBuffer(technology=tech, bitline=bitline, dual_rail_output=True)
        assert dual.rails_per_bit == 2
        assert single.rails_per_bit == 1
        assert dual.energy(1.0) > single.energy(1.0)


class TestColumnCompletionDetector:
    def test_detection_delay_grows_at_low_vdd(self, tech):
        detector = ColumnCompletionDetector(technology=tech, columns=16)
        assert detector.detection_delay(0.25) > detector.detection_delay(1.0)

    def test_segmentation_lowers_minimum_voltage(self, tech):
        """The paper's suggested sub-0.3 V improvement: segment the column CD."""
        flat = ColumnCompletionDetector(technology=tech, columns=16)
        segmented = ColumnCompletionDetector(technology=tech, columns=16,
                                             segment_size=8)
        assert segmented.minimum_detectable_vdd() <= flat.minimum_detectable_vdd()
        assert segmented.effective_load_factor() <= flat.effective_load_factor()

    def test_segmentation_summary_describes_structure(self, tech):
        detector = ColumnCompletionDetector(technology=tech, columns=16,
                                            segment_size=4)
        summary = detector.segmentation_summary()
        assert summary["segment_size"] == 4
        assert summary["gate_count"] == detector.gate_count
        assert summary["min_vdd"] > 0

    def test_gate_count_scales_with_columns(self, tech):
        narrow = ColumnCompletionDetector(technology=tech, columns=8)
        wide = ColumnCompletionDetector(technology=tech, columns=32)
        assert wide.gate_count > narrow.gate_count

    def test_invalid_configuration(self, tech):
        with pytest.raises(ConfigurationError):
            ColumnCompletionDetector(technology=tech, columns=0)
