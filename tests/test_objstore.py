"""Tests for the S3-style object-store backend (:mod:`repro.analysis.objstore`).

Three layers: the client/server wire protocol (CRUD, conditional puts,
pagination), the :class:`~repro.analysis.cache.ResultCache` contract over
an object-store root (results, leases, stats, clear — the same behaviour
the filesystem backend pins in ``test_analysis_cache.py``), and the
distributed runner coordinating a whole job through nothing but the HTTP
endpoint.
"""

import threading

import pytest

from repro.analysis.cache import (
    ObjectInfo,
    ResultCache,
    StoredObject,
    object_etag,
    open_store,
)
from repro.analysis.distrib import Worker, merge_job, submit, wait_for_job
from repro.analysis.objstore import (
    FakeObjectServer,
    ObjectStore,
    main as objstore_main,
)
from repro.analysis.runner import Executor, ExperimentPlan
from repro.errors import ConfigurationError

XS = [1.0, 2.0, 3.0, 4.0, 5.0]


def _double(x):
    return 2.0 * x


def _square(x):
    return x * x


@pytest.fixture(scope="module")
def server():
    with FakeObjectServer() as running:
        yield running


_BUCKET_COUNTER = iter(range(10**6))


@pytest.fixture()
def store(server):
    """A client over a bucket no other test has touched."""
    return ObjectStore(f"{server.url}/t{next(_BUCKET_COUNTER)}")


@pytest.fixture()
def obj_root(server):
    """A fresh bucket URL usable as a ResultCache/distrib root."""
    return f"{server.url}/root{next(_BUCKET_COUNTER)}"


class TestClientProtocol:
    def test_url_validation(self):
        for bad in ("ftp://host/bucket", "http://host", "http://host/",
                    "http://host/two/segments"):
            with pytest.raises(ConfigurationError):
                ObjectStore(bad)

    def test_round_trip_and_etag(self, store):
        etag = store.put_atomic("a/b/c", b"payload")
        assert etag == object_etag(b"payload")
        assert store.get("a/b/c") == StoredObject(b"payload", etag)
        assert store.stat("a/b/c") == ObjectInfo("a/b/c", 7, etag)

    def test_missing_key_reads_cleanly(self, store):
        assert store.get("absent") is None
        assert store.stat("absent") is None
        assert not store.delete("absent")

    def test_empty_payload_round_trips(self, store):
        etag = store.put_atomic("empty", b"")
        assert store.get("empty") == StoredObject(b"", etag)
        assert store.stat("empty").size == 0

    def test_put_if_absent_is_exclusive(self, store):
        assert store.put_if_absent("key", b"first") is not None
        assert store.put_if_absent("key", b"second") is None
        assert store.get("key").data == b"first"

    def test_put_if_match_is_a_cas(self, store):
        etag = store.put_atomic("key", b"v1")
        assert store.put_if_match("key", b"v2", "bogus") is None
        assert store.get("key").data == b"v1"
        swapped = store.put_if_match("key", b"v2", etag)
        assert swapped == object_etag(b"v2")
        # The old ETag is dead: the same precondition cannot win twice.
        assert store.put_if_match("key", b"v3", etag) is None
        assert store.put_if_match("missing", b"x", etag) is None

    def test_concurrent_cas_admits_one_winner(self, server, store):
        base = store.put_atomic("cas", b"base")
        clients = [ObjectStore(store.url) for _ in range(6)]
        outcomes = [None] * len(clients)

        def race(index):
            outcomes[index] = clients[index].put_if_match(
                "cas", b"winner-%d" % index, base)

        threads = [threading.Thread(target=race, args=(i,))
                   for i in range(len(clients))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        winners = [i for i, outcome in enumerate(outcomes)
                   if outcome is not None]
        assert len(winners) == 1
        assert store.get("cas").data == b"winner-%d" % winners[0]

    def test_listing_paginates_and_scopes(self, server):
        store = ObjectStore(f"{server.url}/pages", page_size=3)
        for index in range(10):
            store.put_atomic(f"p/{index:02d}", b"x" * index)
        store.put_atomic("q/other", b"y")
        listed = store.list("p/")
        assert [info.key for info in listed] \
            == [f"p/{i:02d}" for i in range(10)]
        assert [info.size for info in listed] == list(range(10))
        assert all(info.etag for info in listed)
        assert [info.key for info in store.list("q/")] == ["q/other"]
        assert store.list("nothing/") == []

    def test_keys_with_unsafe_characters(self, store):
        key = "dir/with space/and+plus/k.json"
        store.put_atomic(key, b"data")
        assert store.get(key).data == b"data"
        assert [info.key for info in store.list("dir/")] == [key]
        assert store.delete(key)

    def test_unreachable_endpoint_raises_oserror(self):
        # Port 1 is never listening; the error must be an OSError so
        # callers that tolerate filesystem faults tolerate this too.
        lonely = ObjectStore("http://127.0.0.1:1/void", timeout_s=0.2)
        with pytest.raises(OSError):
            lonely.get("key")

    def test_open_store_resolves_urls(self, server, tmp_path):
        assert isinstance(open_store(f"{server.url}/bucket"), ObjectStore)
        assert not isinstance(open_store(tmp_path), ObjectStore)
        existing = ObjectStore(f"{server.url}/bucket")
        assert open_store(existing) is existing


class TestResultCacheOverObjectStore:
    def test_result_round_trip_is_bit_identical(self, obj_root):
        cache = ResultCache(root=obj_root, mode="rw", salt="s")
        values = {"q": [0.1 + 0.2, 1e-300, float("inf"), -0.0, 3.14159]}
        assert cache.store_result("key", values, meta={"worker": "w:1"})
        assert cache.load_result("key", ["q"], 5) == values
        assert cache.load_meta("key") == {"worker": "w:1"}
        assert cache.has_result("key") and not cache.has_result("other")

    def test_lease_protocol(self, obj_root):
        cache = ResultCache(root=obj_root, mode="rw", salt="s")
        assert cache.claim_lease("shard", "a", ttl=30.0)
        assert not cache.claim_lease("shard", "b", ttl=30.0)
        assert cache.heartbeat_lease("shard", "a")
        assert not cache.heartbeat_lease("shard", "b")
        assert cache.release_lease("shard", "a")
        assert cache.lease_info("shard") is None

    def test_expired_lease_is_stolen(self, obj_root):
        import time

        cache = ResultCache(root=obj_root, mode="rw", salt="s")
        assert cache.claim_lease("shard", "dead", ttl=0.05)
        time.sleep(0.1)
        assert cache.claim_lease("shard", "survivor", ttl=30.0)
        assert cache.lease_info("shard")["owner"] == "survivor"
        # The dead owner's delayed heartbeat cannot resurrect the lease.
        assert not cache.heartbeat_lease("shard", "dead")

    def test_executor_persistent_round_trip(self, obj_root):
        plan = ExperimentPlan.sweep("x", XS)
        quantities = {"double": _double}
        first = Executor(
            persistent=ResultCache(root=obj_root, mode="rw")).run(
            plan, quantities)
        second = Executor(
            persistent=ResultCache(root=obj_root, mode="rw")).run(
            plan, quantities)
        assert second.provenance.executor == "persistent-cache"
        assert second.provenance.persistent_hits == len(XS)
        assert second.values == first.values

    def test_stats_and_clear(self, obj_root):
        cache = ResultCache(root=obj_root, mode="rw", salt="s")
        cache.store_result("key", {"q": [1.0]})
        cache.claim_lease("shard", "a", ttl=30.0)
        stats = cache.stats()
        assert stats["salts"]["s"]["results"] == 1
        assert stats["salts"]["s"]["leases"] == 1
        assert cache.clear() == 2
        assert cache.stats()["salts"] == {}


class TestDistribOverObjectStore:
    def test_worker_fleet_merges_bit_identically(self, obj_root):
        plan = ExperimentPlan.sweep("x", XS)
        quantities = {"double": _double, "square": _square}
        serial = Executor(workers=0).run(plan, quantities)
        job = submit(plan, quantities, root=obj_root, shard_size=2)
        assert Worker(root=obj_root).run_once() == len(job.shards)
        values, metas = merge_job(job)
        assert values == serial.values
        assert len(metas) == len(job.shards)

    def test_coordinator_wait_merges_and_feeds_the_cache(self, obj_root):
        plan = ExperimentPlan.sweep("x", XS)
        quantities = {"double": _double}
        job = submit(plan, quantities, root=obj_root, shard_size=2)
        values, _ = wait_for_job(job, timeout_s=60.0)
        serial = Executor(workers=0).run(plan, quantities)
        assert values == serial.values
        replay = Executor(
            persistent=ResultCache(root=obj_root, mode="ro")).run(
            plan, quantities)
        assert replay.provenance.executor == "persistent-cache"
        assert replay.values == serial.values


class TestCLI:
    def test_selftest_passes(self, capsys):
        assert objstore_main(["--selftest"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_no_arguments_prints_help(self, capsys):
        assert objstore_main([]) == 2
        assert "usage" in capsys.readouterr().out
