"""Tests for energy-token scheduling, soft arbitration, stochastic analysis
and game-theoretic power management."""

import pytest

from repro.core.arbitration import ConcurrencyManager, SoftArbiter
from repro.core.game import PowerManagementGame, Strategy, strategies_from_design
from repro.core.scheduler import (
    EnergyTokenScheduler,
    SchedulingPolicy,
    Task,
    compare_policies,
)
from repro.core.stochastic import (
    ConcurrencyAnalysis,
    PowerLatencyModel,
    simulate_mmc,
)
from repro.errors import ArbitrationError, ConfigurationError


def sensor_node_tasks():
    """A wireless-sensor-node style workload (the paper's motivating domain)."""
    return [
        Task("sense", energy=2e-9, duration=1, value=1.0),
        Task("filter", energy=4e-9, duration=1, value=2.0, depends_on=("sense",)),
        Task("log", energy=1e-9, duration=1, value=0.5, depends_on=("filter",)),
        Task("transmit", energy=20e-9, duration=2, value=8.0,
             depends_on=("filter",), deadline=12),
    ]


class TestTaskValidation:
    def test_negative_energy_rejected(self):
        with pytest.raises(ConfigurationError):
            Task("bad", energy=-1.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            Task("bad", energy=1e-9, duration=0)

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyTokenScheduler([Task("a", 1e-9, depends_on=("ghost",))])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyTokenScheduler([Task("a", 1e-9), Task("a", 2e-9)])


class TestEnergyTokenScheduler:
    def test_abundant_energy_completes_everything_in_order(self):
        scheduler = EnergyTokenScheduler(sensor_node_tasks(),
                                         policy=SchedulingPolicy.FIFO)
        result = scheduler.run([50e-9] * 10)
        assert set(result.completed_tasks) == {"sense", "filter", "log", "transmit"}
        assert result.missed_deadlines == []
        assert result.unfinished_tasks == []
        # Dependencies respected: sense finished before filter started.
        runs = {run.task: run for run in result.runs}
        assert runs["sense"].finish_slot <= runs["filter"].start_slot
        assert runs["filter"].finish_slot <= runs["transmit"].start_slot

    def test_energy_starvation_leaves_expensive_tasks_unfinished(self):
        scheduler = EnergyTokenScheduler(sensor_node_tasks())
        result = scheduler.run([2e-9] * 5)   # never enough for 'transmit'
        assert "transmit" in result.unfinished_tasks
        assert result.energy_spent <= result.energy_offered

    def test_value_per_energy_beats_fifo_under_scarcity(self):
        """The paper's point: scheduling must follow the power profile."""
        tasks = [
            Task("bulk", energy=40e-9, duration=1, value=1.0),
            Task("frugal1", energy=4e-9, duration=1, value=2.0),
            Task("frugal2", energy=4e-9, duration=1, value=2.0),
            Task("frugal3", energy=4e-9, duration=1, value=2.0),
        ]
        results = compare_policies(
            tasks, energy_profile=[6e-9] * 8,
            policies=[SchedulingPolicy.FIFO, SchedulingPolicy.VALUE_PER_ENERGY])
        assert (results[SchedulingPolicy.VALUE_PER_ENERGY].total_value
                >= results[SchedulingPolicy.FIFO].total_value)
        assert results[SchedulingPolicy.VALUE_PER_ENERGY].total_value >= 6.0

    def test_edf_policy_prefers_urgent_tasks(self):
        tasks = [
            Task("relaxed", energy=5e-9, duration=1, value=1.0, deadline=50),
            Task("urgent", energy=5e-9, duration=1, value=1.0, deadline=1),
        ]
        scheduler = EnergyTokenScheduler(tasks,
                                         policy=SchedulingPolicy.EARLIEST_DEADLINE)
        result = scheduler.run([5e-9, 5e-9, 5e-9])
        runs = {run.task: run for run in result.runs}
        assert runs["urgent"].start_slot <= runs["relaxed"].start_slot
        assert "urgent" not in result.missed_deadlines

    def test_deadline_misses_are_reported(self):
        tasks = [Task("slow", energy=30e-9, duration=3, value=1.0, deadline=2)]
        scheduler = EnergyTokenScheduler(tasks)
        result = scheduler.run([5e-9] * 12)
        assert result.missed_deadlines == ["slow"]

    def test_periodic_task_reruns(self):
        tasks = [Task("sample", energy=1e-9, duration=1, value=1.0,
                      periodic_every=3)]
        scheduler = EnergyTokenScheduler(tasks)
        result = scheduler.run([2e-9] * 12)
        sample_runs = [run for run in result.runs if run.task == "sample"]
        assert len(sample_runs) >= 3

    def test_storage_capacity_limits_banked_energy(self):
        tasks = [Task("burst", energy=50e-9, duration=1, value=1.0)]
        scheduler = EnergyTokenScheduler(tasks, storage_capacity=10e-9)
        result = scheduler.run([20e-9] * 4)
        assert result.unfinished_tasks == ["burst"]
        assert result.energy_left_stored <= 10e-9 + 1e-12

    def test_value_per_joule_metric(self):
        scheduler = EnergyTokenScheduler(sensor_node_tasks())
        result = scheduler.run([50e-9] * 6)
        assert result.value_per_joule > 0
        assert 0.0 < result.energy_utilisation <= 1.0


class TestSoftArbiter:
    def test_grants_limited_by_power_budget(self):
        arbiter = SoftArbiter(power_budget=2.5e-6)
        for name in ("a", "b", "c"):
            arbiter.register(name, power=1e-6)
            arbiter.request(name)
        granted = arbiter.arbitrate()
        assert len(granted) == 2
        assert arbiter.degree_of_concurrency() == 2
        assert arbiter.pending == ["c"]

    def test_release_frees_budget_for_waiting_requester(self):
        arbiter = SoftArbiter(power_budget=1e-6)
        arbiter.register("a", 1e-6)
        arbiter.register("b", 1e-6)
        arbiter.request("a")
        arbiter.request("b")
        assert arbiter.arbitrate() == ["a"]
        arbiter.release("a")
        assert arbiter.arbitrate() == ["b"]
        assert arbiter.average_waiting_rounds() > 0.0

    def test_oldest_request_served_first(self):
        arbiter = SoftArbiter(power_budget=1e-6)
        arbiter.register("late", 1e-6)
        arbiter.register("early", 1e-6)
        arbiter.request("early")
        arbiter.request("late")
        assert arbiter.arbitrate() == ["early"]

    def test_budget_can_change_at_run_time(self):
        arbiter = SoftArbiter(power_budget=0.0)
        arbiter.register("a", 1e-6)
        arbiter.request("a")
        assert arbiter.arbitrate() == []
        arbiter.set_power_budget(1e-6)
        assert arbiter.arbitrate() == ["a"]

    def test_protocol_misuse_rejected(self):
        arbiter = SoftArbiter(power_budget=1e-6)
        arbiter.register("a", 1e-6)
        with pytest.raises(ArbitrationError):
            arbiter.request("ghost")
        with pytest.raises(ArbitrationError):
            arbiter.release("a")
        arbiter.request("a")
        with pytest.raises(ArbitrationError):
            arbiter.request("a")


class TestConcurrencyManager:
    def test_concurrency_tracks_supply_power(self):
        manager = ConcurrencyManager(power_per_task=1e-6, service_rounds=1,
                                     max_concurrency=8)
        strong = manager.step(supply_power=8e-6, arrivals=8)
        weak = manager.step(supply_power=2e-6, arrivals=8)
        assert strong.allowed_concurrency == 8
        assert weak.allowed_concurrency == 2
        assert weak.achieved_concurrency <= 2

    def test_power_drought_turns_into_backlog_not_loss(self):
        manager = ConcurrencyManager(power_per_task=1e-6, service_rounds=1,
                                     max_concurrency=4)
        manager.run([0.0] * 10, arrivals_per_step=1)
        assert manager.completed == 0
        assert manager.backlog == 10
        manager.run([4e-6] * 30, arrivals_per_step=0)
        assert manager.completed == 10
        assert manager.backlog == 0

    def test_average_metrics(self):
        manager = ConcurrencyManager(power_per_task=1e-6, max_concurrency=4)
        manager.run([2e-6] * 20, arrivals_per_step=2)
        assert manager.average_concurrency() > 0
        assert manager.average_backlog() > 0
        assert manager.throughput() > 0

    def test_never_exceeds_allowed_concurrency(self):
        manager = ConcurrencyManager(power_per_task=1e-6, service_rounds=3,
                                     max_concurrency=8)
        records = manager.run([3e-6] * 40, arrivals_per_step=3)
        assert all(r.achieved_concurrency <= max(r.allowed_concurrency, 0)
                   for r in records)


class TestStochastic:
    @pytest.fixture(scope="class")
    def model(self):
        return PowerLatencyModel(arrival_rate=80.0, service_rate=30.0,
                                 static_power_per_server=1e-6,
                                 dynamic_power_per_server=10e-6)

    def test_minimum_servers_for_stability(self, model):
        c_min = model.minimum_servers()
        assert not model.is_stable(c_min - 1)
        assert model.is_stable(c_min)

    def test_latency_decreases_with_concurrency(self, model):
        c_min = model.minimum_servers()
        assert model.mean_latency(c_min) > model.mean_latency(c_min + 2) \
            > 1.0 / model.service_rate

    def test_power_increases_with_concurrency(self, model):
        assert model.power(8) > model.power(4)

    def test_erlang_c_is_a_probability(self, model):
        for servers in range(model.minimum_servers(), 12):
            assert 0.0 <= model.erlang_c(servers) <= 1.0

    def test_analytical_latency_matches_simulation(self, model):
        servers = model.minimum_servers() + 1
        empirical = simulate_mmc(model, servers, jobs=4000, seed=1)
        assert empirical.mean_latency == pytest.approx(
            model.mean_latency(servers), rel=0.2)

    def test_balanced_optimum_between_extremes(self, model):
        analysis = ConcurrencyAnalysis(model, max_servers=16)
        balanced = analysis.balanced_optimal()
        fastest = analysis.latency_optimal()
        assert model.minimum_servers() <= balanced.servers <= fastest.servers

    def test_minimum_power_feasible_meets_budget(self, model):
        analysis = ConcurrencyAnalysis(model, max_servers=16)
        budget = 2.0 * model.mean_latency(model.minimum_servers() + 2)
        point = analysis.minimum_power_feasible(latency_budget=budget)
        assert point is not None
        assert point.mean_latency <= budget
        cheaper = [p for p in analysis.feasible_points(latency_budget=budget)
                   if p.power < point.power]
        assert cheaper == []

    def test_concurrency_for_power_budget(self, model):
        analysis = ConcurrencyAnalysis(model, max_servers=16)
        assert analysis.concurrency_for_power(model.power(6)) >= 6
        assert analysis.concurrency_for_power(0.0) == 0


class TestPowerManagementGame:
    def make_game(self):
        strategies = [
            Strategy("sleep", power_demand=0.0, qos_yield=0.0),
            Strategy("lowpower", power_demand=5e-6, qos_yield=2.0,
                     salvage_fraction=0.8),
            Strategy("performance", power_demand=50e-6, qos_yield=10.0,
                     salvage_fraction=0.1),
        ]
        return PowerManagementGame(strategies,
                                   harvest_levels=[1e-6, 10e-6, 100e-6],
                                   harvest_probabilities=[0.3, 0.4, 0.3])

    def test_payoff_matrix_shape_and_semantics(self):
        game = self.make_game()
        matrix = game.payoff_matrix()
        assert matrix.shape == (3, 3)
        # Performance mode browns out in the two weak-harvest columns.
        assert matrix[2, 0] == pytest.approx(1.0)
        assert matrix[2, 2] == pytest.approx(10.0)

    def test_pure_security_strategy_is_conservative(self):
        game = self.make_game()
        solution = game.pure_security_strategy()
        assert solution.best_pure_strategy == "lowpower"
        assert solution.is_pure()

    def test_minimax_value_at_least_pure_security_value(self):
        game = self.make_game()
        assert (game.minimax_strategy().game_value
                >= game.pure_security_strategy().game_value - 1e-9)

    def test_best_response_exploits_a_generous_environment(self):
        game = self.make_game()
        optimistic = game.best_response_to([0.0, 0.0, 1.0])
        assert optimistic.best_pure_strategy == "performance"
        pessimistic = game.best_response_to([1.0, 0.0, 0.0])
        assert pessimistic.best_pure_strategy == "lowpower"

    def test_fictitious_play_converges_to_a_sane_mix(self):
        game = self.make_game()
        solution = game.fictitious_play(rounds=300)
        assert sum(solution.strategy_probabilities.values()) == pytest.approx(1.0)
        assert solution.strategy_probabilities["sleep"] < 0.5

    def test_simulation_of_best_response_beats_security_on_average(self):
        game = self.make_game()
        security = game.pure_security_strategy()
        adapted = game.best_response_to()
        assert (game.simulate(adapted, epochs=2000, seed=3)
                >= game.simulate(security, epochs=2000, seed=3) - 1e-9)

    def test_strategies_from_design_cover_sleep_and_active(self, tech):
        from repro.core.design_styles import HybridDesign
        strategies = strategies_from_design(HybridDesign(tech),
                                            vdd_levels=[0.1, 0.3, 1.0])
        assert len(strategies) == 3
        assert strategies[0].name.startswith("sleep")
        assert strategies[2].qos_yield > strategies[1].qos_yield

    def test_invalid_probabilities_rejected(self):
        strategies = [Strategy("s", 0.0, 0.0)]
        with pytest.raises(ConfigurationError):
            PowerManagementGame(strategies, [1e-6], harvest_probabilities=[0.5])
