"""R5 known-bad: batched/per-point pairs that fork cache keys."""

from repro.analysis.runner import BatchedQuantity, batched


def unpaired_kernel(technology, xs):
    return xs


def unpaired_point(technology, x):
    return x


def mismatched_kernel(technology, xs):
    return xs


def mismatched_point(technology, x):
    return x


mismatched_kernel.__cache_fingerprint__ = "kernel-v1"
mismatched_point.__cache_fingerprint__ = "point-v1"

# R5: explicit twin with no shared fingerprint assignments.
unpaired = batched(unpaired_kernel, point=unpaired_point)

# R5: both carry fingerprints, but different ones.
mismatched = batched(mismatched_kernel, point=mismatched_point)

# R5: going around batched() skips the derived per-point path.
direct = BatchedQuantity(unpaired_kernel)
