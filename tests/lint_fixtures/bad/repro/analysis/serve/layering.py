"""R2 known-bad: raw I/O in a serve-layer module."""

import os
import shutil
from pathlib import Path


def save_result(path, data):
    with open(path, "w") as handle:     # R2: raw builtin open
        handle.write(data)


def publish(tmp, target):
    os.replace(tmp, target)             # R2: raw os file op


def scribble(root):
    Path(root).write_text("x")          # R2: pathlib write


def wipe(root):
    shutil.rmtree(root)                 # R2: shutil bypasses the store
