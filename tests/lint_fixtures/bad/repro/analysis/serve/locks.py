"""R4 known-bad: unlocked shared state, and a pickled-lock payload class."""

import threading


class LeakyService:
    """Dispatcher-shared counters touched outside the lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._completed = 0
        self._records = {}

    def finish(self, record_id):
        self._completed += 1                # R4: write outside the lock
        self._records[record_id] = "done"   # R4: write outside the lock

    def snapshot(self):
        with self._lock:
            done = self._completed
        return done, dict(self._records)    # R4: read outside the lock


class PayloadMemo:
    """Payload-protocol class whose lock would hit the pickler."""

    def __init__(self):
        self._lock = threading.Lock()
        self.entries = {}

    def __cache_fingerprint__(self):
        return type(self).__name__

    def put(self, key, value):
        with self._lock:
            self.entries[key] = value
