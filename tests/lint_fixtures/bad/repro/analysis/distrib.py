"""R3 known-bad: lease staleness judged from a wall clock."""

import time


def lease_expired(heartbeat, ttl):
    return time.time() - heartbeat > ttl    # R3: cross-machine skew


def stale_worker_age(last_seen):
    return time.time() - last_seen          # R3: staleness via wall clock
