"""R0 known-bad: suppressions that do not carry their weight."""

import time


def stamped(x):
    return x + time.time()  # repro: allow[R1]


def tagged(x):
    return x  # repro: allow[R9] -- there is no rule R9
