"""R1 known-bad: clocks and global RNG state in model-layer code."""

import random
import time
import uuid

import numpy as np
from numpy.random import default_rng


def wall_clock_point(x):
    return x * time.time()          # R1: wall clock


def global_numpy_draw(x):
    return x + np.random.normal()   # R1: global numpy RNG


def stdlib_random_draw(x):
    return x + random.random()      # R1: stdlib global RNG


def unseeded_stream():
    return default_rng()            # R1: OS-seeded generator


def entropy_tag():
    return uuid.uuid4().hex         # R1: OS entropy
