"""R1 known-good: every draw flows through a seeded per-sample stream."""

import numpy as np
from numpy.random import SeedSequence, default_rng


def sample_draw(seed, index):
    rng = default_rng(SeedSequence((seed, index)))
    return rng.normal()


def seeded_generator(seed):
    return np.random.default_rng(seed)


def injected_clock(now_s, offset_s):
    return now_s + offset_s
