"""R0 known-good: a reasoned allow silencing a deliberate violation."""

import time


def stamp(x):
    # repro: allow[R1] -- corpus fixture: wall time IS the quantity here
    return x + time.time()
