"""R2 known-good: raw I/O only inside the backend allowlist scope."""

import os


class LocalFSStore:
    """The one place raw filesystem bytes are the job, not a leak."""

    def __init__(self, root):
        self.root = root

    def put_atomic(self, key, data):
        target = self.root / key
        tmp = target.with_suffix(".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, target)

    def get(self, key):
        try:
            return (self.root / key).read_bytes()
        except OSError:
            return None


def store_result(store, key, data):
    store.put_atomic(key, data)
