"""R4 known-good: disciplined locking and a pickle-safe payload class."""

import threading


class DisciplinedService:
    """Every shared access under the lock; helpers called lock-held."""

    def __init__(self, max_depth):
        self._lock = threading.Lock()
        self.max_depth = max_depth      # immutable config: free to read
        self._completed = 0
        self._records = {}

    def finish(self, record_id):
        with self._lock:
            self._record_done(record_id)

    def _record_done(self, record_id):
        # Only ever called under self._lock — the escape analysis must
        # treat this body as lock-held, not flag it.
        self._completed += 1
        self._records[record_id] = "done"

    def snapshot(self):
        with self._lock:
            return self._completed, dict(self._records)

    def depth_headroom(self, queued):
        return self.max_depth - queued


class PicklableMemo:
    """Payload-protocol class that drops its lock for the pickler."""

    def __init__(self):
        self._lock = threading.Lock()
        self.entries = {}

    def __cache_fingerprint__(self):
        return type(self).__name__

    def __getstate__(self):
        return {}

    def __setstate__(self, state):
        self.__init__()

    def put(self, key, value):
        with self._lock:
            self.entries[key] = value
