"""R5 known-good: shared fingerprints, or the derived per-point path."""

from repro.analysis.runner import batched


def bare_kernel(technology, xs):
    return xs


def paired_kernel(technology, xs):
    return xs


def paired_point(technology, x):
    return x


paired_kernel.__cache_fingerprint__ = "gate-delay-v2"
paired_point.__cache_fingerprint__ = "gate-delay-v2"

# Bare batched(): the per-point path is derived, keys shared by design.
bare = batched(bare_kernel)

# Explicit twin, identical fingerprint expressions: one cache key.
paired = batched(paired_kernel, point=paired_point)
