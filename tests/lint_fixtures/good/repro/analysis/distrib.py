"""R3 known-good: monotonic staleness; wall clocks only outside leases."""

import time


def lease_expired(first_seen_mono, ttl):
    return time.monotonic() - first_seen_mono > ttl


def presence_timestamp():
    # Not lease logic: advisory wall-clock heartbeat for humans/status.
    return time.time()


def sanitize_worker_id(wid):
    # str.replace is not Path.replace — pinned false-positive regression.
    return wid.replace(":", "-").replace("/", "_")
