"""Tests for the discrete-event simulator kernel."""

import pytest

from repro.errors import DeadlockError, SchedulingError, SimulationError
from repro.sim.signals import Signal
from repro.sim.simulator import Simulator


class TestScheduling:
    def test_schedule_and_run_in_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]
        assert sim.now == 2.0
        assert sim.fired_events == 2

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.advance_to(5.0)
        with pytest.raises(SchedulingError):
            sim.schedule_at(1.0, lambda: None)

    def test_schedule_signal_drives_value(self):
        sim = Simulator()
        s = Signal("s")
        sim.schedule_signal(s, True, 3.0)
        sim.run()
        assert s.value is True
        assert s.history[-1] == (3.0, True)

    def test_events_scheduled_during_run_are_executed(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append("first")
            sim.schedule(1.0, lambda: seen.append("chained"))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == ["first", "chained"]
        assert sim.now == pytest.approx(2.0)


class TestRunControl:
    def test_run_until_leaves_later_events_pending(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(10.0, lambda: seen.append(2))
        sim.run(until=5.0)
        assert seen == [1]
        assert sim.pending_events == 1
        assert sim.now == 5.0
        sim.run()
        assert seen == [1, 2]

    def test_run_until_in_past_rejected(self):
        sim = Simulator()
        sim.advance_to(4.0)
        with pytest.raises(SchedulingError):
            sim.run(until=1.0)

    def test_stop_halts_the_loop(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: (seen.append(1), sim.stop()))
        sim.schedule(2.0, lambda: seen.append(2))
        sim.run()
        assert seen == [1]
        assert sim.stopped
        assert sim.pending_events == 1

    def test_step_requires_pending_events(self):
        sim = Simulator()
        with pytest.raises(DeadlockError):
            sim.step()

    def test_step_fires_exactly_one(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append("a"))
        sim.schedule(2.0, lambda: seen.append("b"))
        event = sim.step()
        assert seen == ["a"]
        assert event.time == 1.0

    def test_run_until_idle_raises_on_leftover_events(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        with pytest.raises(DeadlockError):
            sim.run_until_idle(max_time=1.0)

    def test_max_events_watchdog(self):
        sim = Simulator(max_events=10)

        def reschedule():
            sim.schedule(1.0, reschedule)

        sim.schedule(1.0, reschedule)
        with pytest.raises(SimulationError):
            sim.run()


class TestHooks:
    def test_idle_hook_runs_when_queue_drains(self):
        sim = Simulator()
        idle_times = []
        sim.call_when_idle(idle_times.append)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert idle_times == [2.0]

    def test_trace_callback_sees_every_event(self):
        traced = []
        sim = Simulator(trace=lambda event: traced.append(event.label))
        sim.schedule(1.0, lambda: None, label="x")
        sim.schedule(2.0, lambda: None, label="y")
        sim.run()
        assert traced == ["x", "y"]
