"""Tests for the power-adaptive controller and the composed system (Fig. 3)."""

import pytest

from repro.core.design_styles import HybridDesign, SpeedIndependentDesign
from repro.core.power_adaptive import AdaptationPolicy, PowerAdaptiveController
from repro.core.system import EnergyModulatedSystem
from repro.core.proportionality import proportionality_index
from repro.errors import ConfigurationError
from repro.power.harvester import IntermittentHarvester, VibrationHarvester
from repro.power.power_chain import PowerChain
from repro.sensors.reference_free import ReferenceFreeVoltageSensor


class TestAdaptationPolicy:
    def test_target_voltage_tracks_the_store(self):
        policy = AdaptationPolicy(store_low=1.0, store_high=2.0,
                                  vdd_floor=0.25, vdd_nominal=1.0)
        assert policy.target_voltage(0.5) == pytest.approx(0.25)
        assert policy.target_voltage(2.5) == pytest.approx(1.0)
        midpoint = policy.target_voltage(1.5)
        assert 0.25 < midpoint < 1.0

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            AdaptationPolicy(store_low=2.0, store_high=1.0)
        with pytest.raises(ConfigurationError):
            AdaptationPolicy(vdd_floor=1.0, vdd_nominal=0.5)


def make_chain(peak_power=300e-6, initial_voltage=2.0, seed=0):
    harvester = VibrationHarvester(peak_power=peak_power, wander=0.0, seed=seed)
    return PowerChain(harvester=harvester, storage_capacitance=47e-6,
                      initial_store_voltage=initial_voltage)


class TestPowerAdaptiveController:
    def test_run_produces_one_record_per_step(self, tech):
        controller = PowerAdaptiveController(
            chain=make_chain(), design=HybridDesign(tech), step_interval=0.01)
        records = controller.run(0.1)
        assert len(records) == 10
        assert controller.operations_done > 0
        assert controller.energy_consumed > 0
        assert controller.average_rail_voltage() > 0

    def test_rich_store_runs_at_nominal_depleted_store_drops_down(self, tech):
        policy = AdaptationPolicy(store_low=1.0, store_high=2.5,
                                  vdd_floor=0.25, vdd_nominal=1.0)
        rich = PowerAdaptiveController(
            chain=make_chain(initial_voltage=3.0), design=HybridDesign(tech),
            policy=policy)
        poor = PowerAdaptiveController(
            chain=make_chain(peak_power=20e-6, initial_voltage=0.9),
            design=HybridDesign(tech), policy=policy)
        rich_record = rich.step()
        poor_record = poor.step()
        assert rich_record.target_voltage == pytest.approx(1.0)
        assert poor_record.target_voltage == pytest.approx(0.25)
        assert poor_record.admitted_operations <= rich_record.admitted_operations

    def test_hybrid_changes_active_design_with_supply_level(self, tech):
        policy = AdaptationPolicy(store_low=1.0, store_high=2.5,
                                  vdd_floor=0.25, vdd_nominal=1.0)
        controller = PowerAdaptiveController(
            chain=make_chain(peak_power=20e-6, initial_voltage=3.0),
            design=HybridDesign(tech), policy=policy,
            step_interval=0.05)
        # Drain the store by admitting load without enough harvesting.
        controller.run(3.0)
        profile = controller.duty_profile()
        assert len(profile) >= 1
        assert sum(profile.values()) == pytest.approx(1.0)

    def test_sensor_in_the_loop_introduces_bounded_error(self, tech):
        # The storage node can exceed the 1 V logic rail, so the metering
        # sensor is calibrated over the full supercap range.
        sensor = ReferenceFreeVoltageSensor(technology=tech)
        sensor.calibrate([0.2 + 0.02 * i for i in range(91)])
        controller = PowerAdaptiveController(
            chain=make_chain(initial_voltage=0.9),
            design=SpeedIndependentDesign(tech),
            sensor=sensor, step_interval=0.01)
        controller.run(0.05)
        assert controller.worst_sensing_error() < 0.05

    def test_invalid_step_interval(self, tech):
        with pytest.raises(ConfigurationError):
            PowerAdaptiveController(chain=make_chain(),
                                    design=HybridDesign(tech),
                                    step_interval=0.0)


class TestEnergyModulatedSystem:
    def test_report_is_self_consistent(self, tech):
        system = EnergyModulatedSystem(
            harvester=VibrationHarvester(peak_power=300e-6, wander=0.0, seed=1),
            design=HybridDesign(tech),
            storage_capacitance=47e-6,
            initial_store_voltage=2.0,
            control_interval=0.02,
        )
        report = system.run(1.0)
        assert report.operations_completed > 0
        assert report.energy_harvested > 0
        assert report.energy_consumed_by_load <= report.energy_delivered_to_load * 1.01
        assert 0.0 < report.end_to_end_efficiency <= 1.0
        assert report.average_throughput == pytest.approx(
            report.operations_completed / 1.0)
        assert len(report.adaptation_trace) == 50

    def test_more_harvested_energy_means_more_operations(self, tech):
        def run_with(peak_power):
            system = EnergyModulatedSystem(
                harvester=VibrationHarvester(peak_power=peak_power, wander=0.0,
                                             seed=2),
                design=HybridDesign(tech),
                storage_capacitance=47e-6,
                initial_store_voltage=1.2,
                control_interval=0.02,
            )
            return system.run(1.0)
        weak = run_with(20e-6)
        strong = run_with(400e-6)
        assert strong.energy_harvested > weak.energy_harvested
        assert strong.operations_completed >= weak.operations_completed

    def test_system_survives_an_intermittent_harvester(self, tech):
        system = EnergyModulatedSystem(
            harvester=IntermittentHarvester(peak_power=200e-6, mean_on_time=0.2,
                                            mean_off_time=0.3, seed=3),
            design=HybridDesign(tech),
            storage_capacitance=47e-6,
            initial_store_voltage=1.5,
            control_interval=0.02,
        )
        report = system.run(2.0)
        # The system kept operating through droughts without raising.
        assert report.operations_completed > 0
        rail_voltages = [r.rail_voltage for r in report.adaptation_trace]
        assert min(rail_voltages) >= 0.0

    def test_proportionality_curve_of_the_whole_system(self, tech):
        def build():
            return EnergyModulatedSystem(
                harvester=VibrationHarvester(peak_power=300e-6, wander=0.0,
                                             seed=4),
                design=HybridDesign(tech),
                storage_capacitance=47e-6,
                initial_store_voltage=1.5,
                control_interval=0.02,
            )
        curve = EnergyModulatedSystem.proportionality_curve(
            build, durations=[0.1, 0.2, 0.4, 0.8])
        assert len(curve.points) == 4
        index = proportionality_index(curve)
        assert 0.0 < index <= 1.0

    def test_invalid_run_duration(self, tech):
        system = EnergyModulatedSystem(
            harvester=VibrationHarvester(seed=5), design=HybridDesign(tech))
        with pytest.raises(ConfigurationError):
            system.run(0.0)
