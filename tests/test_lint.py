"""The project-invariant linter: rules, suppressions, CLI, JSON schema.

Backed by the committed corpus in ``tests/lint_fixtures/`` (one
known-bad and one known-good tree, laid out as miniature ``repro/``
packages) plus generated-on-the-fly trees for the suppression and CLI
edge cases.  The two capstone pins: the real source tree comes back
clean, and a seeded violation fails the gate — the same teeth check CI
runs.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (SCHEMA_VERSION, check_paths, default_root,
                                 main, report_json)

FIXTURES = Path(__file__).parent / "lint_fixtures"
BAD = FIXTURES / "bad"
GOOD = FIXTURES / "good"


def findings_for(path, **kwargs):
    findings, _, _ = check_paths([path], **kwargs)
    return findings


def rules_of(findings):
    return sorted({finding.rule for finding in findings})


def write_tree(root, rel, source):
    target = root / "repro" / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return target


class TestDeterminismRule:
    BAD_FILE = BAD / "repro/models/determinism.py"

    def test_wall_clock_flagged(self):
        findings = findings_for(self.BAD_FILE)
        assert any(f.rule == "R1" and "time.time" in f.message
                   for f in findings)

    def test_global_numpy_rng_flagged(self):
        findings = findings_for(self.BAD_FILE)
        assert any(f.rule == "R1" and "numpy.random.normal" in f.message
                   for f in findings)

    def test_stdlib_random_flagged(self):
        findings = findings_for(self.BAD_FILE)
        assert any(f.rule == "R1" and "random.random" in f.message
                   for f in findings)

    def test_unseeded_default_rng_flagged(self):
        findings = findings_for(self.BAD_FILE)
        assert any(f.rule == "R1" and "no seed" in f.message
                   for f in findings)

    def test_os_entropy_flagged(self):
        findings = findings_for(self.BAD_FILE)
        assert any(f.rule == "R1" and "uuid.uuid4" in f.message
                   for f in findings)

    def test_seeded_streams_pass(self):
        assert findings_for(GOOD / "repro/models/determinism.py") == []

    def test_out_of_scope_module_ignored(self, tmp_path):
        # The obs layer measures wall time on purpose: not in R1 scope.
        target = write_tree(tmp_path, "analysis/obs/timing.py",
                            "import time\n\n\ndef now():\n"
                            "    return time.time()\n")
        assert findings_for(target) == []

    def test_every_finding_carries_location_and_hint(self):
        for finding in findings_for(self.BAD_FILE):
            assert finding.line > 0 and finding.path and finding.hint


class TestStoreLayeringRule:
    BAD_FILE = BAD / "repro/analysis/serve/layering.py"

    def test_raw_open_os_pathlib_shutil_all_flagged(self):
        messages = [f.message for f in findings_for(self.BAD_FILE)
                    if f.rule == "R2"]
        assert len(messages) == 4
        assert any("open()" in m for m in messages)
        assert any("os.replace" in m for m in messages)
        assert any("write_text" in m for m in messages)
        assert any("shutil.rmtree" in m for m in messages)

    def test_localfsstore_allowlist_passes(self):
        assert findings_for(GOOD / "repro/analysis/cache.py") == []

    def test_non_store_module_ignored(self, tmp_path):
        target = write_tree(tmp_path, "analysis/obs/writer.py",
                            "def dump(path, text):\n"
                            "    with open(path, 'w') as fh:\n"
                            "        fh.write(text)\n")
        assert findings_for(target) == []


class TestClockDisciplineRule:
    def test_wall_clock_in_lease_logic_flagged(self):
        findings = findings_for(BAD / "repro/analysis/distrib.py")
        assert rules_of(findings) == ["R3"] and len(findings) == 2

    def test_monotonic_and_non_lease_wall_clock_pass(self):
        assert findings_for(GOOD / "repro/analysis/distrib.py") == []

    def test_str_replace_is_not_pathlib_replace(self):
        # Pinned regression: `wid.replace(":", "-")` in the good fixture
        # must not be read as Path.replace (the two-arg str form).
        findings = findings_for(GOOD / "repro/analysis/distrib.py",
                                select=["R2"])
        assert findings == []


class TestLockDisciplineRule:
    BAD_FILE = BAD / "repro/analysis/serve/locks.py"

    def test_unlocked_writes_flagged(self):
        findings = findings_for(self.BAD_FILE)
        writes = [f for f in findings
                  if f.rule == "R4" and f.message.startswith("write")]
        assert {"_completed" in f.message or "_records" in f.message
                for f in writes} == {True}
        assert len(writes) == 2

    def test_unlocked_read_flagged(self):
        findings = findings_for(self.BAD_FILE)
        assert any(f.rule == "R4" and f.message.startswith("read")
                   and "snapshot" in f.message for f in findings)

    def test_payload_class_without_getstate_flagged(self):
        findings = findings_for(self.BAD_FILE)
        assert any(f.rule == "R4" and "PayloadMemo" in f.message
                   and "__getstate__" in f.message for f in findings)

    def test_disciplined_class_passes(self):
        # Locked accesses, a helper only called lock-held, an immutable
        # config attribute read unlocked, and a __getstate__-bearing
        # payload class: all clean.
        assert findings_for(GOOD / "repro/analysis/serve/locks.py") == []

    def test_lockless_class_ignored(self, tmp_path):
        target = write_tree(tmp_path, "analysis/serve/plain.py",
                            "class Plain:\n"
                            "    def __init__(self):\n"
                            "        self.count = 0\n\n"
                            "    def bump(self):\n"
                            "        self.count += 1\n")
        assert findings_for(target) == []


class TestBatchedContractRule:
    BAD_FILE = BAD / "repro/analysis/campaign/contracts.py"

    def test_unpaired_twin_flagged(self):
        findings = findings_for(self.BAD_FILE)
        assert any(f.rule == "R5" and "no __cache_fingerprint__" in f.message
                   for f in findings)

    def test_mismatched_fingerprints_flagged(self):
        findings = findings_for(self.BAD_FILE)
        assert any(f.rule == "R5" and "different" in f.message
                   for f in findings)

    def test_direct_batchedquantity_flagged(self):
        findings = findings_for(self.BAD_FILE)
        assert any(f.rule == "R5" and "BatchedQuantity" in f.message
                   for f in findings)

    def test_bare_batched_and_shared_pair_pass(self):
        assert findings_for(
            GOOD / "repro/analysis/campaign/contracts.py") == []


class TestSuppressions:
    def test_reasoned_allow_suppresses_and_counts(self):
        findings, _, suppressed = check_paths(
            [GOOD / "repro/models/suppressions.py"])
        assert findings == [] and suppressed == 1

    def test_bare_allow_is_a_finding(self):
        findings = findings_for(BAD / "repro/models/suppressions.py")
        assert any(f.rule == "R0" and "no reason" in f.message
                   for f in findings)

    def test_unknown_rule_allow_is_a_finding(self):
        findings = findings_for(BAD / "repro/models/suppressions.py")
        assert any(f.rule == "R0" and "R9" in f.message for f in findings)

    def test_same_line_allow(self, tmp_path):
        target = write_tree(
            tmp_path, "models/a.py",
            "import time\n\n\ndef f(x):\n"
            "    return x + time.time()  "
            "# repro: allow[R1] -- fixture\n")
        findings, _, suppressed = check_paths([target])
        assert findings == [] and suppressed == 1

    def test_comment_block_above_allow(self, tmp_path):
        target = write_tree(
            tmp_path, "models/b.py",
            "import time\n\n\ndef f(x):\n"
            "    # repro: allow[R1] -- a justification that wraps over\n"
            "    # two comment lines stays in force\n"
            "    return x + time.time()\n")
        findings, _, suppressed = check_paths([target])
        assert findings == [] and suppressed == 1

    def test_allow_does_not_leak_past_code(self, tmp_path):
        target = write_tree(
            tmp_path, "models/c.py",
            "import time\n\n\ndef f(x):\n"
            "    # repro: allow[R1] -- covers only the adjacent line\n"
            "    y = x + time.time()\n"
            "    return y + time.time()\n")
        findings, _, suppressed = check_paths([target])
        assert suppressed == 1
        assert [f.rule for f in findings] == ["R1"]

    def test_allow_is_rule_scoped(self, tmp_path):
        target = write_tree(
            tmp_path, "models/d.py",
            "import time\n\n\ndef f(x):\n"
            "    return x + time.time()  "
            "# repro: allow[R5] -- wrong rule\n")
        findings, _, suppressed = check_paths([target])
        assert suppressed == 0
        assert [f.rule for f in findings] == ["R1"]

    def test_r0_cannot_be_suppressed(self, tmp_path):
        target = write_tree(
            tmp_path, "models/e.py",
            "def f(x):\n"
            "    return x  # repro: allow[R0,R1]\n")
        findings = findings_for(target)
        assert any(f.rule == "R0" for f in findings)

    def test_string_literal_is_not_an_allow(self, tmp_path):
        target = write_tree(
            tmp_path, "models/f.py",
            "import time\n\n\ndef f():\n"
            "    note = '# repro: allow[R1] -- in a string'\n"
            "    return note, time.time()\n")
        findings, _, suppressed = check_paths([target])
        assert suppressed == 0
        assert [f.rule for f in findings] == ["R1"]


class TestEngineAndSelection:
    def test_select_restricts_rules(self):
        # The meta rule R0 runs regardless of --select; only an explicit
        # --ignore R0 silences it.
        findings = findings_for(BAD, select=["R1"])
        assert rules_of(findings) == ["R0", "R1"]
        assert rules_of(findings_for(BAD, select=["R1"],
                                     ignore=["R0"])) == ["R1"]

    def test_ignore_drops_rules(self):
        findings = findings_for(BAD, ignore=["R1", "R2", "R3", "R5", "R0"])
        assert rules_of(findings) == ["R4"]

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="R99"):
            check_paths([BAD], select=["R99"])

    def test_syntax_error_becomes_r0_finding(self, tmp_path):
        target = write_tree(tmp_path, "models/broken.py",
                            "def broken(:\n    pass\n")
        findings = findings_for(target)
        assert [f.rule for f in findings] == ["R0"]
        assert "does not parse" in findings[0].message

    def test_pycache_is_skipped(self, tmp_path):
        write_tree(tmp_path, "models/__pycache__/junk.py",
                   "import time\nx = time.time()\n")
        findings, files, _ = check_paths([tmp_path])
        assert files == 0 and findings == []

    def test_file_count_reported(self):
        _, files, _ = check_paths([BAD])
        assert files == 6


class TestJSONReport:
    def test_schema_round_trip(self):
        findings, files, suppressed = check_paths([BAD])
        doc = json.loads(report_json(findings, files=files,
                                     suppressed=suppressed))
        assert doc["version"] == SCHEMA_VERSION
        assert doc["files"] == files
        assert doc["suppressed"] == suppressed
        assert len(doc["findings"]) == len(findings)
        for entry in doc["findings"]:
            assert set(entry) == {"rule", "path", "line", "message", "hint"}
        assert sum(doc["counts"].values()) == len(findings)

    def test_findings_sorted_by_path_line_rule(self):
        findings, files, suppressed = check_paths([BAD])
        doc = json.loads(report_json(findings, files=files,
                                     suppressed=suppressed))
        keys = [(e["path"], e["line"], e["rule"]) for e in doc["findings"]]
        assert keys == sorted(keys)

    def test_clean_document_shape(self):
        doc = json.loads(report_json([], files=3, suppressed=0))
        assert doc == {"version": SCHEMA_VERSION, "files": 3,
                       "findings": [], "counts": {}, "suppressed": 0}


class TestCLI:
    def test_clean_tree_exits_zero(self, capsys):
        assert main([str(GOOD)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert main([str(BAD)]) == 1
        assert "finding(s)" in capsys.readouterr().out

    def test_json_flag(self, capsys):
        assert main([str(BAD), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == SCHEMA_VERSION and doc["findings"]

    def test_rule_flag(self, capsys):
        assert main([str(BAD), "--rule", "R5", "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert set(doc["counts"]) <= {"R0", "R5"}
        assert doc["counts"]["R5"] == 3

    def test_select_ignore_flags(self, capsys):
        assert main([str(BAD), "--select", "R1,R2", "--ignore", "R2",
                     "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert set(doc["counts"]) <= {"R0", "R1"}

    def test_unknown_rule_exits_two(self, capsys):
        assert main([str(BAD), "--rule", "R99"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert main(["no/such/dir"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_selftest_passes(self, capsys):
        assert main(["--selftest"]) == 0
        assert "PASS" in capsys.readouterr().out


class TestRepositoryIsClean:
    def test_source_tree_has_no_findings(self):
        findings, files, _ = check_paths([default_root()])
        assert files > 100
        assert findings == []

    def test_gate_has_teeth_on_a_seeded_violation(self, tmp_path):
        # The CI self-check in miniature: a seeded R1 violation dropped
        # into a repro/ tree must fail the gate with exit 1.
        target = write_tree(tmp_path, "models/seeded.py",
                            "import time\n\n\ndef point(x):\n"
                            "    return x * time.time()\n")
        assert main([str(target)]) == 1
