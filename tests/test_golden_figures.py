"""Golden-value regression tests for headline paper-figure numbers.

The benchmark suite asserts the *shape* each figure reports (orderings,
monotonicity, rough factors); these tests pin the *values* the seed model
produces for three figures, so a refactor of the analysis or model layers
cannot silently drift the reproduction.  The numbers below were captured
from the calibrated ``cmos90`` model; a deliberate recalibration is the
only legitimate reason to update them.

All experiments run through :mod:`repro.analysis.runner`, which guarantees
the values are independent of execution order and executor choice.
"""

import pytest

from repro.analysis.runner import Executor, ExperimentPlan
from repro.analysis.sweep import vdd_range
from repro.core.design_styles import (
    BundledDataDesign,
    HybridDesign,
    SpeedIndependentDesign,
)
from repro.core.proportionality import (
    ProportionalityCurve,
    activity_for_budget,
    dynamic_range,
    proportionality_index,
)
from repro.core.qos import QoSCurve, QoSMetric, qos_point
from repro.power.supply import ConstantSupply
from repro.sensors.charge_to_digital import ChargeToDigitalConverter

#: Relative tolerance for analytically computed (pure-float) quantities.
REL = 1e-6


class TestFig01GoldenValues:
    """FIG1 — energy-proportionality of the two design styles."""

    ENERGY_BUDGETS = [2e-12, 5e-12, 10e-12, 20e-12, 50e-12, 100e-12,
                      200e-12, 500e-12, 1e-9, 2e-9]
    BURST_WINDOW = 1e-4

    @pytest.fixture(scope="class")
    def curves(self, tech):
        design1 = SpeedIndependentDesign(tech)
        design2 = BundledDataDesign(tech)
        vdd1 = max(design1.minimum_operating_voltage() + 0.05, 0.2)
        vdd2 = design2.minimum_operating_voltage() + 0.05

        def activity(design, vdd):
            return lambda budget: activity_for_budget(design, vdd, budget,
                                                      self.BURST_WINDOW)

        plan = ExperimentPlan.sweep("energy_budget", self.ENERGY_BUDGETS)
        result = Executor().run(plan, {"design1": activity(design1, vdd1),
                                       "design2": activity(design2, vdd2)})
        return (ProportionalityCurve("design1", result.series("design1").points),
                ProportionalityCurve("design2", result.series("design2").points))

    def test_operating_voltages(self, tech):
        design1 = SpeedIndependentDesign(tech)
        design2 = BundledDataDesign(tech)
        assert design1.minimum_operating_voltage() == pytest.approx(0.14, rel=REL)
        assert design2.minimum_operating_voltage() == pytest.approx(0.465, rel=1e-3)

    def test_onset_energies(self, curves):
        curve1, curve2 = curves
        assert curve1.onset_energy() == pytest.approx(1e-11, rel=REL)
        assert curve2.onset_energy() == pytest.approx(2e-11, rel=REL)

    def test_proportionality_indices(self, curves):
        curve1, curve2 = curves
        assert proportionality_index(curve1) == pytest.approx(0.9966483374, rel=REL)
        assert proportionality_index(curve2) == pytest.approx(0.9939869612, rel=REL)

    def test_dynamic_ranges(self, curves):
        curve1, curve2 = curves
        assert dynamic_range(curve1) == pytest.approx(200.0, rel=REL)
        assert dynamic_range(curve2) == pytest.approx(100.0, rel=REL)

    def test_activity_at_100pJ(self, curves):
        curve1, curve2 = curves
        assert curve1.activity_at(100e-12) == pytest.approx(21826.187, rel=REL)
        assert curve2.activity_at(100e-12) == pytest.approx(9038.1705, rel=REL)


class TestFig02GoldenValues:
    """FIG2 — QoS versus Vdd for the three design styles."""

    VDD_SWEEP = vdd_range(0.15, 1.1, 20)

    @pytest.fixture(scope="class")
    def designs(self, tech):
        return (SpeedIndependentDesign(tech), BundledDataDesign(tech),
                HybridDesign(tech))

    def test_onset_voltages(self, designs):
        def onset(design):
            plan = ExperimentPlan.sweep("vdd", self.VDD_SWEEP)
            result = Executor().run(plan,
                                    {"qos": lambda v: qos_point(design, v)})
            curve = QoSCurve(design.__class__.__name__, QoSMetric.THROUGHPUT,
                             result.series("qos").points)
            return curve.onset_voltage()

        design1, design2, hybrid = designs
        assert onset(design1) == pytest.approx(0.15, abs=1e-9)
        assert onset(design2) == pytest.approx(0.5, abs=1e-9)
        assert onset(hybrid) == pytest.approx(0.15, abs=1e-9)

    def test_throughput_at_nominal(self, designs):
        design1, design2, hybrid = designs
        assert design1.throughput(1.0) == pytest.approx(1.1578947368e10, rel=REL)
        assert design2.throughput(1.0) == pytest.approx(1.1956521739e10, rel=REL)
        assert hybrid.throughput(1.0) == pytest.approx(1.1956521739e10, rel=REL)

    def test_operations_per_joule_at_nominal(self, designs):
        design1, design2, hybrid = designs
        assert 1.0 / design1.energy_per_operation(1.0) == pytest.approx(
            8.5073077774e12, rel=REL)
        assert 1.0 / design2.energy_per_operation(1.0) == pytest.approx(
            2.7250926532e13, rel=REL)
        assert 1.0 / hybrid.energy_per_operation(1.0) == pytest.approx(
            2.5610214583e13, rel=REL)


class TestFig11GoldenValues:
    """FIG11 — charge-to-digital transfer function of the self-timed counter."""

    #: (sampled voltage, exact count of the event-driven conversion).
    GOLDEN_COUNTS = [(0.3, 3853), (0.5, 6227), (1.0, 9410)]

    @pytest.fixture(scope="class")
    def converter(self, tech):
        return ChargeToDigitalConverter(technology=tech,
                                        sampling_capacitance=30e-12)

    def test_counts_are_exact(self, converter):
        voltages = [v for v, _ in self.GOLDEN_COUNTS]
        plan = ExperimentPlan.sweep("sampled_vdd", voltages)
        result = Executor().run(plan, {
            "count": lambda v: converter.convert(ConstantSupply(v)).count})
        counts = [int(c) for _, c in result.series("count").points]
        assert counts == [count for _, count in self.GOLDEN_COUNTS]

    def test_predicted_counts(self, converter):
        assert converter.predicted_count(0.3) == 3849
        assert converter.predicted_count(0.5) == 6224
        assert converter.predicted_count(1.0) == 9406

    def test_conversion_gain(self, converter):
        assert converter.conversion_gain(0.3, 1.0) == pytest.approx(
            7938.5714286, rel=REL)

    def test_charge_and_time_at_nominal(self, converter):
        result = converter.convert(ConstantSupply(1.0))
        assert result.charge_consumed == pytest.approx(2.58000554e-11, rel=1e-4)
        assert result.conversion_time == pytest.approx(1.27699306e-4, rel=1e-4)
