"""Golden-value regression tests for headline paper-figure numbers.

The benchmark suite asserts the *shape* each figure reports (orderings,
monotonicity, rough factors); these tests pin the *values* the seed model
produces for Figs. 1, 2, 3, 4, 6, 7, 8, 9, 11 and 12, so a refactor of
the analysis or model layers cannot silently drift the reproduction.  The
numbers below were captured from the calibrated ``cmos90`` model; a
deliberate recalibration is the only legitimate reason to update them.

All experiments run through :mod:`repro.analysis.runner`, which guarantees
the values are independent of execution order and executor choice.
"""

import pytest

from repro.analysis.runner import Executor, ExperimentPlan
from repro.analysis.sweep import vdd_range
from repro.core.design_styles import (
    BundledDataDesign,
    HybridDesign,
    SpeedIndependentDesign,
)
from repro.core.power_adaptive import loop_metrics, run_fig3_loop
from repro.core.proportionality import (
    ProportionalityCurve,
    activity_for_budget,
    dynamic_range,
    proportionality_index,
)
from repro.core.qos import QoSCurve, QoSMetric, qos_point
from repro.power.harvester import VibrationHarvester
from repro.power.power_chain import PowerChain
from repro.power.supply import ACSupply, ConstantSupply
from repro.selftimed.counter import run_dualrail_scenario
from repro.sensors.charge_to_digital import (
    ChargeToDigitalConverter,
    conversion_metrics,
    meter_rail,
)
from repro.sensors.reference_free import ReferenceFreeVoltageSensor, race_metrics
from repro.sram.sram import (
    SRAMConfig,
    operation_metrics,
    run_handshake_protocol,
    run_varying_rail_writes,
)

#: Relative tolerance for analytically computed (pure-float) quantities.
REL = 1e-6


class TestFig01GoldenValues:
    """FIG1 — energy-proportionality of the two design styles."""

    ENERGY_BUDGETS = [2e-12, 5e-12, 10e-12, 20e-12, 50e-12, 100e-12,
                      200e-12, 500e-12, 1e-9, 2e-9]
    BURST_WINDOW = 1e-4

    @pytest.fixture(scope="class")
    def curves(self, tech):
        design1 = SpeedIndependentDesign(tech)
        design2 = BundledDataDesign(tech)
        vdd1 = max(design1.minimum_operating_voltage() + 0.05, 0.2)
        vdd2 = design2.minimum_operating_voltage() + 0.05

        def activity(design, vdd):
            return lambda budget: activity_for_budget(design, vdd, budget,
                                                      self.BURST_WINDOW)

        plan = ExperimentPlan.sweep("energy_budget", self.ENERGY_BUDGETS)
        result = Executor().run(plan, {"design1": activity(design1, vdd1),
                                       "design2": activity(design2, vdd2)})
        return (ProportionalityCurve("design1", result.series("design1").points),
                ProportionalityCurve("design2", result.series("design2").points))

    def test_operating_voltages(self, tech):
        design1 = SpeedIndependentDesign(tech)
        design2 = BundledDataDesign(tech)
        assert design1.minimum_operating_voltage() == pytest.approx(0.14, rel=REL)
        assert design2.minimum_operating_voltage() == pytest.approx(0.465, rel=1e-3)

    def test_onset_energies(self, curves):
        curve1, curve2 = curves
        assert curve1.onset_energy() == pytest.approx(1e-11, rel=REL)
        assert curve2.onset_energy() == pytest.approx(2e-11, rel=REL)

    def test_proportionality_indices(self, curves):
        curve1, curve2 = curves
        assert proportionality_index(curve1) == pytest.approx(0.9966483374, rel=REL)
        assert proportionality_index(curve2) == pytest.approx(0.9939869612, rel=REL)

    def test_dynamic_ranges(self, curves):
        curve1, curve2 = curves
        assert dynamic_range(curve1) == pytest.approx(200.0, rel=REL)
        assert dynamic_range(curve2) == pytest.approx(100.0, rel=REL)

    def test_activity_at_100pJ(self, curves):
        curve1, curve2 = curves
        assert curve1.activity_at(100e-12) == pytest.approx(21826.187, rel=REL)
        assert curve2.activity_at(100e-12) == pytest.approx(9038.1705, rel=REL)


class TestFig02GoldenValues:
    """FIG2 — QoS versus Vdd for the three design styles."""

    VDD_SWEEP = vdd_range(0.15, 1.1, 20)

    @pytest.fixture(scope="class")
    def designs(self, tech):
        return (SpeedIndependentDesign(tech), BundledDataDesign(tech),
                HybridDesign(tech))

    def test_onset_voltages(self, designs):
        def onset(design):
            plan = ExperimentPlan.sweep("vdd", self.VDD_SWEEP)
            result = Executor().run(plan,
                                    {"qos": lambda v: qos_point(design, v)})
            curve = QoSCurve(design.__class__.__name__, QoSMetric.THROUGHPUT,
                             result.series("qos").points)
            return curve.onset_voltage()

        design1, design2, hybrid = designs
        assert onset(design1) == pytest.approx(0.15, abs=1e-9)
        assert onset(design2) == pytest.approx(0.5, abs=1e-9)
        assert onset(hybrid) == pytest.approx(0.15, abs=1e-9)

    def test_throughput_at_nominal(self, designs):
        design1, design2, hybrid = designs
        assert design1.throughput(1.0) == pytest.approx(1.1578947368e10, rel=REL)
        assert design2.throughput(1.0) == pytest.approx(1.1956521739e10, rel=REL)
        assert hybrid.throughput(1.0) == pytest.approx(1.1956521739e10, rel=REL)

    def test_operations_per_joule_at_nominal(self, designs):
        design1, design2, hybrid = designs
        assert 1.0 / design1.energy_per_operation(1.0) == pytest.approx(
            8.5073077774e12, rel=REL)
        assert 1.0 / design2.energy_per_operation(1.0) == pytest.approx(
            2.7250926532e13, rel=REL)
        assert 1.0 / hybrid.energy_per_operation(1.0) == pytest.approx(
            2.5610214583e13, rel=REL)


class TestFig11GoldenValues:
    """FIG11 — charge-to-digital transfer function of the self-timed counter."""

    #: (sampled voltage, exact count of the event-driven conversion).
    GOLDEN_COUNTS = [(0.3, 3853), (0.5, 6227), (1.0, 9410)]

    @pytest.fixture(scope="class")
    def converter(self, tech):
        return ChargeToDigitalConverter(technology=tech,
                                        sampling_capacitance=30e-12)

    def test_counts_are_exact(self, converter):
        voltages = [v for v, _ in self.GOLDEN_COUNTS]
        plan = ExperimentPlan.sweep("sampled_vdd", voltages)
        result = Executor().run(plan, {
            "count": lambda v: converter.convert(ConstantSupply(v)).count})
        counts = [int(c) for _, c in result.series("count").points]
        assert counts == [count for _, count in self.GOLDEN_COUNTS]

    def test_predicted_counts(self, converter):
        assert converter.predicted_count(0.3) == 3849
        assert converter.predicted_count(0.5) == 6224
        assert converter.predicted_count(1.0) == 9406

    def test_conversion_gain(self, converter):
        assert converter.conversion_gain(0.3, 1.0) == pytest.approx(
            7938.5714286, rel=REL)

    def test_charge_and_time_at_nominal(self, converter):
        result = converter.convert(ConstantSupply(1.0))
        assert result.charge_consumed == pytest.approx(2.58000554e-11, rel=1e-4)
        assert result.conversion_time == pytest.approx(1.27699306e-4, rel=1e-4)


class TestFig03GoldenValues:
    """FIG3 — the seeded closed adaptation loop.

    Uses the library's :func:`run_fig3_loop` reference scenario — the very
    function the Fig. 3 benchmark sweeps — so the golden values and the
    benchmark can never silently pin different scenarios.
    """

    @pytest.fixture(scope="class")
    def adaptive_metrics(self, tech):
        return loop_metrics(run_fig3_loop(tech, True))

    @pytest.fixture(scope="class")
    def fixed_metrics(self, tech):
        return loop_metrics(run_fig3_loop(tech, False))

    def test_operations(self, adaptive_metrics, fixed_metrics):
        # Both controllers saturate the admission cap of 50k ops x 100 steps
        # in this environment; the adaptive one does so at a lower rail.
        assert adaptive_metrics["operations"] == 5_000_000.0
        assert fixed_metrics["operations"] == 5_000_000.0

    def test_energy_ledger(self, adaptive_metrics, fixed_metrics):
        assert adaptive_metrics["energy_harvested"] == pytest.approx(
            1.57371537145118e-4, rel=REL)
        assert adaptive_metrics["energy_consumed"] == pytest.approx(
            1.7110093060745074e-7, rel=REL)
        assert fixed_metrics["energy_consumed"] == pytest.approx(
            1.9523460000000198e-7, rel=REL)

    def test_rail_and_reserve(self, adaptive_metrics, fixed_metrics):
        assert adaptive_metrics["average_rail_voltage"] == pytest.approx(
            0.9279049024299464, rel=REL)
        assert fixed_metrics["average_rail_voltage"] == pytest.approx(
            1.0, rel=REL)
        assert adaptive_metrics["min_stored_energy"] == pytest.approx(
            4.129434564880048e-5, rel=REL)


class TestFig07GoldenValues:
    """FIG7 — the two event-driven writes under a recovering rail."""

    CONFIG = SRAMConfig(rows=16, columns=8, calibrate_energy=False)

    @pytest.fixture(scope="class")
    def records(self, tech):
        sram, slow, fast = run_varying_rail_writes(tech, self.CONFIG)
        return sram, slow, fast

    def test_data_committed(self, records):
        sram, _, _ = records
        assert sram.peek(1) == 0xA5
        assert sram.peek(2) == 0x5A

    def test_latencies(self, records):
        _, slow, fast = records
        assert slow.latency == pytest.approx(4.630808906492517e-8, rel=REL)
        assert fast.latency == pytest.approx(1.1836202264046711e-10, rel=REL)

    def test_energies(self, records):
        _, slow, fast = records
        assert slow.energy == pytest.approx(3.404680482838456e-14, rel=REL)
        assert fast.energy == pytest.approx(5.504608772541529e-13, rel=REL)


class TestFig12GoldenValues:
    """FIG12 — the calibrated SRAM-vs-ruler race sensor."""

    CALIBRATION_GRID = [0.20 + 0.01 * i for i in range(81)]
    #: (true Vdd, exact thermometer code of the race).
    GOLDEN_CODES = [(0.205, 2512), (0.505, 968), (0.955, 803)]

    @pytest.fixture(scope="class")
    def sensor(self, tech):
        sensor = ReferenceFreeVoltageSensor(technology=tech)
        sensor.calibrate(self.CALIBRATION_GRID)
        return sensor

    def test_codes_are_exact(self, sensor):
        for vdd, code in self.GOLDEN_CODES:
            assert race_metrics(sensor, vdd)["code"] == float(code)

    def test_measurement_errors(self, sensor):
        assert race_metrics(sensor, 0.505)["measured"] == pytest.approx(
            0.5053333333333333, rel=REL)
        assert race_metrics(sensor, 0.955)["error"] == pytest.approx(
            0.005, abs=1e-9)

    def test_operating_range(self, sensor):
        low, high = sensor.operating_range()
        assert low == pytest.approx(0.14, rel=REL)
        assert high == pytest.approx(0.99, rel=1e-3)


class TestFig04GoldenValues:
    """FIG4 — the 2-bit dual-rail counter on AC versus DC supply.

    Uses :func:`run_dualrail_scenario` — the same scenario the Fig. 4
    benchmark sweeps over its ``supply_mode`` axis — so the golden values
    and the benchmark can never silently pin different runs.
    """

    STEPS = 12

    @pytest.fixture(scope="class")
    def ac_run(self, tech):
        supply = ACSupply(offset=0.2, amplitude=0.1, frequency=1e6)
        return run_dualrail_scenario(tech, supply, self.STEPS)

    @pytest.fixture(scope="class")
    def dc_run(self, tech):
        return run_dualrail_scenario(tech, ConstantSupply(1.0), self.STEPS)

    def test_sequences_are_exact(self, ac_run, dc_run):
        for run in (ac_run, dc_run):
            assert run.sequence_correct
            assert run.values_emitted == run.expected
            metrics = run.metrics()
            assert metrics["steps_emitted"] == float(self.STEPS)
            assert metrics["stalls"] == 0.0

    def test_finish_times(self, ac_run, dc_run):
        assert ac_run.metrics()["finish_time"] == pytest.approx(
            1.4716792550177496e-7, rel=REL)
        assert dc_run.metrics()["finish_time"] == pytest.approx(
            1.2749090909090912e-8, rel=REL)

    def test_energies(self, ac_run, dc_run):
        assert ac_run.metrics()["energy"] == pytest.approx(
            9.207614960432956e-15, rel=REL)
        assert dc_run.metrics()["energy"] == pytest.approx(
            1.5206399999999995e-13, rel=REL)


class TestFig06GoldenValues:
    """FIG6 — the handshake-controlled SRAM write and read."""

    CONFIG = SRAMConfig(rows=16, columns=8, calibrate_energy=False)

    @pytest.fixture(scope="class")
    def records(self, tech):
        sram, write_record, read_record = run_handshake_protocol(
            tech, self.CONFIG)
        return sram, write_record, read_record

    def test_data_committed(self, records):
        sram, _, _ = records
        assert sram.peek(3) == 0b10110101

    def test_latencies(self, records):
        _, write_record, read_record = records
        assert operation_metrics(write_record)["latency"] == pytest.approx(
            4.047888156760812e-10, rel=REL)
        assert operation_metrics(read_record)["latency"] == pytest.approx(
            3.8297507783803904e-10, rel=REL)

    def test_energies(self, records):
        _, write_record, read_record = records
        assert operation_metrics(write_record)["energy"] == pytest.approx(
            1.3761521931353821e-13, rel=REL)
        assert operation_metrics(read_record)["energy"] == pytest.approx(
            5.1133423449146786e-14, rel=REL)

    def test_phase_counts(self, records):
        _, write_record, read_record = records
        assert operation_metrics(write_record)["phases"] == 6.0
        assert operation_metrics(read_record)["phases"] == 6.0


class TestFig08GoldenValues:
    """FIG8 — the charge-to-digital sensor metering the EH power chain."""

    CALIBRATION_GRID = [0.3 + 0.05 * i for i in range(16)]
    #: (rail set-point, exact conversion code of the metering).
    GOLDEN_CODES = [(0.4, 5202), (0.7, 7773), (1.0, 9410)]

    @pytest.fixture(scope="class")
    def sensor(self, tech):
        sensor = ChargeToDigitalConverter(technology=tech,
                                          sampling_capacitance=30e-12)
        sensor.calibrate(self.CALIBRATION_GRID)
        return sensor

    @staticmethod
    def _metered(sensor, target):
        chain = PowerChain(
            harvester=VibrationHarvester(peak_power=300e-6, wander=0.0,
                                         seed=0),
            storage_capacitance=100e-6, output_voltage=target,
            initial_store_voltage=2.0)
        return meter_rail(sensor, chain)

    def test_codes_are_exact(self, sensor):
        for target, code in self.GOLDEN_CODES:
            assert self._metered(sensor, target).code == code

    def test_measured_voltages(self, sensor):
        assert self._metered(sensor, 0.4).measured_voltage == pytest.approx(
            0.4001851851851852, rel=REL)
        assert self._metered(sensor, 1.0).measured_voltage == pytest.approx(
            1.0008928571428573, rel=REL)

    def test_store_energy_taken(self, sensor):
        assert self._metered(sensor, 1.0).store_energy_taken == pytest.approx(
            3.2500898700842454e-11, rel=REL)


class TestFig09GoldenValues:
    """FIG9 — charge-to-code conversions of a 30 pF sampled charge."""

    #: (sampled voltage, exact count, charge consumed).
    GOLDEN_CONVERSIONS = [
        (0.4, 5202, 7.800246430543176e-12),
        (0.6, 7065, 1.3800309511316761e-11),
        (0.8, 8385, 1.9800040306124034e-11),
        (1.0, 9410, 2.5800055387704575e-11),
    ]

    @pytest.fixture(scope="class")
    def conversions(self, tech):
        converter = ChargeToDigitalConverter(technology=tech,
                                             sampling_capacitance=30e-12)
        return {voltage: conversion_metrics(converter, voltage)
                for voltage, _, _ in self.GOLDEN_CONVERSIONS}

    def test_counts_are_exact(self, conversions):
        for voltage, count, _ in self.GOLDEN_CONVERSIONS:
            assert conversions[voltage]["count"] == float(count)

    def test_charges_consumed(self, conversions):
        for voltage, _, charge in self.GOLDEN_CONVERSIONS:
            assert conversions[voltage]["charge_consumed"] == pytest.approx(
                charge, rel=REL)

    def test_charge_per_count_at_extremes(self, conversions):
        assert conversions[0.4]["charge_per_count"] == pytest.approx(
            1.4994706710002259e-15, rel=REL)
        assert conversions[1.0]["charge_per_count"] == pytest.approx(
            2.741769966812388e-15, rel=REL)

    def test_final_voltages_near_stop(self, conversions):
        for voltage, _, _ in self.GOLDEN_CONVERSIONS:
            assert conversions[voltage]["final_voltage"] == pytest.approx(
                0.14, abs=2e-5)
