"""Tests for repro.models.technology."""

import pytest

from repro.errors import ConfigurationError
from repro.models.technology import TECHNOLOGIES, Technology, get_technology


class TestBuiltinTechnologies:
    def test_builtin_names(self):
        assert set(TECHNOLOGIES) == {"cmos90", "cmos65", "cmos180"}

    def test_get_technology_default_is_90nm(self):
        tech = get_technology()
        assert tech.name == "cmos90"
        assert tech.feature_size_nm == pytest.approx(90.0)

    def test_get_technology_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            get_technology("cmos7")

    def test_paper_operating_window_is_representable(self, tech):
        # The paper's circuits span 0.2 V - 1 V in 90 nm.
        assert tech.vdd_min < 0.2
        assert tech.vdd_nominal == pytest.approx(1.0)
        assert tech.vdd_min < tech.vth < tech.vdd_nominal

    def test_older_node_has_higher_nominal_voltage(self, tech, tech180):
        assert tech180.vdd_nominal > tech.vdd_nominal
        assert tech180.gate_cap_per_um > tech.gate_cap_per_um

    def test_newer_node_leaks_more(self, tech, tech65):
        assert tech65.i_leak_per_um > tech.i_leak_per_um


class TestDerivedQuantities:
    def test_unit_inverter_caps_positive(self, tech):
        assert tech.unit_inverter_input_cap > 0
        assert tech.unit_inverter_output_cap > 0

    def test_input_cap_scales_with_gate_cap(self, tech):
        doubled = tech.scaled(gate_cap_per_um=2 * tech.gate_cap_per_um)
        assert doubled.unit_inverter_input_cap == pytest.approx(
            2 * tech.unit_inverter_input_cap)


class TestScaled:
    def test_scaled_overrides_one_field(self, tech):
        slow = tech.scaled(vth=0.4)
        assert slow.vth == pytest.approx(0.4)
        assert slow.vdd_nominal == tech.vdd_nominal

    def test_scaled_does_not_mutate_original(self, tech):
        original_vth = tech.vth
        tech.scaled(vth=0.5)
        assert tech.vth == original_vth

    def test_scaled_rejects_unknown_field(self, tech):
        with pytest.raises((ConfigurationError, TypeError)):
            tech.scaled(not_a_field=1.0)
