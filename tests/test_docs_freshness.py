"""Docs freshness: the README map and the doc links cannot rot silently.

Two checks, both also run by the CI ``docs`` job:

* every ``benchmarks/test_*.py`` file appears in the README's
  figure → benchmark → module map table (and every file the table
  names exists), so a new benchmark cannot land undocumented and a
  renamed one cannot leave a stale row behind;
* every relative link and anchor in ``README.md`` and ``docs/*.md``
  resolves (``scripts/check_doc_links.py``).
"""

import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"


def readme_benchmark_references():
    """Every ``benchmarks/...py`` path the README mentions."""
    return set(re.findall(r"benchmarks/test_\w+\.py", README.read_text()))


def benchmark_files():
    return {f"benchmarks/{path.name}"
            for path in (REPO_ROOT / "benchmarks").glob("test_*.py")}


def test_every_benchmark_is_in_the_readme_map():
    missing = benchmark_files() - readme_benchmark_references()
    assert not missing, (
        "benchmark file(s) missing from README's "
        f"figure → benchmark → module map: {sorted(missing)} — add a row "
        "for each so the docs stay a complete inventory")


def test_every_readme_benchmark_reference_exists():
    stale = readme_benchmark_references() - benchmark_files()
    assert not stale, (
        f"README references benchmark file(s) that do not exist: "
        f"{sorted(stale)} — a rename or removal left stale docs behind")


def test_doc_links_resolve():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts/check_doc_links.py")],
        capture_output=True, text=True, cwd=REPO_ROOT, timeout=60)
    assert result.returncode == 0, (
        f"broken doc links:\n{result.stdout}{result.stderr}")


def test_observability_doc_covers_every_feed():
    """docs/observability.md documents each feed the dashboard renders."""
    doc = (REPO_ROOT / "docs" / "observability.md").read_text()
    for needle in ("GET /v1/status", "GET /v1/dashboard",
                   "distrib status --json", "cache --stats --json",
                   "BENCH_history.jsonl", "--allow",
                   "check_bench_regression.py", "bench_trajectory.py"):
        assert needle in doc, f"docs/observability.md lost {needle!r}"
