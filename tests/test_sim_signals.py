"""Tests for signals, nets and vector helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.signals import Net, Signal, thermometer_value, vector_value


class TestSignal:
    def test_initial_value_and_history(self):
        s = Signal("s", initial=True)
        assert s.value is True
        assert s.history == [(0.0, True)]

    def test_set_returns_true_only_on_change(self):
        s = Signal("s")
        assert s.set(True, 1.0) is True
        assert s.set(True, 2.0) is False
        assert s.transition_count == 1

    def test_listeners_called_with_signal_value_time(self):
        s = Signal("s")
        seen = []
        s.subscribe(lambda sig, value, time: seen.append((sig.name, value, time)))
        s.set(True, 3.0)
        assert seen == [("s", True, 3.0)]

    def test_unsubscribe_stops_notifications(self):
        s = Signal("s")
        seen = []
        listener = lambda sig, v, t: seen.append(v)
        s.subscribe(listener)
        s.unsubscribe(listener)
        s.set(True, 1.0)
        assert seen == []

    def test_backwards_time_rejected(self):
        s = Signal("s")
        s.set(True, 5.0)
        with pytest.raises(SimulationError):
            s.set(False, 1.0)

    def test_value_at_and_edges(self):
        s = Signal("s")
        s.set(True, 1.0)
        s.set(False, 2.0)
        s.set(True, 3.0)
        assert s.value_at(0.5) is False
        assert s.value_at(1.5) is True
        assert s.edges(rising=True) == [1.0, 3.0]
        assert s.edges(rising=False) == [2.0]
        assert s.pulse_count() == 1

    def test_unrecorded_signal_refuses_history_queries(self):
        s = Signal("s", record=False)
        s.set(True, 1.0)
        with pytest.raises(SimulationError):
            s.value_at(0.5)


class TestNet:
    def test_initial_value_encoding(self):
        net = Net("bus", width=4, initial=0b1010)
        assert net.value == 0b1010
        assert net.as_bools() == [False, True, False, True]

    def test_set_value_round_trips(self):
        net = Net("bus", width=8)
        net.set_value(0xA5, 1.0)
        assert net.value == 0xA5

    def test_set_value_range_check(self):
        net = Net("bus", width=4)
        with pytest.raises(SimulationError):
            net.set_value(16, 1.0)

    def test_transition_count_counts_changed_bits(self):
        net = Net("bus", width=4, initial=0)
        net.set_value(0b0011, 1.0)
        assert net.transition_count() == 2

    def test_width_validation(self):
        with pytest.raises(SimulationError):
            Net("bus", width=0)

    def test_indexing_and_iteration(self):
        net = Net("bus", width=3)
        assert len(net) == 3
        assert net[0].name == "bus[0]"
        assert [bit.name for bit in net] == ["bus[0]", "bus[1]", "bus[2]"]


class TestVectorHelpers:
    def test_vector_value(self):
        bits = [Signal("b0", initial=True), Signal("b1"), Signal("b2", initial=True)]
        assert vector_value(bits) == 0b101

    def test_thermometer_value_counts_leading_ones(self):
        bits = [Signal("t0", initial=True), Signal("t1", initial=True),
                Signal("t2"), Signal("t3", initial=True)]
        assert thermometer_value(bits) == 2

    def test_thermometer_all_zero(self):
        assert thermometer_value([Signal("a"), Signal("b")]) == 0

    @given(st.integers(min_value=0, max_value=255))
    def test_net_value_round_trip_property(self, value):
        net = Net("bus", width=8)
        net.set_value(value, 1.0)
        assert net.value == value
        assert vector_value(net.bits) == value
