"""Tests for event-driven gates, inverters, delay lines and the C-element."""

import pytest

from repro.errors import ConfigurationError
from repro.power.capacitor import Capacitor
from repro.power.supply import ConstantSupply, PiecewiseSupply
from repro.selftimed.celement import CElement
from repro.selftimed.gates import DelayLine, Inverter, LogicGate
from repro.sim.probes import EnergyProbe
from repro.sim.signals import Signal
from repro.sim.simulator import Simulator


def make_env(vdd=1.0):
    return Simulator(), ConstantSupply(vdd)


class TestLogicGate:
    def test_nand_truth_table(self, tech):
        sim, supply = make_env()
        a, b, y = Signal("a"), Signal("b"), Signal("y", initial=True)
        LogicGate(sim, supply, tech, "nand", inputs=[a, b], output=y,
                  function=lambda x, z: not (x and z))
        sim.schedule_signal(a, True, 1e-9)
        sim.schedule_signal(b, True, 2e-9)
        sim.run()
        assert y.value is False
        sim.schedule_signal(b, False, 1e-9)
        sim.run()
        assert y.value is True

    def test_output_change_takes_time(self, tech):
        sim, supply = make_env()
        a, y = Signal("a"), Signal("y", initial=True)
        gate = Inverter(sim, supply, tech, "inv", input_signal=a, output=y)
        sim.schedule_signal(a, True, 0.0)
        sim.run()
        assert y.value is False
        # The output edge happened strictly after the input edge.
        assert y.history[-1][0] > 0.0
        assert gate.transition_count == 1

    def test_gate_is_slower_at_low_vdd(self, tech):
        latencies = {}
        for vdd in (0.3, 1.0):
            sim, supply = make_env(vdd)
            a, y = Signal("a"), Signal("y", initial=True)
            Inverter(sim, supply, tech, "inv", input_signal=a, output=y)
            sim.schedule_signal(a, True, 0.0)
            sim.run()
            latencies[vdd] = y.history[-1][0]
        assert latencies[0.3] > latencies[1.0]

    def test_gate_bills_energy_to_supply_and_probe(self, tech):
        sim, supply = make_env()
        probe = EnergyProbe()
        a, y = Signal("a"), Signal("y", initial=True)
        gate = Inverter(sim, supply, tech, "inv", input_signal=a, output=y,
                        energy_probe=probe)
        sim.schedule_signal(a, True, 0.0)
        sim.run()
        assert gate.energy_consumed > 0
        assert supply.energy_delivered == pytest.approx(gate.energy_consumed)
        assert probe.total == pytest.approx(gate.energy_consumed)

    def test_glitch_is_filtered_inertially(self, tech):
        sim, supply = make_env()
        a, y = Signal("a"), Signal("y", initial=True)
        gate = Inverter(sim, supply, tech, "inv", input_signal=a, output=y)
        # Pulse far narrower than the gate delay: output must not move.
        sim.schedule_signal(a, True, 0.0)
        sim.schedule_signal(a, False, 1e-15)
        sim.run()
        assert y.value is True
        assert gate.transition_count == 0

    def test_stall_below_functional_minimum_and_retry(self, tech):
        sim = Simulator()
        # Supply starts dead and recovers after 1 us.
        supply = PiecewiseSupply([(0.0, 0.05), (1e-6, 1.0)])
        a, y = Signal("a"), Signal("y", initial=True)
        gate = Inverter(sim, supply, tech, "inv", input_signal=a, output=y)
        sim.schedule_signal(a, True, 0.0)
        sim.run()
        assert gate.stalled
        assert y.value is True
        sim.advance_to(2e-6)
        gate.retry()
        sim.run()
        assert y.value is False

    def test_requires_at_least_one_input(self, tech):
        sim, supply = make_env()
        with pytest.raises(ConfigurationError):
            LogicGate(sim, supply, tech, "bad", inputs=[],
                      output=Signal("y"), function=lambda: True)


class TestCElement:
    def test_output_moves_only_on_consensus(self, tech):
        sim, supply = make_env()
        a, b, y = Signal("a"), Signal("b"), Signal("y")
        CElement(sim, supply, tech, "c", inputs=[a, b], output=y)
        sim.schedule_signal(a, True, 1e-9)
        sim.run()
        assert y.value is False           # only one input high
        sim.schedule_signal(b, True, 1e-9)
        sim.run()
        assert y.value is True            # consensus high
        sim.schedule_signal(a, False, 1e-9)
        sim.run()
        assert y.value is True            # holds state
        sim.schedule_signal(b, False, 1e-9)
        sim.run()
        assert y.value is False           # consensus low

    def test_inverted_input(self, tech):
        sim, supply = make_env()
        a, b, y = Signal("a"), Signal("b", initial=True), Signal("y")
        CElement(sim, supply, tech, "c", inputs=[a, b], output=y,
                 inverted_inputs=[False, True])
        # With b inverted, (a=1, b=0) is consensus high.
        sim.schedule_signal(b, False, 1e-9)
        sim.schedule_signal(a, True, 1e-9)
        sim.run()
        assert y.value is True

    def test_force_sets_output_immediately(self, tech):
        sim, supply = make_env()
        a, b, y = Signal("a"), Signal("b"), Signal("y")
        c = CElement(sim, supply, tech, "c", inputs=[a, b], output=y)
        c.force(True)
        assert y.value is True


class TestDelayLine:
    def test_total_delay_scales_with_stage_count(self, tech):
        results = {}
        for stages in (4, 16):
            sim, supply = make_env()
            a = Signal("a")
            line = DelayLine(sim, supply, tech, f"dl{stages}", input_signal=a,
                             stages=stages)
            sim.schedule_signal(a, True, 0.0)
            sim.run()
            results[stages] = line.output.history[-1][0]
        assert results[16] > 3 * results[4]

    def test_event_delay_matches_nominal_estimate(self, tech):
        sim, supply = make_env(0.8)
        a = Signal("a")
        line = DelayLine(sim, supply, tech, "dl", input_signal=a, stages=10)
        sim.schedule_signal(a, True, 0.0)
        sim.run()
        measured = line.output.history[-1][0]
        assert measured == pytest.approx(line.nominal_delay(0.8), rel=0.05)

    def test_stages_passed_thermometer(self, tech):
        sim = Simulator()
        # Power the line from a tiny capacitor so it stops part-way through.
        cap = Capacitor(capacitance=2e-15, initial_voltage=0.6,
                        min_operating_voltage=0.15)
        a = Signal("a")
        line = DelayLine(sim, cap, tech, "dl", input_signal=a, stages=64)
        sim.schedule_signal(a, True, 0.0)
        sim.run()
        assert 0 < line.stages_passed() < 64

    def test_rejects_zero_stages(self, tech):
        sim, supply = make_env()
        with pytest.raises(ConfigurationError):
            DelayLine(sim, supply, tech, "dl", input_signal=Signal("a"), stages=0)
