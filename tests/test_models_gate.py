"""Tests for the voltage-aware gate delay/energy model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ModelError
from repro.models.gate import GateModel, GateType
from repro.models.technology import get_technology


@pytest.fixture(scope="module")
def inverter(tech):
    return GateModel(technology=tech, gate_type=GateType.INVERTER)


@pytest.fixture(scope="module")
def c_element(tech):
    return GateModel(technology=tech, gate_type=GateType.C_ELEMENT)


class TestDelay:
    def test_delay_decreases_with_vdd(self, inverter):
        assert (inverter.delay(0.2) > inverter.delay(0.4)
                > inverter.delay(0.7) > inverter.delay(1.0) > 0)

    def test_delay_blows_up_near_functional_minimum(self, inverter, tech):
        near_min = tech.vdd_min * 1.05
        assert inverter.delay(near_min) > 50 * inverter.delay(1.0)

    def test_external_load_slows_the_gate(self, inverter):
        unloaded = inverter.delay(1.0)
        loaded = inverter.delay(1.0, external_load=20 * inverter.input_capacitance)
        assert loaded > unloaded

    def test_complex_gate_slower_than_inverter(self, inverter, c_element):
        assert c_element.delay(0.6) > inverter.delay(0.6)

    def test_higher_drive_strength_is_faster_into_fixed_load(self, tech):
        load = 50e-15
        weak = GateModel(technology=tech, drive_strength=1.0)
        strong = GateModel(technology=tech, drive_strength=4.0)
        assert strong.delay(1.0, external_load=load) < weak.delay(1.0, external_load=load)

    def test_frequency_is_inverse_of_period(self, inverter):
        f = inverter.frequency(1.0)
        assert f > 0
        assert inverter.frequency(0.5) < f


class TestEnergy:
    def test_switching_energy_scales_quadratically(self, inverter):
        e_half = inverter.switching_energy(0.5)
        e_full = inverter.switching_energy(1.0)
        assert e_full == pytest.approx(4 * e_half, rel=0.01)

    def test_transition_energy_exceeds_pure_switching(self, inverter):
        # Transition energy folds in short-circuit current.
        assert inverter.transition_energy(1.0) >= inverter.switching_energy(1.0)

    def test_transition_charge_consistent_with_energy(self, inverter):
        vdd = 0.8
        assert inverter.transition_charge(vdd) == pytest.approx(
            inverter.transition_energy(vdd) / vdd, rel=1e-6)

    def test_leakage_power_increases_with_vdd(self, inverter):
        assert inverter.leakage_power(1.0) > inverter.leakage_power(0.3) > 0

    def test_complex_gate_leaks_more(self, inverter, tech):
        toggle = GateModel(technology=tech, gate_type=GateType.TOGGLE)
        assert toggle.leakage_power(1.0) > inverter.leakage_power(1.0)

    def test_short_circuit_energy_nonnegative(self, inverter):
        assert inverter.short_circuit_energy(1.0) >= 0
        assert inverter.short_circuit_energy(0.25) >= 0


class TestCapacitances:
    def test_input_cap_tracks_logical_effort(self, inverter, c_element):
        assert c_element.input_capacitance > inverter.input_capacitance

    def test_total_load_includes_parasitic(self, inverter):
        assert inverter.total_load(0.0) >= inverter.parasitic_capacitance
        assert (inverter.total_load(10e-15)
                == pytest.approx(inverter.total_load(0.0) + 10e-15))


class TestValidation:
    def test_non_positive_vdd_rejected(self, inverter):
        with pytest.raises((ModelError, ValueError)):
            inverter.delay(0.0)

    def test_below_functional_minimum_delay_is_huge_or_raises(self, inverter, tech):
        try:
            value = inverter.delay(tech.vdd_min * 0.5)
        except ModelError:
            return
        assert value > inverter.delay(tech.vdd_min * 2)


@given(vdd=st.floats(min_value=0.2, max_value=1.1))
def test_gate_delay_energy_always_positive_property(vdd):
    gate = GateModel(technology=get_technology("cmos90"),
                     gate_type=GateType.NAND2)
    assert gate.delay(vdd) > 0
    assert gate.transition_energy(vdd) > 0
    assert gate.leakage_power(vdd) > 0
