"""Tests for ideal, AC, piecewise and ramp supplies."""

import math

import pytest

from repro.errors import ConfigurationError, PowerError
from repro.power.supply import ACSupply, ConstantSupply, PiecewiseSupply, RampSupply


class TestConstantSupply:
    def test_voltage_is_time_independent(self):
        supply = ConstantSupply(0.8)
        assert supply.voltage(0.0) == 0.8
        assert supply.voltage(123.4) == 0.8

    def test_draw_charge_accumulates_energy(self):
        supply = ConstantSupply(1.0)
        supply.draw_charge(2e-12, 0.0)
        supply.draw_charge(3e-12, 1.0)
        assert supply.charge_delivered == pytest.approx(5e-12)
        assert supply.energy_delivered == pytest.approx(5e-12)  # Q·V at 1 V

    def test_negative_charge_rejected(self):
        supply = ConstantSupply(1.0)
        with pytest.raises(PowerError):
            supply.draw_charge(-1e-12, 0.0)

    def test_set_voltage(self):
        supply = ConstantSupply(1.0)
        supply.set_voltage(0.4)
        assert supply.voltage(0.0) == 0.4

    def test_draw_energy_helper(self):
        supply = ConstantSupply(0.5)
        supply.draw_energy(1e-12, 0.0)
        assert supply.charge_delivered == pytest.approx(2e-12)


class TestACSupply:
    """The paper's Fig. 4 rail: 200 mV ± 100 mV at 1 MHz."""

    @pytest.fixture()
    def rail(self):
        return ACSupply(offset=0.2, amplitude=0.1, frequency=1e6)

    def test_min_max(self, rail):
        assert rail.minimum_voltage == pytest.approx(0.1)
        assert rail.maximum_voltage == pytest.approx(0.3)

    def test_periodicity(self, rail):
        t = 0.37e-6
        assert rail.voltage(t) == pytest.approx(rail.voltage(t + 1e-6), abs=1e-12)

    def test_sweep_covers_the_range(self, rail):
        samples = [rail.voltage(i * 1e-8) for i in range(200)]
        assert min(samples) == pytest.approx(0.1, abs=5e-3)
        assert max(samples) == pytest.approx(0.3, abs=5e-3)

    def test_phase_offsets_the_waveform(self):
        base = ACSupply(offset=0.2, amplitude=0.1, frequency=1e6)
        shifted = ACSupply(offset=0.2, amplitude=0.1, frequency=1e6,
                           phase=math.pi / 2)
        assert base.voltage(0.0) != pytest.approx(shifted.voltage(0.0))


class TestPiecewiseSupply:
    def test_step_profile(self):
        supply = PiecewiseSupply([(0.0, 0.3), (1.0, 1.0), (2.0, 0.5)])
        assert supply.voltage(0.5) == pytest.approx(0.3)
        assert supply.voltage(1.5) == pytest.approx(1.0)
        assert supply.voltage(5.0) == pytest.approx(0.5)

    def test_interpolated_profile(self):
        supply = PiecewiseSupply([(0.0, 0.0), (1.0, 1.0)], interpolate=True)
        assert supply.voltage(0.5) == pytest.approx(0.5)

    def test_requires_breakpoints(self):
        with pytest.raises(ConfigurationError):
            PiecewiseSupply([])


class TestRampSupply:
    def test_ramps_between_endpoints(self):
        supply = RampSupply(v_start=0.2, v_end=1.0, duration=1.0)
        assert supply.voltage(0.0) == pytest.approx(0.2)
        assert supply.voltage(0.5) == pytest.approx(0.6)
        assert supply.voltage(1.0) == pytest.approx(1.0)
        assert supply.voltage(2.0) == pytest.approx(1.0)

    def test_falling_ramp(self):
        supply = RampSupply(v_start=1.0, v_end=0.2, duration=2.0)
        assert supply.voltage(1.0) == pytest.approx(0.6)
