"""Tests for the toggle flip-flop and both self-timed counters."""

import pytest

from repro.power.capacitor import Capacitor
from repro.power.supply import ACSupply, ConstantSupply
from repro.selftimed.counter import DualRailCounter, SelfTimedCounter
from repro.selftimed.toggle import ToggleFlipFlop
from repro.sim.signals import Signal
from repro.sim.simulator import Simulator


class TestToggleFlipFlop:
    def test_output_toggles_on_rising_edges(self, tech):
        sim, supply = Simulator(), ConstantSupply(1.0)
        pulse = Signal("p")
        toggle = ToggleFlipFlop(sim, supply, tech, "t0", input_signal=pulse)
        for i in range(3):
            sim.schedule_signal(pulse, True, 1e-9)
            sim.schedule_signal(pulse, False, 2e-9)
            sim.run()
        assert toggle.toggle_count == 3
        assert toggle.output.value is True  # odd number of toggles

    def test_falling_edge_trigger(self, tech):
        sim, supply = Simulator(), ConstantSupply(1.0)
        pulse = Signal("p")
        toggle = ToggleFlipFlop(sim, supply, tech, "t0", input_signal=pulse,
                                trigger_on_rising=False)
        sim.schedule_signal(pulse, True, 1e-9)
        sim.run()
        assert toggle.toggle_count == 0
        sim.schedule_signal(pulse, False, 1e-9)
        sim.run()
        assert toggle.toggle_count == 1

    def test_each_toggle_draws_charge(self, tech):
        sim, supply = Simulator(), ConstantSupply(0.5)
        pulse = Signal("p")
        toggle = ToggleFlipFlop(sim, supply, tech, "t0", input_signal=pulse)
        sim.schedule_signal(pulse, True, 1e-9)
        sim.run()
        expected_charge = toggle.charge_per_toggle(0.5) / 2.0
        assert supply.charge_delivered == pytest.approx(expected_charge, rel=1e-6)

    def test_stall_callback_when_supply_dead(self, tech):
        sim = Simulator()
        dead = ConstantSupply(0.05)   # below vdd_min
        pulse = Signal("p")
        stalled = []
        toggle = ToggleFlipFlop(sim, dead, tech, "t0", input_signal=pulse,
                                on_stall=stalled.append)
        sim.schedule_signal(pulse, True, 1e-9)
        sim.run()
        assert stalled == [toggle]
        assert toggle.toggle_count == 0


class TestSelfTimedCounter:
    def test_ripple_count_matches_pulse_count(self, tech):
        sim, supply = Simulator(), ConstantSupply(1.0)
        counter = SelfTimedCounter(sim, supply, tech, width=6, max_pulses=20)
        counter.start_oscillator()
        sim.run()
        assert counter.pulses_generated == 20
        assert counter.value() == 20 % 64
        assert counter.finished

    def test_counter_on_capacitor_stops_when_charge_runs_out(self, tech):
        sim = Simulator()
        cap = Capacitor(capacitance=1e-12, initial_voltage=0.8,
                        min_operating_voltage=tech.vdd_min)
        counter = SelfTimedCounter(sim, cap, tech, width=16,
                                   max_pulses=1_000_000)
        counter.start_oscillator()
        sim.run()
        assert counter.finished
        assert 0 < counter.pulses_generated < 1_000_000
        # The supply really did collapse.
        assert cap.voltage(sim.now) <= 2 * tech.vdd_min

    def test_larger_capacitor_counts_more(self, tech):
        counts = {}
        for cap_value in (1e-12, 4e-12):
            sim = Simulator()
            cap = Capacitor(capacitance=cap_value, initial_voltage=0.8,
                            min_operating_voltage=tech.vdd_min)
            counter = SelfTimedCounter(sim, cap, tech, width=16)
            counter.start_oscillator()
            sim.run()
            counts[cap_value] = counter.pulses_generated
        assert counts[4e-12] > 2 * counts[1e-12]

    def test_energy_accounting_matches_supply(self, tech):
        sim, supply = Simulator(), ConstantSupply(1.0)
        counter = SelfTimedCounter(sim, supply, tech, width=4, max_pulses=10)
        counter.start_oscillator()
        sim.run()
        assert counter.energy_consumed_total() == pytest.approx(
            supply.energy_delivered, rel=1e-9)

    def test_stop_oscillator_freezes_count(self, tech):
        sim, supply = Simulator(), ConstantSupply(1.0)
        counter = SelfTimedCounter(sim, supply, tech, width=8, max_pulses=1000)
        counter.start_oscillator()
        sim.run(until=counter._half_period(1.0) * 21)
        counter.stop_oscillator()
        frozen = counter.pulses_generated
        sim.run()
        assert counter.pulses_generated == frozen


def drive_dual_rail_counter(sim, counter, steps, handshake_gap=5e-9):
    """Environment for the Fig. 4 counter: a 4-phase req/ack loop."""
    state = {"steps_left": steps}

    def on_ack(signal, value, time):
        if value:
            # Data acknowledged: release the request (return-to-zero).
            sim.schedule_signal(counter.req, False, handshake_gap)
        else:
            # Spacer acknowledged: next request, if any.
            if state["steps_left"] > 0:
                state["steps_left"] -= 1
                sim.schedule_signal(counter.req, True, handshake_gap)

    counter.ack.subscribe(on_ack)
    state["steps_left"] -= 1
    sim.schedule_signal(counter.req, True, handshake_gap)


class TestDualRailCounter:
    def test_counts_correctly_on_stable_supply(self, tech):
        sim, supply = Simulator(), ConstantSupply(1.0)
        counter = DualRailCounter(sim, supply, tech, width=2)
        drive_dual_rail_counter(sim, counter, steps=10)
        sim.run()
        assert counter.count == 10 % 4
        assert len(counter.values_emitted) == 10
        assert counter.sequence_is_correct()

    def test_fig4_operation_under_ac_supply(self, tech):
        """The paper's Fig. 4: 200 mV +/- 100 mV, 1 MHz AC supply."""
        sim = Simulator()
        supply = ACSupply(offset=0.2, amplitude=0.1, frequency=1e6)
        counter = DualRailCounter(sim, supply, tech, width=2)
        drive_dual_rail_counter(sim, counter, steps=8)
        sim.run_until_idle(max_time=1.0)
        assert len(counter.values_emitted) == 8
        assert counter.sequence_is_correct()
        # The AC supply made the logic stall at least once near the troughs,
        # yet no count was lost — the speed-independence claim.
        assert counter.values_emitted == counter.expected_sequence(8)

    def test_low_supply_only_slows_the_counter(self, tech):
        durations = {}
        for vdd in (0.25, 1.0):
            sim, supply = Simulator(), ConstantSupply(vdd)
            counter = DualRailCounter(sim, supply, tech, width=2)
            drive_dual_rail_counter(sim, counter, steps=4)
            sim.run()
            assert counter.sequence_is_correct()
            durations[vdd] = sim.now
        assert durations[0.25] > durations[1.0]
