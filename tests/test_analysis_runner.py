"""Tests for the parallel experiment engine (:mod:`repro.analysis.runner`).

The engine's contract is strict: a plan enumerates its points in one
deterministic order, and the serial path, the process pool and any future
executor must produce *bit-identical* values for the same plan and seed.
"""

import pytest

from repro.analysis.montecarlo import run_study
from repro.analysis.runner import (
    Executor,
    ExperimentPlan,
    TechnologyCache,
    main as runner_main,
)
from repro.analysis.sweep import Series, SweepResult, sweep
from repro.errors import ConfigurationError
from repro.models.gate import GateModel


def _delay_quantity(tech):
    gate = GateModel(technology=tech)
    return gate.delay


def _mc_delay(perturbed):
    return GateModel(technology=perturbed).delay(0.4)


VDDS = [0.25, 0.3, 0.4, 0.6, 0.8, 1.0]
TEMPS = [250.0, 300.0, 350.0]


class TestExperimentPlan:
    def test_sweep_plan_geometry(self):
        plan = ExperimentPlan.sweep("vdd", VDDS)
        assert plan.kind == "sweep"
        assert plan.shape == (len(VDDS),)
        assert plan.point_count == len(VDDS)
        assert plan.points() == [(v,) for v in VDDS]
        assert plan.describe_axes() == {"vdd": len(VDDS)}

    def test_grid_plan_is_row_major_with_last_axis_fastest(self):
        plan = ExperimentPlan.grid("vdd", [0.3, 1.0], "t", TEMPS)
        assert plan.shape == (2, 3)
        assert plan.point_count == 6
        assert plan.points() == [(0.3, 250.0), (0.3, 300.0), (0.3, 350.0),
                                 (1.0, 250.0), (1.0, 300.0), (1.0, 350.0)]

    def test_monte_carlo_plan_carries_seed_and_spec(self, tech):
        plan = ExperimentPlan.monte_carlo(8, technology=tech, seed=42,
                                          sigma_vth=0.02)
        assert plan.kind == "montecarlo"
        assert plan.seed == 42
        assert plan.variation.sigma_vth == 0.02
        assert plan.shape == (8,)

    def test_invalid_plans_rejected(self, tech):
        with pytest.raises(ConfigurationError):
            ExperimentPlan.sweep("vdd", [])
        with pytest.raises(ConfigurationError):
            ExperimentPlan.grid("vdd", [0.3], "vdd", [0.4])
        with pytest.raises(ConfigurationError):
            ExperimentPlan.grid("vdd", [], "t", TEMPS)
        with pytest.raises(ConfigurationError):
            ExperimentPlan.monte_carlo(0, technology=tech)


class TestSerialParallelEquivalence:
    def test_sweep_serial_and_parallel_bit_identical(self, tech):
        plan = ExperimentPlan.sweep("vdd", VDDS)
        quantities = {"delay": _delay_quantity(tech)}
        serial = Executor(workers=0).run(plan, quantities)
        pooled = Executor(workers=2).run(plan, quantities)
        assert serial.values == pooled.values
        assert pooled.provenance.executor.startswith("fork-pool")
        assert serial.provenance.executor == "serial"

    def test_grid_serial_and_parallel_bit_identical(self, tech):
        plan = ExperimentPlan.grid("vdd", VDDS, "width_um", [0.12, 0.24])

        def delay(vdd, width_um):
            scaled = tech.scaled(min_width_um=width_um)
            return GateModel(technology=scaled).delay(vdd)

        serial = Executor(workers=0).run(plan, {"delay": delay})
        pooled = Executor(workers=2).run(plan, {"delay": delay})
        assert serial.values == pooled.values

    def test_monte_carlo_serial_and_parallel_bit_identical(self, tech):
        plan = ExperimentPlan.monte_carlo(24, technology=tech, seed=9)
        serial = Executor(workers=0).run(plan, {"delay": _mc_delay})
        pooled = Executor(workers=3).run(plan, {"delay": _mc_delay})
        assert serial.values == pooled.values

    def test_single_worker_falls_back_to_serial(self, tech):
        plan = ExperimentPlan.sweep("vdd", VDDS)
        result = Executor(workers=1).run(plan, {"delay": _delay_quantity(tech)})
        assert result.provenance.executor == "serial"

    def test_concurrent_pool_claim_falls_back_to_serial(self, tech):
        """While one pool run is in flight its payload global is claimed;
        a second run must take the serial path, never the wrong payload."""
        from repro.analysis import runner as runner_module

        plan = ExperimentPlan.sweep("vdd", VDDS)
        quantities = {"delay": _delay_quantity(tech)}
        assert runner_module._POOL_CLAIM.acquire(blocking=False)
        try:
            result = Executor(workers=2).run(plan, quantities)
        finally:
            runner_module._POOL_CLAIM.release()
        assert result.provenance.executor == "serial"
        assert result.values == Executor(workers=0).run(plan, quantities).values
        # The claim is free again: the next run uses the pool.
        pooled = Executor(workers=2).run(plan, quantities)
        assert pooled.provenance.executor.startswith("fork-pool")

    def test_quantity_exceptions_propagate_from_the_pool(self):
        plan = ExperimentPlan.sweep("x", [1.0, 2.0, 3.0])

        def explode(x):
            raise ValueError(f"boom at {x}")

        with pytest.raises(ValueError):
            Executor(workers=2).run(plan, {"f": explode})


class TestResults:
    def test_sweep_result_round_trip_matches_legacy_loop(self, tech):
        gate = GateModel(technology=tech)
        quantities = {"delay": gate.delay, "energy": gate.transition_energy}
        result = sweep("vdd", VDDS, quantities)
        assert isinstance(result, SweepResult)
        assert result.names == ["delay", "energy"]
        # Exactly what the hand-rolled loop produced before the port.
        expected = [(float(v), float(gate.delay(v))) for v in VDDS]
        assert result["delay"].points == expected

    def test_grid_views_shape_and_cuts(self):
        plan = ExperimentPlan.grid("x", [1.0, 2.0], "y", [10.0, 20.0, 30.0])
        result = Executor().run(plan, {"sum": lambda x, y: x + y})
        assert result.value_grid("sum") == [[11.0, 21.0, 31.0],
                                            [12.0, 22.0, 32.0]]
        cut = result.series_at("sum", y=20.0)
        assert isinstance(cut, Series)
        assert cut.points == [(1.0, 21.0), (2.0, 22.0)]
        cut_x = result.series_at("sum", x=2.0)
        assert cut_x.points == [(10.0, 12.0), (20.0, 22.0), (30.0, 32.0)]
        assert result.argmin("sum") == ((1.0, 10.0), 11.0)

    def test_argmin_raises_on_nan(self):
        plan = ExperimentPlan.sweep("x", [1.0, 2.0, 3.0])
        result = Executor().run(
            plan, {"f": lambda x: float("nan") if x == 1.0 else x})
        with pytest.raises(ConfigurationError):
            result.argmin("f")

    def test_grid_views_reject_wrong_plan_kind(self):
        plan = ExperimentPlan.sweep("x", [1.0, 2.0])
        result = Executor().run(plan, {"f": lambda x: x})
        with pytest.raises(ConfigurationError):
            result.value_grid("f")
        with pytest.raises(ConfigurationError):
            result.series_at("f", x=1.0)
        with pytest.raises(ConfigurationError):
            result.summary("f")
        with pytest.raises(ConfigurationError):
            result.series("missing")

    def test_provenance_records_the_run(self, tech):
        plan = ExperimentPlan.monte_carlo(6, technology=tech, seed=3)
        result = Executor(workers=0).run(plan, {"delay": _mc_delay})
        record = result.provenance
        assert record.kind == "montecarlo"
        assert record.axes == {"sample": 6}
        assert record.quantities == ("delay",)
        assert record.points == 6
        assert record.seed == 3
        assert record.wall_time_s >= 0.0
        as_dict = record.as_dict()
        assert as_dict["executor"] == "serial"
        assert as_dict["axes"] == {"sample": 6}

    def test_cache_stats_in_provenance_are_per_run(self, tech):
        executor = Executor(workers=0)
        plan = ExperimentPlan.monte_carlo(6, technology=tech, seed=3)
        first = executor.run(plan, {"delay": _mc_delay})
        second = executor.run(plan, {"delay": _mc_delay})
        # The shared cache outlives both runs, but each RunRecord reports
        # only its own run's hits and misses.
        assert (first.provenance.cache_hits,
                first.provenance.cache_misses) == (0, 6)
        assert (second.provenance.cache_hits,
                second.provenance.cache_misses) == (6, 0)


class TestTechnologyCache:
    def test_scaled_rebuilds_are_deduplicated(self, tech):
        cache = TechnologyCache()
        first = cache.scaled(tech, temperature_k=350.0)
        second = cache.scaled(tech, temperature_k=350.0)
        assert first is second
        assert (cache.hits, cache.misses) == (1, 1)
        cache.scaled(tech, temperature_k=250.0)
        assert (cache.hits, cache.misses) == (1, 2)

    def test_mc_sample_shared_across_quantities(self, tech):
        executor = Executor(workers=0)
        plan = ExperimentPlan.monte_carlo(5, technology=tech, seed=1)
        executor.run(plan, {"a": _mc_delay,
                            "b": lambda t: GateModel(technology=t).delay(1.0)})
        # One perturbation per sample, shared by both quantities.
        assert executor.cache.misses == 5
        # Re-running the same plan hits the cache for every sample.
        executor.run(plan, {"a": _mc_delay})
        assert executor.cache.misses == 5
        assert executor.cache.hits >= 5

    def test_cache_is_bounded(self, tech):
        cache = TechnologyCache(max_entries=2)
        for temp in (250.0, 300.0, 350.0):
            cache.scaled(tech, temperature_k=temp)
        assert len(cache) == 2


class TestSeededMonteCarlo:
    def test_run_study_is_reproducible(self, tech):
        a = run_study(tech, _mc_delay, samples=16, seed=21)
        b = run_study(tech, _mc_delay, samples=16, seed=21)
        assert a.samples == b.samples

    def test_run_study_seed_changes_samples(self, tech):
        a = run_study(tech, _mc_delay, samples=16, seed=21)
        b = run_study(tech, _mc_delay, samples=16, seed=22)
        assert a.samples != b.samples

    def test_per_sample_streams_make_prefixes_stable(self, tech):
        """Sample i depends only on (seed, i), not on the batch size."""
        small = run_study(tech, _mc_delay, samples=4, seed=5)
        large = run_study(tech, _mc_delay, samples=9, seed=5)
        assert large.samples[:4] == small.samples

    def test_adjacent_seeds_share_no_streams(self, tech):
        """Replications over seeds 0, 1, 2, ... must be independent — a
        naive ``seed + i`` stream would make seed 1 a shifted copy of
        seed 0."""
        a = run_study(tech, _mc_delay, samples=10, seed=0)
        b = run_study(tech, _mc_delay, samples=10, seed=1)
        assert b.samples[:-1] != a.samples[1:]
        assert not set(a.samples) & set(b.samples)

    def test_run_study_parallel_equals_serial(self, tech):
        serial = run_study(tech, _mc_delay, samples=20, seed=13)
        pooled = run_study(tech, _mc_delay, samples=20, seed=13,
                           executor=Executor(workers=2))
        assert serial.samples == pooled.samples


class TestSelftestEntryPoint:
    def test_selftest_passes(self):
        assert runner_main(["--selftest", "--workers", "2"]) == 0

    def test_no_arguments_prints_help(self, capsys):
        assert runner_main([]) == 2
        assert "selftest" in capsys.readouterr().out
