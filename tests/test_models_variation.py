"""Tests for process corners and Monte-Carlo variation."""

import pytest

from repro.errors import ConfigurationError
from repro.models.gate import GateModel
from repro.models.variation import Corner, ProcessVariation


class TestCorners:
    def test_all_classical_corners_present(self):
        assert {c.value for c in Corner} == {"TT", "FF", "SS", "FS", "SF"}

    def test_fast_corner_strengthens_slow_weakens(self, tech):
        fast = Corner.FAST.apply(tech)
        slow = Corner.SLOW.apply(tech)
        gate_fast = GateModel(technology=fast)
        gate_slow = GateModel(technology=slow)
        gate_typ = GateModel(technology=tech)
        assert gate_fast.delay(0.5) < gate_typ.delay(0.5) < gate_slow.delay(0.5)

    def test_typical_corner_is_identity_like(self, tech):
        typical = Corner.TYPICAL.apply(tech)
        assert typical.vth == pytest.approx(tech.vth, abs=1e-12)

    def test_corner_drive_factors_ordering(self):
        assert Corner.FAST.drive_factor > Corner.TYPICAL.drive_factor
        assert Corner.SLOW.drive_factor < Corner.TYPICAL.drive_factor


class TestProcessVariation:
    def test_deterministic_with_seed(self):
        a = ProcessVariation(seed=42)
        b = ProcessVariation(seed=42)
        sa = [a.sample() for _ in range(5)]
        sb = [b.sample() for _ in range(5)]
        assert [s.vth_offset for s in sa] == [s.vth_offset for s in sb]

    def test_different_seeds_differ(self):
        a = ProcessVariation(seed=1).sample()
        b = ProcessVariation(seed=2).sample()
        assert a.vth_offset != b.vth_offset

    def test_samples_yields_requested_count(self):
        variation = ProcessVariation(seed=0)
        assert len(list(variation.samples(25))) == 25

    def test_drive_derating_never_collapses_to_zero(self):
        variation = ProcessVariation(sigma_drive=0.3, seed=3)
        for sample in variation.samples(200):
            assert sample.drive_derating >= 0.2
            assert sample.leakage_factor > 0

    def test_apply_to_returns_new_technology(self, tech):
        variation = ProcessVariation(seed=7)
        perturbed = variation.apply_to(tech)
        assert perturbed is not tech
        assert perturbed.feature_size_nm == tech.feature_size_nm

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessVariation(sigma_vth=-0.1)

    def test_relative_sigma_bound(self):
        with pytest.raises(ConfigurationError):
            ProcessVariation(sigma_drive=1.5)

    def test_slow_corner_bias_shows_in_samples(self, tech):
        slow = ProcessVariation(corner=Corner.SLOW, seed=5)
        typical = ProcessVariation(corner=Corner.TYPICAL, seed=5)
        slow_mean = sum(s.vth_offset for s in slow.samples(300)) / 300
        typ_mean = sum(s.vth_offset for s in typical.samples(300)) / 300
        assert slow_mean > typ_mean
