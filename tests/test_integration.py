"""Cross-module integration tests: whole signal paths from the paper."""

import pytest

from repro.core.design_styles import HybridDesign
from repro.core.scheduler import EnergyTokenScheduler, Task
from repro.core.system import EnergyModulatedSystem
from repro.power.capacitor import SamplingCapacitor
from repro.power.harvester import VibrationHarvester
from repro.power.power_chain import PowerChain
from repro.power.supply import ACSupply, ConstantSupply
from repro.selftimed.counter import DualRailCounter
from repro.sensors.charge_to_digital import ChargeToDigitalConverter
from repro.sensors.reference_free import ReferenceFreeVoltageSensor
from repro.sim.probes import EnergyProbe
from repro.sim.simulator import Simulator
from repro.sram.sram import SpeedIndependentSRAM, SRAMConfig
from tests.test_selftimed_toggle_counter import drive_dual_rail_counter


class TestSensorMetersThePowerChain:
    """Fig. 8: the charge-to-digital sensor measuring a live DC-DC output."""

    def test_sensor_reading_tracks_the_regulated_rail(self, tech):
        sensor = ChargeToDigitalConverter(technology=tech)
        sensor.calibrate([0.3 + 0.1 * i for i in range(8)])
        for target in (0.5, 0.8, 1.0):
            # A fresh, fully charged chain per set-point (the converter's
            # sample-and-hold front end works at the chain's epoch zero).
            chain = PowerChain(
                harvester=VibrationHarvester(peak_power=300e-6, wander=0.0,
                                             seed=0),
                storage_capacitance=100e-6, output_voltage=target,
                initial_store_voltage=2.0)
            measured = sensor.measure(chain.output_rail, use_simulation=False)
            assert measured == pytest.approx(target, abs=0.05)

    def test_sampling_the_rail_costs_almost_nothing(self, tech):
        chain = PowerChain(
            harvester=VibrationHarvester(peak_power=300e-6, wander=0.0, seed=0),
            storage_capacitance=100e-6, initial_store_voltage=2.0)
        chain.advance(0.1)
        before = chain.store.stored_energy(chain.time)
        cap = SamplingCapacitor(capacitance=30e-12)
        cap.sample(chain.output_rail, sampling_time=1e-6, time=chain.time)
        after = chain.store.stored_energy(chain.time)
        assert before - after < 1e-9   # nanojoules, versus microjoules stored


class TestSRAMOnAHarvesterRail:
    """The paper's headline scenario: SI SRAM running from a harvester chain."""

    def test_writes_complete_on_the_chain_rail(self, tech):
        chain = PowerChain(
            harvester=VibrationHarvester(peak_power=300e-6, wander=0.0, seed=0),
            storage_capacitance=100e-6, output_voltage=0.5,
            initial_store_voltage=1.8)
        chain.advance(0.05)
        sram = SpeedIndependentSRAM(tech, SRAMConfig(rows=8, columns=4,
                                                     calibrate_energy=False))
        sim = Simulator()
        sim.advance_to(chain.time + 1e-3)   # circuit time continues after chain time
        probe = EnergyProbe()
        controller = sram.attach(sim, chain.output_rail, energy_probe=probe)
        for address in range(8):
            controller.write(address, address % 16)
            sim.run()
        assert all(sram.peek(a) == a % 16 for a in range(8))
        assert probe.total > 0
        chain.advance(0.01)   # move environmental time past the circuit activity
        assert chain.report().energy_delivered_to_load > 0

    def test_si_sram_and_dual_rail_counter_share_an_ac_rail(self, tech):
        """Two self-timed blocks on the same unstable rail stay correct."""
        supply = ACSupply(offset=0.3, amplitude=0.15, frequency=2e6)
        sim = Simulator()
        sram = SpeedIndependentSRAM(tech, SRAMConfig(rows=8, columns=4,
                                                     calibrate_energy=False))
        controller = sram.attach(sim, supply)
        counter = DualRailCounter(sim, supply, tech, width=2)
        drive_dual_rail_counter(sim, counter, steps=6)
        controller.write(1, 0b101)
        sim.run_until_idle(max_time=0.1)
        assert sram.peek(1) == 0b101
        assert counter.sequence_is_correct()


class TestEnergyModulatedStack:
    """System-level composition: harvest -> adapt -> schedule -> compute."""

    def test_harvested_energy_budget_drives_the_scheduler(self, tech):
        system = EnergyModulatedSystem(
            harvester=VibrationHarvester(peak_power=200e-6, wander=0.0, seed=7),
            design=HybridDesign(tech),
            storage_capacitance=47e-6,
            initial_store_voltage=1.5,
            control_interval=0.02,
        )
        report = system.run(0.5)
        # Feed the per-step delivered energy into the energy-token scheduler.
        per_step_energy = [r.stored_energy * 0.0 + report.energy_consumed_by_load
                           / max(len(report.adaptation_trace), 1)
                           for r in report.adaptation_trace]
        tasks = [
            Task("sense", energy=1e-9, duration=1, value=1.0, periodic_every=2),
            Task("process", energy=5e-9, duration=1, value=2.0,
                 depends_on=("sense",)),
            Task("transmit", energy=50e-9, duration=1, value=10.0,
                 depends_on=("process",)),
        ]
        scheduler = EnergyTokenScheduler(tasks, joules_per_token=1e-9)
        result = scheduler.run(per_step_energy)
        assert result.energy_offered == pytest.approx(
            report.energy_consumed_by_load, rel=1e-6)
        assert result.total_value > 0

    def test_reference_free_sensor_closes_the_loop_end_to_end(self, tech):
        sensor = ReferenceFreeVoltageSensor(technology=tech)
        sensor.calibrate([0.2 + 0.02 * i for i in range(91)])
        system = EnergyModulatedSystem(
            harvester=VibrationHarvester(peak_power=50e-6, wander=0.0, seed=8),
            design=HybridDesign(tech),
            sensor=sensor,
            storage_capacitance=100e-6,
            initial_store_voltage=1.2,
            control_interval=0.02,
        )
        report = system.run(0.3)
        assert report.operations_completed > 0
        errors = [r.sensing_error for r in report.adaptation_trace]
        assert max(errors) < 0.06

    def test_energy_ledger_consistency(self, tech):
        """Nothing is created from nothing: load energy <= harvested + initial store."""
        initial_voltage = 1.5
        capacitance = 47e-6
        system = EnergyModulatedSystem(
            harvester=VibrationHarvester(peak_power=200e-6, wander=0.0, seed=9),
            design=HybridDesign(tech),
            storage_capacitance=capacitance,
            initial_store_voltage=initial_voltage,
            control_interval=0.02,
        )
        report = system.run(1.0)
        initial_energy = 0.5 * capacitance * initial_voltage ** 2
        available = report.energy_harvested + initial_energy
        assert report.energy_consumed_by_load <= available
        assert report.chain.energy_delivered_to_load <= available
