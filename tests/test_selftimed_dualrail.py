"""Tests for dual-rail encoding and completion detection."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.power.supply import ConstantSupply
from repro.selftimed.completion import CompletionDetector, CompletionTreeModel
from repro.selftimed.dualrail import (
    DualRailSignal,
    DualRailWord,
    dual_rail_decode,
    dual_rail_encode,
)
from repro.sim.simulator import Simulator


class TestDualRailSignal:
    def test_starts_empty(self):
        signal = DualRailSignal("d")
        assert signal.is_empty
        assert not signal.is_valid
        assert not signal.is_illegal

    def test_drive_true_and_false(self):
        signal = DualRailSignal("d")
        signal.drive(True, 1.0)
        assert signal.is_valid and signal.value() is True
        signal.drive(None, 2.0)
        assert signal.is_empty
        signal.drive(False, 3.0)
        assert signal.is_valid and signal.value() is False

    def test_reading_an_empty_bit_raises(self):
        from repro.errors import CompletionDetectionError
        signal = DualRailSignal("d")
        with pytest.raises(CompletionDetectionError):
            signal.value()

    def test_transition_count_tracks_rail_activity(self):
        signal = DualRailSignal("d")
        signal.drive(True, 1.0)
        signal.drive(None, 2.0)
        assert signal.transition_count() == 2


class TestDualRailWord:
    def test_drive_value_and_read_back(self):
        word = DualRailWord("w", width=4)
        word.drive_value(0b1010, 1.0)
        assert word.is_valid
        assert word.value() == 0b1010

    def test_spacer_makes_word_empty(self):
        word = DualRailWord("w", width=4)
        word.drive_value(7, 1.0)
        word.drive_value(None, 2.0)
        assert word.is_empty
        assert not word.is_valid

    def test_all_rails_count(self):
        word = DualRailWord("w", width=3)
        assert len(word.all_rails()) == 6

    def test_value_of_empty_word_raises(self):
        from repro.errors import CompletionDetectionError
        word = DualRailWord("w", width=2)
        with pytest.raises(CompletionDetectionError):
            word.value()


class TestEncodeDecode:
    def test_encode_width(self):
        rails = dual_rail_encode(0b101, width=3)
        assert len(rails) == 6

    def test_round_trip_examples(self):
        for value in (0, 1, 5, 10, 15):
            rails = dual_rail_encode(value, width=4)
            assert dual_rail_decode(rails) == value

    @given(st.integers(min_value=0, max_value=2**8 - 1))
    def test_round_trip_property(self, value):
        assert dual_rail_decode(dual_rail_encode(value, width=8)) == value

    def test_encode_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            dual_rail_encode(4, width=2)


class TestCompletionDetector:
    def test_done_rises_on_full_codeword_and_falls_on_spacer(self, tech):
        sim = Simulator()
        supply = ConstantSupply(1.0)
        word = DualRailWord("w", width=4)
        detector = CompletionDetector(sim, supply, tech, "cd", word)
        word.drive_value(0b0110, 1e-9)
        sim.run()
        assert detector.done.value is True
        word.drive_value(None, sim.now + 1e-9)
        sim.run()
        assert detector.done.value is False

    def test_partial_word_does_not_complete(self, tech):
        sim = Simulator()
        supply = ConstantSupply(1.0)
        word = DualRailWord("w", width=4)
        detector = CompletionDetector(sim, supply, tech, "cd", word)
        # Drive only two of the four bits.
        word.bits[0].drive(True, 1e-9)
        word.bits[1].drive(False, 1e-9)
        sim.run()
        assert detector.done.value is False

    def test_detection_consumes_energy(self, tech):
        sim = Simulator()
        supply = ConstantSupply(1.0)
        word = DualRailWord("w", width=8)
        detector = CompletionDetector(sim, supply, tech, "cd", word)
        word.drive_value(0xA5, 1e-9)
        sim.run()
        assert detector.energy_consumed() > 0


class TestCompletionTreeModel:
    def test_wider_words_need_more_gates_and_delay(self, tech):
        narrow = CompletionTreeModel(technology=tech, bits=4)
        wide = CompletionTreeModel(technology=tech, bits=32)
        assert wide.gate_count > narrow.gate_count
        assert wide.delay(0.5) > narrow.delay(0.5)

    def test_delay_grows_as_vdd_drops(self, tech):
        tree = CompletionTreeModel(technology=tech, bits=16)
        assert tree.delay(0.25) > tree.delay(1.0)

    def test_segmentation_reduces_delay(self, tech):
        flat = CompletionTreeModel(technology=tech, bits=16)
        segmented = CompletionTreeModel(technology=tech, bits=16, segment_size=4)
        assert segmented.delay(0.3) <= flat.delay(0.3)

    def test_energy_and_leakage_positive(self, tech):
        tree = CompletionTreeModel(technology=tech, bits=16)
        assert tree.energy(0.5) > 0
        assert tree.leakage_power(0.5) > 0
