"""Tests for energy/activity probes and the waveform recorder."""

import pytest

from repro.sim.probes import ActivityProbe, EnergyProbe, proportionality_report
from repro.sim.signals import Signal
from repro.sim.waveform import AnalogTrace, WaveformRecorder


class TestEnergyProbe:
    def test_total_accumulates(self):
        probe = EnergyProbe()
        probe.record(1e-12, 1.0, label="switch")
        probe.record(2e-12, 2.0, label="leak")
        assert probe.total == pytest.approx(3e-12)

    def test_by_label_partitions_energy(self):
        probe = EnergyProbe()
        probe.record(1e-12, 1.0, label="a")
        probe.record(2e-12, 2.0, label="a")
        probe.record(5e-12, 3.0, label="b")
        by_label = probe.by_label()
        assert by_label["a"] == pytest.approx(3e-12)
        assert by_label["b"] == pytest.approx(5e-12)

    def test_energy_between_window(self):
        probe = EnergyProbe()
        for t in (1.0, 2.0, 3.0, 4.0):
            probe.record(1e-12, t)
        assert probe.energy_between(1.5, 3.5) == pytest.approx(2e-12)

    def test_average_power(self):
        probe = EnergyProbe()
        probe.record(4e-12, 1.0)
        assert probe.average_power(0.0, 2.0) == pytest.approx(2e-12)

    def test_reset(self):
        probe = EnergyProbe()
        probe.record(1e-12, 1.0)
        probe.reset()
        assert probe.total == 0.0

    def test_power_series_has_expected_length(self):
        probe = EnergyProbe()
        for t in range(10):
            probe.record(1e-12, float(t))
        series = probe.power_series(window=2.0, start=0.0, end=10.0)
        assert len(series) == 5


class TestActivityProbe:
    def test_counts_watched_signal_transitions(self):
        probe = ActivityProbe()
        s = Signal("s")
        probe.watch(s)
        s.set(True, 1.0)
        s.set(False, 2.0)
        assert probe.count == 2

    def test_count_between(self):
        probe = ActivityProbe()
        s = Signal("s")
        probe.watch(s)
        for i in range(1, 6):
            s.set(i % 2 == 1, float(i))
        assert probe.count_between(1.5, 4.5) == 3

    def test_rate(self):
        probe = ActivityProbe()
        s = Signal("s")
        probe.watch(s)
        s.set(True, 1.0)
        s.set(False, 2.0)
        assert probe.rate(0.0, 4.0) == pytest.approx(0.5)

    def test_proportionality_report_combines_probes(self):
        energy = EnergyProbe()
        activity = ActivityProbe()
        s = Signal("s")
        activity.watch(s)
        s.set(True, 1.0)
        s.set(False, 2.0)
        energy.record(2e-12, 1.0, label="switching")
        energy.record(1e-12, 2.0, label="leakage")
        report = proportionality_report(energy, activity)
        assert report.activity == 2
        assert report.energy == pytest.approx(3e-12)
        assert report.energy_per_transition == pytest.approx(1.5e-12)
        assert 0.0 < report.idle_energy_fraction < 1.0


class TestWaveformRecorder:
    def test_records_signals_and_end_time(self):
        recorder = WaveformRecorder()
        a = recorder.add_signal(Signal("a"))
        b = recorder.add_signal(Signal("b"))
        a.set(True, 1.0)
        b.set(True, 3.0)
        assert set(recorder.digital_series()) == {"a", "b"}
        assert recorder.end_time() == pytest.approx(3.0)

    def test_analog_trace_append_and_lookup(self):
        trace = AnalogTrace("vdd")
        trace.append(0.0, 1.0)
        trace.append(1.0, 0.5)
        assert trace.value_at(0.5) == pytest.approx(1.0)
        assert trace.minimum() == 0.5
        assert trace.maximum() == 1.0

    def test_recorder_analog_channel(self):
        recorder = WaveformRecorder()
        vdd = recorder.analog("vdd")
        vdd.append(0.0, 0.2)
        vdd.append(1e-6, 0.3)
        assert "vdd" in recorder.analog_traces
        assert recorder.analog("vdd") is vdd

    def test_sample_grid_shape(self):
        recorder = WaveformRecorder()
        s = recorder.add_signal(Signal("s"))
        s.set(True, 1.0)
        s.set(False, 2.0)
        grid = recorder.sample_grid(points=10)
        assert len(grid["time"]) == 10
        assert len(grid["s"]) == 10

    def test_render_ascii_mentions_signals(self):
        recorder = WaveformRecorder()
        s = recorder.add_signal(Signal("req"))
        s.set(True, 1.0)
        text = recorder.render_ascii(width=40)
        assert "req" in text
