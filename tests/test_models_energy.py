"""Tests for the switching/leakage energy-per-operation model."""

import pytest

from repro.errors import ModelError
from repro.models.delay import InverterChain
from repro.models.energy import EnergyModel


@pytest.fixture(scope="module")
def energy_model(tech):
    chain = InverterChain(technology=tech, stages=30)
    return EnergyModel(
        technology=tech,
        transitions_per_op=60.0,
        switched_cap_per_transition=5e-15,
        leakage_gates=200.0,
        delay_model=chain.total_delay,
    )


class TestBreakdown:
    def test_components_sum_to_total(self, energy_model):
        breakdown = energy_model.breakdown(0.6)
        assert breakdown.total == pytest.approx(
            breakdown.switching + breakdown.short_circuit + breakdown.leakage)

    def test_as_dict_round_trip(self, energy_model):
        d = energy_model.breakdown(0.8).as_dict()
        assert set(d) >= {"switching", "leakage"}

    def test_switching_energy_quadratic_in_vdd(self, energy_model):
        assert energy_model.switching_energy(1.0) == pytest.approx(
            4 * energy_model.switching_energy(0.5), rel=0.01)

    def test_leakage_energy_grows_at_low_vdd(self, energy_model):
        # Leakage × (much longer) cycle time dominates at low voltage.
        assert energy_model.leakage_energy(0.2) > energy_model.leakage_energy(0.5)


class TestMinimumEnergyPoint:
    def test_interior_minimum_exists(self, energy_model):
        vdd_opt, e_opt = energy_model.minimum_energy_point(0.2, 1.0)
        assert 0.2 < vdd_opt < 1.0
        assert e_opt < energy_model.energy_per_op(1.0)
        assert e_opt < energy_model.energy_per_op(0.21)

    def test_minimum_is_actually_minimal_on_a_grid(self, energy_model):
        vdd_opt, e_opt = energy_model.minimum_energy_point(0.2, 1.0)
        for vdd in [0.25, 0.3, 0.4, 0.5, 0.7, 0.9, 1.0]:
            assert e_opt <= energy_model.energy_per_op(vdd) * (1 + 1e-9)

    def test_invalid_range_rejected(self, energy_model):
        with pytest.raises(ModelError):
            energy_model.minimum_energy_point(1.0, 0.5)


class TestSweepAndEdp:
    def test_sweep_matches_pointwise_breakdown(self, energy_model):
        voltages = [0.3, 0.5, 0.8]
        swept = energy_model.sweep(voltages)
        assert len(swept) == 3
        for vdd, breakdown in zip(voltages, swept):
            assert breakdown.total == pytest.approx(
                energy_model.breakdown(vdd).total)

    def test_sweep_rejects_empty(self, energy_model):
        with pytest.raises(ModelError):
            energy_model.sweep([])

    def test_energy_delay_product_minimised_above_energy_minimum(self, energy_model):
        # The EDP optimum sits at a higher voltage than the energy optimum —
        # a classic low-power-design fact the model should reproduce.
        vdd_e, _ = energy_model.minimum_energy_point(0.2, 1.0)
        edps = {vdd: energy_model.energy_delay_product(vdd)
                for vdd in [0.25, 0.35, 0.45, 0.6, 0.8, 1.0]}
        vdd_edp = min(edps, key=edps.get)
        assert vdd_edp >= vdd_e
