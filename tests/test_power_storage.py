"""Tests for batteries, capacitors and the sampling capacitor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, PowerError, SupplyCollapseError
from repro.power.battery import Battery
from repro.power.capacitor import Capacitor, SamplingCapacitor
from repro.power.supply import ConstantSupply


class TestCapacitor:
    def test_voltage_drops_by_q_over_c(self):
        cap = Capacitor(capacitance=1e-9, initial_voltage=1.0)
        cap.draw_charge(0.5e-9, 0.0)
        assert cap.voltage(0.0) == pytest.approx(0.5)

    def test_stored_energy_half_cv_squared(self):
        cap = Capacitor(capacitance=2e-9, initial_voltage=0.5)
        assert cap.stored_energy(0.0) == pytest.approx(0.5 * 2e-9 * 0.25)

    def test_add_charge_raises_voltage(self):
        cap = Capacitor(capacitance=1e-9, initial_voltage=0.0)
        cap.add_charge(1e-9, 0.0)
        assert cap.voltage(0.0) == pytest.approx(1.0)

    def test_add_energy_solves_quadrature(self):
        cap = Capacitor(capacitance=1e-9, initial_voltage=0.0)
        cap.add_energy(0.5e-9, 1.0)
        assert cap.voltage(1.0) == pytest.approx(1.0)

    def test_leakage_discharges_over_time(self):
        cap = Capacitor(capacitance=1e-6, initial_voltage=1.0,
                        leakage_resistance=1e3)
        v_later = cap.voltage(10e-3)   # ten time constants later
        assert v_later < 0.01

    def test_collapse_below_min_operating_voltage(self):
        cap = Capacitor(capacitance=1e-9, initial_voltage=0.2,
                        min_operating_voltage=0.19)
        cap.draw_charge(0.05e-9, 0.0)
        with pytest.raises(SupplyCollapseError):
            cap.draw_charge(0.05e-9, 0.0)

    def test_backwards_time_rejected(self):
        cap = Capacitor(capacitance=1e-9, initial_voltage=1.0)
        cap.voltage(1.0)
        with pytest.raises(PowerError):
            cap.voltage(0.5)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            Capacitor(capacitance=0.0)
        with pytest.raises(ConfigurationError):
            Capacitor(capacitance=1e-9, initial_voltage=-1.0)

    @given(charge=st.floats(min_value=0, max_value=1e-9))
    @settings(max_examples=30)
    def test_energy_accounting_is_conservative_property(self, charge):
        cap = Capacitor(capacitance=1e-9, initial_voltage=1.0)
        before = cap.stored_energy(0.0)
        cap.draw_charge(charge, 0.0)
        after = cap.stored_energy(0.0)
        # Energy delivered to the load is at least the drop in stored energy
        # (the capacitor delivers at the pre-draw voltage).
        assert cap.energy_delivered >= (before - after) - 1e-21


class TestSamplingCapacitor:
    def test_sampling_approaches_source_voltage(self):
        cap = SamplingCapacitor(capacitance=30e-12, switch_resistance=1e3)
        source = ConstantSupply(0.8)
        sampled = cap.sample(source, sampling_time=1e-6, time=0.0)
        # 1 us >> RC = 30 ns, so the capacitor should be fully charged.
        assert sampled == pytest.approx(0.8, rel=1e-3)

    def test_short_sampling_undershoots(self):
        cap = SamplingCapacitor(capacitance=30e-12, switch_resistance=1e6)
        source = ConstantSupply(0.8)
        sampled = cap.sample(source, sampling_time=1e-9, time=0.0)
        assert sampled < 0.1

    def test_sampling_draws_charge_from_source(self):
        cap = SamplingCapacitor(capacitance=30e-12)
        source = ConstantSupply(1.0)
        cap.sample(source, sampling_time=1e-6, time=0.0)
        assert source.charge_delivered == pytest.approx(30e-12, rel=1e-3)

    def test_sample_then_hold_flag(self):
        cap = SamplingCapacitor(capacitance=30e-12)
        assert cap.sampling is False
        cap.sample(ConstantSupply(0.5), 1e-6, 0.0)
        assert cap.sampling is False
        cap.hold()
        assert cap.sampling is False


class TestBattery:
    def test_full_battery_reports_nominal_voltage(self):
        battery = Battery(nominal_voltage=3.0, capacity_joules=10.0)
        assert battery.voltage(0.0) == pytest.approx(3.0, rel=0.05)
        assert battery.state_of_charge == pytest.approx(1.0)

    def test_drawing_discharges(self):
        battery = Battery(nominal_voltage=3.0, capacity_joules=1.0)
        battery.draw_charge(0.1, 0.0)   # 0.1 C at ~3 V = 0.3 J
        assert battery.state_of_charge < 1.0
        assert battery.remaining_energy < 1.0
        assert battery.energy_delivered > 0.0

    def test_empty_battery_collapses(self):
        battery = Battery(nominal_voltage=3.0, capacity_joules=0.01)
        with pytest.raises(SupplyCollapseError):
            for _ in range(1000):
                battery.draw_charge(1e-3, 0.0)
        assert battery.empty

    def test_recharge_restores_energy(self):
        battery = Battery(nominal_voltage=3.0, capacity_joules=1.0)
        battery.draw_charge(0.05, 0.0)
        depleted = battery.remaining_energy
        battery.recharge(0.1)
        assert battery.remaining_energy > depleted

    def test_internal_resistance_droops_under_load(self):
        stiff = Battery(nominal_voltage=3.0, capacity_joules=1.0,
                        internal_resistance=0.0)
        soft = Battery(nominal_voltage=3.0, capacity_joules=1.0,
                       internal_resistance=10.0)
        soft.set_load_current(10e-3)
        assert soft.voltage(0.0) < stiff.voltage(0.0)
