"""Tests for the persistent experiment cache (:mod:`repro.analysis.cache`).

The cache's contract: a second run of an identical ``(plan, quantities)``
pair under the same code version is served from disk bit-identically; a
read-only cache never touches the filesystem; and any change to the code
version salt (i.e. to any library source file) invalidates everything.
"""

import json

import pytest

from repro.analysis.cache import (
    CACHE_MODES,
    ResultCache,
    callable_fingerprint,
    code_version_salt,
    main as cache_main,
    result_key,
    stable_repr,
)
from repro.analysis.runner import Executor, ExperimentPlan, TechnologyCache
from repro.errors import ConfigurationError
from repro.models.gate import GateModel

VDDS = [0.25, 0.3, 0.4, 0.6, 0.8, 1.0]


def _delay(vdd):
    from repro.models.technology import get_technology

    return GateModel(technology=get_technology("cmos90")).delay(vdd)


def _energy(vdd):
    from repro.models.technology import get_technology

    return GateModel(technology=get_technology("cmos90")).transition_energy(vdd)


def _mc_delay(perturbed):
    return GateModel(technology=perturbed).delay(0.4)


@pytest.fixture()
def plan():
    return ExperimentPlan.sweep("vdd", VDDS)


@pytest.fixture()
def quantities():
    return {"delay": _delay, "energy": _energy}


class TestContentKeys:
    def test_key_is_deterministic(self, plan, quantities):
        assert (result_key(plan, quantities, salt="s")
                == result_key(plan, quantities, salt="s"))

    def test_key_depends_on_plan_points(self, quantities):
        a = ExperimentPlan.sweep("vdd", VDDS)
        b = ExperimentPlan.sweep("vdd", VDDS[:-1])
        assert result_key(a, quantities, salt="s") != \
            result_key(b, quantities, salt="s")

    def test_key_depends_on_quantity_code_not_just_name(self, plan):
        # Two different functions registered under the same series name
        # must key different entries.
        assert result_key(plan, {"q": _delay}, salt="s") != \
            result_key(plan, {"q": _energy}, salt="s")

    def test_key_depends_on_closure_contents(self, plan):
        def bound(scale):
            return lambda v: scale * v

        assert result_key(plan, {"q": bound(2.0)}, salt="s") != \
            result_key(plan, {"q": bound(3.0)}, salt="s")

    def test_key_depends_on_default_arguments(self, plan):
        # The benchmarks bind loop variables as defaults
        # (``lambda v, metric=metric: ...``); a changed default must
        # invalidate even though code, closure and globals are identical.
        a = eval("lambda v, scale=2.0: scale * v")
        b = eval("lambda v, scale=3.0: scale * v")
        assert result_key(plan, {"q": a}, salt="s") != \
            result_key(plan, {"q": b}, salt="s")

    def test_key_depends_on_referenced_module_globals(self, plan):
        # Benchmark constants (module globals outside repro/) must land in
        # the key: the code-version salt cannot see them change.
        def lambda_reading_global(scale):
            namespace = {"SCALE": scale}
            return eval("lambda v: SCALE * v", namespace)

        assert result_key(plan, {"q": lambda_reading_global(2.0)},
                          salt="s") != \
            result_key(plan, {"q": lambda_reading_global(3.0)}, salt="s")
        assert result_key(plan, {"q": lambda_reading_global(2.0)},
                          salt="s") == \
            result_key(plan, {"q": lambda_reading_global(2.0)}, salt="s")

    def test_key_depends_on_salt(self, plan, quantities):
        assert result_key(plan, quantities, salt="a") != \
            result_key(plan, quantities, salt="b")

    def test_seeded_plans_key_by_seed(self, tech):
        a = ExperimentPlan.monte_carlo(8, technology=tech, seed=1)
        b = ExperimentPlan.monte_carlo(8, technology=tech, seed=2)
        assert result_key(a, {"d": _mc_delay}, salt="s") != \
            result_key(b, {"d": _mc_delay}, salt="s")

    def test_stable_repr_has_no_addresses(self, tech):
        text = stable_repr({"tech": tech, "xs": (1, 2.5), "flag": True})
        assert "0x" not in text
        assert text == stable_repr({"flag": True, "xs": (1, 2.5),
                                    "tech": tech})

    def test_executor_machinery_is_opaque(self):
        # Volatile executor/cache state must not leak into fingerprints.
        executor = Executor(workers=0)
        executor.cache.misses = 123
        assert stable_repr(executor) == "Executor"
        assert stable_repr(executor.cache) == "TechnologyCache"

    def test_bound_method_fingerprint_includes_instance(self, tech):
        gate_a = GateModel(technology=tech)
        gate_b = GateModel(technology=tech, gate_type=gate_a.gate_type)
        other = GateModel(technology=tech.scaled(temperature_k=350.0))
        assert callable_fingerprint(gate_a.delay) == \
            callable_fingerprint(gate_b.delay)
        assert callable_fingerprint(gate_a.delay) != \
            callable_fingerprint(other.delay)

    def test_code_version_salt_is_stable_within_a_session(self):
        assert code_version_salt() == code_version_salt()
        assert len(code_version_salt()) == 16


class TestResultCacheStore:
    def test_rejects_unknown_mode(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResultCache(root=tmp_path, mode="frobnicate")
        assert set(CACHE_MODES) == {"off", "rw", "ro"}

    def test_off_mode_is_inert(self, tmp_path):
        cache = ResultCache(root=tmp_path, mode="off")
        assert not cache.enabled
        assert cache.load_result("k", ["a"], 1) is None
        assert not cache.store_result("k", {"a": [1.0]})
        assert list(tmp_path.iterdir()) == []

    def test_round_trip_preserves_floats_exactly(self, tmp_path):
        cache = ResultCache(root=tmp_path, mode="rw", salt="s")
        values = {"q": [0.1 + 0.2, 1e-300, float("inf"), -0.0, 3.14159]}
        assert cache.store_result("key", values)
        loaded = cache.load_result("key", ["q"], 5)
        assert loaded == values

    def test_mismatched_payload_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path, mode="rw", salt="s")
        cache.store_result("key", {"q": [1.0, 2.0]})
        # Wrong names or wrong point count: treated as a miss, not served.
        assert cache.load_result("key", ["other"], 2) is None
        assert cache.load_result("key", ["q"], 3) is None
        assert cache.load_result("key", ["q"], 2) == {"q": [1.0, 2.0]}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path, mode="rw", salt="s")
        cache.store_result("key", {"q": [1.0]})
        cache.store.put_atomic(cache._result_obj("key"), b"{not json")
        assert cache.load_result("key", ["q"], 1) is None

    def test_corrupt_entry_is_healed_on_recompute(self, tmp_path, plan,
                                                  quantities):
        store = ResultCache(root=tmp_path, mode="rw")
        first = Executor(persistent=store).run(plan, quantities)
        key = store.result_key(plan, quantities)
        store.store.put_atomic(store._result_obj(key), b"{truncated")
        recomputed = Executor(persistent=store).run(plan, quantities)
        assert recomputed.provenance.persistent_misses == len(VDDS)
        # The recompute overwrote the corrupt payload: the next run hits.
        replay = Executor(persistent=store).run(plan, quantities)
        assert replay.provenance.executor == "persistent-cache"
        assert replay.values == first.values

    def test_stale_salt_invalidates(self, tmp_path, plan, quantities):
        old = ResultCache(root=tmp_path, mode="rw", salt="old-code")
        Executor(persistent=old).run(plan, quantities)
        fresh = ResultCache(root=tmp_path, mode="rw", salt="new-code")
        record = Executor(persistent=fresh).run(plan, quantities).provenance
        assert record.persistent_hits == 0
        assert record.persistent_misses == len(VDDS)

    def test_clear_and_stale_clear(self, tmp_path):
        old = ResultCache(root=tmp_path, mode="rw", salt="old")
        new = ResultCache(root=tmp_path, mode="rw", salt="new")
        old.store_result("a", {"q": [1.0]})
        new.store_result("b", {"q": [2.0]})
        removed = new.clear(stale_only=True)
        assert removed == 1
        assert new.load_result("b", ["q"], 1) == {"q": [2.0]}
        assert new.clear() == 1
        assert new.load_result("b", ["q"], 1) is None


class TestExecutorIntegration:
    def test_second_run_is_a_bit_identical_hit(self, tmp_path, plan,
                                               quantities):
        store = ResultCache(root=tmp_path, mode="rw")
        first = Executor(persistent=store).run(plan, quantities)
        second = Executor(persistent=store).run(plan, quantities)
        assert first.provenance.persistent_mode == "rw"
        assert first.provenance.persistent_hits == 0
        assert first.provenance.persistent_misses == len(VDDS)
        assert second.provenance.executor == "persistent-cache"
        assert second.provenance.persistent_hits == len(VDDS)
        assert second.provenance.persistent_misses == 0
        assert second.values == first.values
        assert "persistent_hits" in second.provenance.as_dict()

    def test_hit_rate_survives_new_process_state(self, tmp_path, plan,
                                                 quantities):
        # A brand-new cache object over the same directory (a later pytest
        # invocation) must hit.
        Executor(persistent=ResultCache(root=tmp_path, mode="rw")).run(
            plan, quantities)
        replay = Executor(
            persistent=ResultCache(root=tmp_path, mode="rw")).run(
            plan, quantities)
        assert replay.provenance.persistent_hits == len(VDDS)

    def test_ro_mode_never_writes(self, tmp_path, plan, quantities):
        readonly = ResultCache(root=tmp_path, mode="ro")
        result = Executor(persistent=readonly).run(plan, quantities)
        assert result.provenance.persistent_mode == "ro"
        assert result.provenance.persistent_hits == 0
        assert readonly.writes == 0
        assert list(tmp_path.iterdir()) == []

    def test_ro_mode_replays_an_existing_cache(self, tmp_path, plan,
                                               quantities):
        computed = Executor(
            persistent=ResultCache(root=tmp_path, mode="rw")).run(
            plan, quantities)
        replay = Executor(
            persistent=ResultCache(root=tmp_path, mode="ro")).run(
            plan, quantities)
        assert replay.provenance.persistent_hits == len(VDDS)
        assert replay.values == computed.values

    def test_off_cache_behaves_like_none(self, tmp_path, plan, quantities):
        executor = Executor(persistent=ResultCache(root=tmp_path, mode="off"))
        assert executor.persistent is None
        record = executor.run(plan, quantities).provenance
        assert record.persistent_mode == "off"
        assert record.persistent_hits == record.persistent_misses == 0

    def test_monte_carlo_round_trip(self, tmp_path, tech):
        plan = ExperimentPlan.monte_carlo(12, technology=tech, seed=7)
        store = ResultCache(root=tmp_path, mode="rw")
        first = Executor(persistent=store).run(plan, {"d": _mc_delay})
        second = Executor(persistent=store).run(plan, {"d": _mc_delay})
        assert second.provenance.persistent_hits == 12
        assert second.values == first.values
        assert second.summary("d").mean == first.summary("d").mean

    def test_technology_entries_persist_between_executors(self, tmp_path,
                                                          tech):
        plan = ExperimentPlan.monte_carlo(6, technology=tech, seed=3)
        store = ResultCache(root=tmp_path, mode="rw")
        Executor(persistent=store).run(plan, {"d": _mc_delay})
        assert store.load_technologies()  # the perturbed samples were saved
        fresh_cache = TechnologyCache()
        Executor(cache=fresh_cache,
                 persistent=ResultCache(root=tmp_path, mode="rw"))
        assert len(fresh_cache) == 6  # preloaded at construction


class TestShardPrimitives:
    """The lease/claim and shard-result hooks the distributed runner uses."""

    def test_meta_round_trip_and_has_result(self, tmp_path):
        cache = ResultCache(root=tmp_path, mode="rw", salt="s")
        cache.store_result("key", {"q": [1.0]}, meta={"worker": "host:1"})
        assert cache.has_result("key")
        assert not cache.has_result("missing")
        assert cache.load_meta("key") == {"worker": "host:1"}
        assert cache.load_meta("missing") is None

    def test_result_valid_probe_does_not_count(self, tmp_path):
        cache = ResultCache(root=tmp_path, mode="rw", salt="s")
        cache.store_result("key", {"q": [1.0, 2.0]})
        assert cache.result_valid("key", ["q"], 2)
        assert not cache.result_valid("key", ["q"], 3)
        assert not cache.result_valid("missing", ["q"], 2)
        cache.store.put_atomic(cache._result_obj("key"), b"{corrupt")
        assert not cache.result_valid("key", ["q"], 2)
        assert (cache.hits, cache.misses) == (0, 0)

    def test_fresh_claim_is_exclusive(self, tmp_path):
        cache = ResultCache(root=tmp_path, mode="rw", salt="s")
        assert cache.claim_lease("shard", "a", ttl=30.0)
        assert not cache.claim_lease("shard", "b", ttl=30.0)
        # Re-claiming one's own live lease is allowed (worker restart on
        # the same pid would be a new id, so this is the idempotent case).
        assert cache.claim_lease("shard", "a", ttl=30.0)
        info = cache.lease_info("shard")
        assert info["owner"] == "a" and not info["expired"]

    def test_expired_lease_is_stolen(self, tmp_path):
        cache = ResultCache(root=tmp_path, mode="rw", salt="s")
        assert cache.claim_lease("shard", "dead", ttl=0.05)
        import time as _time

        _time.sleep(0.1)
        assert cache.lease_info("shard")["expired"]
        assert cache.claim_lease("shard", "survivor", ttl=30.0)
        assert cache.lease_info("shard")["owner"] == "survivor"

    def test_heartbeat_keeps_a_lease_alive(self, tmp_path):
        cache = ResultCache(root=tmp_path, mode="rw", salt="s")
        cache.claim_lease("shard", "a", ttl=0.2)
        import time as _time

        for _ in range(3):
            _time.sleep(0.1)
            assert cache.heartbeat_lease("shard", "a")
        assert not cache.lease_info("shard")["expired"]
        assert not cache.heartbeat_lease("shard", "b")

    def test_release_only_by_owner(self, tmp_path):
        cache = ResultCache(root=tmp_path, mode="rw", salt="s")
        cache.claim_lease("shard", "a", ttl=30.0)
        assert not cache.release_lease("shard", "b")
        assert cache.release_lease("shard", "a")
        assert cache.lease_info("shard") is None
        assert not cache.release_lease("shard", "a")

    def test_corrupt_lease_reports_expired_and_is_stolen(self, tmp_path):
        cache = ResultCache(root=tmp_path, mode="rw", salt="s")
        cache.claim_lease("shard", "a", ttl=30.0)
        cache.store.put_atomic(cache._lease_obj("shard"), b"{not json")
        info = cache.lease_info("shard")
        assert info["expired"] and info["owner"] == "?"
        assert cache.claim_lease("shard", "repair", ttl=30.0)

    def test_ro_cache_never_touches_leases(self, tmp_path):
        readonly = ResultCache(root=tmp_path, mode="ro", salt="s")
        assert not readonly.claim_lease("shard", "a")
        assert not readonly.heartbeat_lease("shard", "a")
        assert not readonly.release_lease("shard", "a")
        assert list(tmp_path.iterdir()) == []

    def test_invalid_ttl_rejected(self, tmp_path):
        cache = ResultCache(root=tmp_path, mode="rw", salt="s")
        with pytest.raises(ConfigurationError):
            cache.claim_lease("shard", "a", ttl=0.0)

    def test_clear_removes_leases_too(self, tmp_path):
        cache = ResultCache(root=tmp_path, mode="rw", salt="s")
        cache.store_result("key", {"q": [1.0]})
        cache.claim_lease("shard", "a", ttl=30.0)
        assert cache.stats()["salts"]["s"]["leases"] == 1
        assert cache.clear() == 2
        assert cache.lease_info("shard") is None

    def test_release_never_prunes_directories(self, tmp_path):
        # Hot-path deletes must not rmdir an emptied lease directory: a
        # concurrent claimer between its mkdir and its staging write
        # would crash.  Only the explicit clear() maintenance path prunes.
        cache = ResultCache(root=tmp_path, mode="rw", salt="s")
        cache.claim_lease("shard", "a", ttl=30.0)
        cache.release_lease("shard", "a")
        assert (tmp_path / "leases" / "s").is_dir()
        cache.clear()
        assert not (tmp_path / "leases").exists()


class TestLeaseClockSkew:
    """Lease expiry must not trust wall clocks across machines.

    The reader tracks how long a heartbeat value has gone unchanged *on
    the store* by its own monotonic clock; an advancing heartbeat proves
    a live owner no matter what either clock says.
    """

    @staticmethod
    def _write_lease(cache, key, owner, heartbeat, ttl):
        import time as _time

        payload = json.dumps({"owner": owner, "ttl": ttl,
                              "heartbeat": heartbeat,
                              "claimed": _time.time()}).encode()
        cache.store.put_atomic(cache._lease_obj(key), payload)

    def test_writer_clock_ahead_expires_by_staleness(self, tmp_path):
        # An owner whose clock runs an hour ahead writes heartbeats "in
        # the future": wall-clock age stays hugely negative forever, so
        # only the unchanged-on-store stopwatch can expire its lease.
        import time as _time

        cache = ResultCache(root=tmp_path, mode="rw", salt="s")
        self._write_lease(cache, "shard", "fast-clock",
                          heartbeat=_time.time() + 3600.0, ttl=0.1)
        assert not cache.lease_info("shard")["expired"]
        _time.sleep(0.15)
        assert cache.lease_info("shard")["expired"]
        assert cache.claim_lease("shard", "survivor", ttl=30.0)
        assert cache.lease_info("shard")["owner"] == "survivor"

    def test_writer_clock_behind_stays_alive_while_heartbeating(
            self, tmp_path):
        # An owner whose clock runs hours behind writes heartbeats that
        # look ancient; as long as the value keeps *changing*, the reader
        # must treat the owner as alive and refuse to steal.
        import time as _time

        cache = ResultCache(root=tmp_path, mode="rw", salt="s")
        assert cache.claim_lease("shard", "a", ttl=0.3)
        assert not cache.lease_info("shard")["expired"]
        # The owner's skewed clock stamps a heartbeat decades in the past;
        # the reader witnesses the advance...
        self._write_lease(cache, "shard", "a", heartbeat=1000.0, ttl=0.3)
        assert not cache.lease_info("shard")["expired"]
        _time.sleep(0.1)
        # ...and re-reads of that unchanged, ancient value within the TTL
        # must not expire it by wall-clock age.
        assert not cache.lease_info("shard")["expired"]
        assert not cache.claim_lease("shard", "thief", ttl=30.0)
        self._write_lease(cache, "shard", "a", heartbeat=1001.0, ttl=0.3)
        assert not cache.lease_info("shard")["expired"]
        # The moment the heartbeat stops advancing, staleness expires it.
        _time.sleep(0.4)
        assert cache.lease_info("shard")["expired"]
        assert cache.claim_lease("shard", "survivor", ttl=30.0)

    def test_released_lease_forgets_its_observation(self, tmp_path):
        # A lease deleted and re-claimed restarts the staleness stopwatch
        # rather than inheriting the old observation.
        import time as _time

        cache = ResultCache(root=tmp_path, mode="rw", salt="s")
        cache.claim_lease("shard", "a", ttl=0.1)
        cache.lease_info("shard")
        _time.sleep(0.15)
        cache.release_lease("shard", "a")
        assert cache.lease_info("shard") is None
        self._write_lease(cache, "shard", "b",
                          heartbeat=_time.time() + 3600.0, ttl=0.1)
        assert not cache.lease_info("shard")["expired"]


class TestCacheCLI:
    def test_stats_and_clear(self, tmp_path, capsys, plan, quantities):
        store = ResultCache(root=tmp_path, mode="rw")
        Executor(persistent=store).run(plan, quantities)
        assert cache_main(["--root", str(tmp_path), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "1 result(s)" in out
        assert cache_main(["--root", str(tmp_path), "--clear"]) == 0
        assert "cleared" in capsys.readouterr().out
        assert cache_main(["--root", str(tmp_path), "--stats"]) == 0
        assert "(empty)" in capsys.readouterr().out

    def test_json_stats_are_machine_readable(self, tmp_path, capsys, plan,
                                             quantities):
        store = ResultCache(root=tmp_path, mode="rw")
        Executor(persistent=store).run(plan, quantities)
        assert cache_main(["--root", str(tmp_path), "--stats",
                           "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["root"] == str(tmp_path)
        assert payload["salts"][payload["current_salt"]]["results"] == 1
        assert {"hits", "misses", "writes"} <= set(payload["session"])

    def test_selftest_passes(self, capsys):
        assert cache_main(["--selftest"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_no_arguments_prints_help(self, capsys):
        assert cache_main([]) == 2
        assert "usage" in capsys.readouterr().out
