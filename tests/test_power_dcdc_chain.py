"""Tests for the DC-DC converter and the composed power chain."""

import pytest

from repro.errors import ConfigurationError, PowerError, SupplyCollapseError
from repro.power.capacitor import Capacitor
from repro.power.dcdc import ConverterEfficiency, DCDCConverter
from repro.power.harvester import VibrationHarvester
from repro.power.power_chain import PowerChain


class TestConverterEfficiency:
    def test_zero_output_power_zero_efficiency(self):
        eff = ConverterEfficiency()
        assert eff.efficiency(0.0, 1.0) == 0.0

    def test_efficiency_below_unity(self):
        eff = ConverterEfficiency()
        assert 0.0 < eff.efficiency(1e-3, 1.0) < 1.0

    def test_light_load_is_less_efficient(self):
        eff = ConverterEfficiency(quiescent_power=1e-6)
        assert eff.efficiency(2e-6, 1.0) < eff.efficiency(200e-6, 1.0)

    def test_input_power_exceeds_output_power(self):
        eff = ConverterEfficiency()
        assert eff.input_power(1e-3, 1.0) > 1e-3

    def test_negative_power_rejected(self):
        with pytest.raises(PowerError):
            ConverterEfficiency().efficiency(-1.0, 1.0)


class TestDCDCConverter:
    def make(self, store_voltage=2.0, target=1.0):
        store = Capacitor(capacitance=100e-6, initial_voltage=store_voltage)
        return store, DCDCConverter(input_store=store, target_voltage=target)

    def test_regulates_output_while_input_healthy(self):
        _, dcdc = self.make()
        assert dcdc.voltage(0.0) == pytest.approx(1.0)

    def test_brown_out_when_store_collapses(self):
        store, dcdc = self.make(store_voltage=0.2)
        assert dcdc.voltage(0.0) < 1.0

    def test_draw_charge_bills_the_store(self):
        store, dcdc = self.make()
        before = store.stored_energy(0.0)
        dcdc.draw_charge(1e-6, 0.0)
        after = store.stored_energy(0.0)
        assert after < before
        assert dcdc.energy_delivered == pytest.approx(1e-6 * 1.0)
        assert dcdc.energy_drawn_from_input > dcdc.energy_delivered
        assert dcdc.conversion_loss() > 0.0

    def test_set_target_voltage(self):
        _, dcdc = self.make()
        dcdc.set_target_voltage(0.4)
        assert dcdc.voltage(0.0) == pytest.approx(0.4)
        with pytest.raises(ConfigurationError):
            dcdc.set_target_voltage(0.0)

    def test_idle_tick_costs_quiescent_energy(self):
        store, dcdc = self.make()
        before = store.stored_energy(0.0)
        dcdc.idle_tick(1.0, 1.0)
        assert store.stored_energy(1.0) < before

    def test_empty_input_raises_collapse(self):
        store = Capacitor(capacitance=1e-6, initial_voltage=0.0)
        dcdc = DCDCConverter(input_store=store, target_voltage=1.0)
        with pytest.raises(SupplyCollapseError):
            dcdc.draw_charge(1e-6, 0.0)


class TestPowerChain:
    def make_chain(self):
        harvester = VibrationHarvester(peak_power=200e-6, wander=0.0, seed=0)
        return PowerChain(harvester=harvester, storage_capacitance=100e-6,
                          output_voltage=1.0, initial_store_voltage=2.0)

    def test_advance_moves_time_and_harvests(self):
        chain = self.make_chain()
        chain.advance(1.0)
        assert chain.time == pytest.approx(1.0)
        report = chain.report()
        assert report.energy_harvested > 0.0
        assert report.store_voltage > 0.0

    def test_output_rail_supplies_the_target_voltage(self):
        chain = self.make_chain()
        chain.advance(0.5)
        assert chain.output_rail.voltage(chain.time) == pytest.approx(1.0)

    def test_set_output_voltage_reprograms_the_rail(self):
        chain = self.make_chain()
        chain.set_output_voltage(0.4)
        chain.advance(0.1)
        assert chain.output_rail.voltage(chain.time) == pytest.approx(0.4)

    def test_load_draw_flows_back_to_the_store(self):
        chain = self.make_chain()
        chain.advance(0.2)
        store_before = chain.store.stored_energy(chain.time)
        chain.output_rail.draw_charge(5e-6, chain.time)
        assert chain.store.stored_energy(chain.time) < store_before
        assert chain.report().energy_delivered_to_load > 0.0

    def test_end_to_end_efficiency_between_zero_and_one(self):
        chain = self.make_chain()
        chain.advance(1.0)
        chain.output_rail.draw_charge(10e-6, chain.time)
        report = chain.report()
        assert 0.0 < report.end_to_end_efficiency <= 1.0

    def test_invalid_durations_rejected(self):
        chain = self.make_chain()
        with pytest.raises(ConfigurationError):
            chain.advance(0.0)
