"""Backend fault injection against the store interface.

The distributed runner's claims — coordinators merge bit-identically, a
stolen lease can never double-publish a shard — must hold not just on a
well-behaved backend but on one that misbehaves in the ways real shared
storage does: writes that report success but never land (dropped), writes
that land twice (duplicated by a retrying proxy), and lease heartbeats
that arrive late (a GC pause, a saturated link).  :class:`ChaosStore`
wraps any :class:`~repro.analysis.cache.CacheStore` and injects exactly
those faults; every test here runs against both the filesystem backend
and the object-store backend, because the guarantees are interface
contracts, not backend accidents.
"""

import threading
import time

import pytest

from repro.analysis.cache import CacheStore, ResultCache, open_store
from repro.analysis.distrib import (
    Worker,
    job_status,
    merge_job,
    submit,
    wait_for_job,
)
from repro.analysis.objstore import FakeObjectServer
from repro.analysis.runner import Executor, ExperimentPlan

XS = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]


def _double(x):
    return 2.0 * x


def _square(x):
    return x * x


class ChaosStore(CacheStore):
    """A fault-injecting wrapper around any :class:`CacheStore`.

    Parameters
    ----------
    inner:
        The real backend every non-faulted call forwards to.
    drop_result_puts:
        Silently swallow this many result-object writes (the put reports
        success, nothing lands) — a lost message.
    duplicate_puts:
        Issue every successful put twice — a retrying proxy.
    lease_write_delay_s:
        Sleep this long *inside* every lease-object write before
        forwarding it — a worker whose heartbeats arrive late.
    """

    def __init__(self, inner: CacheStore, drop_result_puts: int = 0,
                 duplicate_puts: bool = False,
                 lease_write_delay_s: float = 0.0) -> None:
        self.inner = inner
        self.drop_result_puts = drop_result_puts
        self.duplicate_puts = duplicate_puts
        self.lease_write_delay_s = lease_write_delay_s
        self.dropped = []
        self.lease_writes_delayed = 0

    def _maybe_drop(self, key):
        if self.drop_result_puts > 0 and key.startswith("results/"):
            self.drop_result_puts -= 1
            self.dropped.append(key)
            return True
        return False

    def _maybe_delay(self, key):
        if self.lease_write_delay_s and key.startswith("leases/"):
            self.lease_writes_delayed += 1
            time.sleep(self.lease_write_delay_s)

    # -- the CacheStore interface, fault-wrapped ---------------------------

    def get(self, key):
        return self.inner.get(key)

    def put_atomic(self, key, data):
        if self._maybe_drop(key):
            from repro.analysis.cache import object_etag

            return object_etag(data)
        self._maybe_delay(key)
        etag = self.inner.put_atomic(key, data)
        if self.duplicate_puts:
            etag = self.inner.put_atomic(key, data)
        return etag

    def put_if_absent(self, key, data):
        if self._maybe_drop(key):
            from repro.analysis.cache import object_etag

            return object_etag(data)
        self._maybe_delay(key)
        etag = self.inner.put_if_absent(key, data)
        if etag is not None and self.duplicate_puts:
            # The retry of a successful exclusive create loses, exactly
            # like a duplicated network frame would.
            self.inner.put_if_absent(key, data)
        return etag

    def put_if_match(self, key, data, etag):
        self._maybe_delay(key)
        new_etag = self.inner.put_if_match(key, data, etag)
        if new_etag is not None and self.duplicate_puts:
            self.inner.put_if_match(key, data, new_etag)
        return new_etag

    def list(self, prefix=""):
        return self.inner.list(prefix)

    def delete(self, key):
        return self.inner.delete(key)

    def stat(self, key):
        return self.inner.stat(key)

    def prune(self):
        self.inner.prune()

    def describe(self):
        return f"chaos({self.inner.describe()})"


@pytest.fixture(scope="module")
def server():
    with FakeObjectServer() as running:
        yield running


_ROOT_COUNTER = iter(range(10**6))


@pytest.fixture(params=["fs", "obj"])
def root(request, tmp_path, server):
    """A fresh backend root of each flavour."""
    if request.param == "fs":
        return tmp_path
    return f"{server.url}/faults{next(_ROOT_COUNTER)}"


class TestDroppedPuts:
    def test_dropped_result_puts_only_delay_the_merge(self, root):
        """A worker whose first publishes vanish re-executes those shards
        on its next scan; the coordinator's merge is still bit-identical.
        """
        plan = ExperimentPlan.sweep("x", XS)
        quantities = {"double": _double, "square": _square}
        serial = Executor(workers=0).run(plan, quantities)
        job = submit(plan, quantities, root=root, shard_size=2)
        chaos = ChaosStore(open_store(root), drop_result_puts=2)
        worker = Worker(root=root, store=chaos)

        worker.run_once()
        assert len(chaos.dropped) == 2  # two publishes reported ok, lost
        assert not job_status(job)["complete"]
        worker.run_once()  # the lost shards are simply still pending
        assert job_status(job)["complete"]
        values, metas = merge_job(job)
        assert values == serial.values
        assert len(metas) == len(job.shards)

    def test_coordinator_merge_survives_a_dropping_fleet_member(self, root):
        """wait_for_job over a healthy store completes even when a fleet
        member's writes are partially lost — the coordinator participates
        and re-executes whatever never landed."""
        plan = ExperimentPlan.sweep("x", XS)
        quantities = {"double": _double}
        job = submit(plan, quantities, root=root, shard_size=2)
        lossy = Worker(root=root,
                       store=ChaosStore(open_store(root),
                                        drop_result_puts=10**9))
        lossy.run_once()  # executes everything, publishes nothing
        assert not job_status(job)["complete"]
        values, _ = wait_for_job(job, timeout_s=60.0)
        assert values == Executor(workers=0).run(plan, quantities).values


class TestDuplicatedPuts:
    def test_duplicated_puts_are_harmless(self, root):
        plan = ExperimentPlan.sweep("x", XS)
        quantities = {"double": _double, "square": _square}
        serial = Executor(workers=0).run(plan, quantities)
        job = submit(plan, quantities, root=root, shard_size=2)
        worker = Worker(root=root,
                        store=ChaosStore(open_store(root),
                                         duplicate_puts=True))
        assert worker.run_once() == len(job.shards)
        values, metas = merge_job(job)
        assert values == serial.values
        assert [m["worker"] for m in metas] \
            == [worker.id] * len(job.shards)


class TestDelayedHeartbeats:
    def test_stolen_lease_never_double_publishes(self, root):
        """The full late-worker story, deterministically sequenced:

        A slow worker claims a shard with a short TTL, its heartbeat is
        delayed past expiry, a survivor steals the lease and publishes
        the shard.  The slow worker's delayed heartbeat must fail (the
        conditional write sees the stolen lease), its publish must lose
        the exclusive create, and the shard's provenance must name the
        survivor — published exactly once.
        """
        plan = ExperimentPlan.sweep("x", XS)
        quantities = {"double": _double}
        serial = Executor(workers=0).run(plan, quantities)
        job = submit(plan, quantities, root=root,
                     shard_size=len(XS))  # one shard: the contended one
        shard = job.shards[0]

        slow_store = ChaosStore(open_store(root), lease_write_delay_s=0.6)
        slow = ResultCache(root=root, mode="rw", salt=job.salt,
                           store=slow_store)
        survivor = ResultCache(root=root, mode="rw", salt=job.salt)

        # The slow worker claims (the claim itself is also delayed — its
        # first lease write — which only shortens the remaining TTL).
        assert slow.claim_lease(shard.key, "slow:1", ttl=0.2)

        steal_result = {}

        def steal_and_publish():
            # Wait out the TTL, steal, execute, publish — the survivor's
            # half of the race, running while the slow worker's delayed
            # heartbeat is in flight.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if survivor.claim_lease(shard.key, "survivor:2", ttl=30.0):
                    break
                time.sleep(0.05)
            values = Executor(workers=0).run_shard(
                plan, quantities, shard.start, shard.stop)
            steal_result["published"] = survivor.store_result(
                shard.key, values, meta={"worker": "survivor:2"},
                if_absent=True)
            survivor.release_lease(shard.key, "survivor:2")

        thief = threading.Thread(target=steal_and_publish)
        time.sleep(0.25)  # lease now expired, heartbeat not yet sent
        thief.start()
        time.sleep(0.1)  # let the survivor reach its claim loop
        # The delayed heartbeat: sleeps inside the lease write while the
        # survivor steals, then fails its conditional put.
        heartbeat_landed = slow.heartbeat_lease(shard.key, "slow:1")
        thief.join(timeout=30.0)
        assert not thief.is_alive()

        assert steal_result["published"] is True
        assert heartbeat_landed is False  # the slow worker learned it lost
        assert slow_store.lease_writes_delayed >= 1

        # The slow worker finishes its stale execution and tries to
        # publish: the exclusive create must lose.
        stale_values = Executor(workers=0).run_shard(
            plan, quantities, shard.start, shard.stop)
        assert slow.store_result(shard.key, stale_values,
                                 meta={"worker": "slow:1"},
                                 if_absent=True) is False

        # Published exactly once, by the survivor, and the merge is
        # bit-identical to the serial executor.
        assert survivor.load_meta(shard.key) == {"worker": "survivor:2"}
        values, metas = merge_job(job)
        assert values == serial.values
        assert metas[0]["worker"] == "survivor:2"

    def test_worker_heartbeat_thread_tolerates_delay(self, root):
        """An executing worker whose every lease write crawls still
        completes and publishes; the delay costs time, not correctness."""
        plan = ExperimentPlan.sweep("x", XS)
        quantities = {"double": _double}
        job = submit(plan, quantities, root=root, shard_size=3)
        worker = Worker(root=root, lease_ttl=5.0,
                        store=ChaosStore(open_store(root),
                                         lease_write_delay_s=0.05))
        assert worker.run_once() == len(job.shards)
        values, _ = merge_job(job)
        assert values == Executor(workers=0).run(plan, quantities).values
