"""Tests for batched-quantity execution and the vectorised model kernels.

The contract under test, end to end:

* a quantity declared through :func:`repro.analysis.runner.batched`
  evaluates whole shards as arrays, *bit-identically* to its own
  per-point fallback (``Executor(batch=False)``) for sweeps, grids and
  Monte-Carlo plans — including the per-sample ``SeedSequence`` streams;
* the batched path engages only when *every* requested quantity supports
  it, falls back silently otherwise, and composes with ``run_shard``,
  the persistent cache and the distrib backend;
* the vectorised kernels in :mod:`repro.models.batch`,
  :mod:`repro.sram.batch` and :mod:`repro.sensors.batch` agree with the
  scalar models they mirror;
* degenerate one-point plans survive every execution mode.
"""

import numpy as np
import pytest

from repro.analysis.cache import ResultCache
from repro.analysis.distrib import DistribBackend
from repro.analysis.runner import (
    BatchedQuantity,
    Executor,
    ExperimentPlan,
    batched,
)
from repro.errors import ConfigurationError, ModelError
from repro.models.batch import (
    TechnologyBatch,
    fo4_delay,
    gate_delay,
    gate_transition_energy,
    leakage_current,
    on_current,
)
from repro.models.delay import InverterChain
from repro.models.delay import fo4_delay as scalar_fo4_delay
from repro.models.gate import GateModel, GateType
from repro.models.mosfet import MosfetModel
from repro.models.technology import get_technology
from repro.sensors.batch import predicted_counts
from repro.sensors.charge_to_digital import ChargeToDigitalConverter
from repro.sram.batch import (
    calibrated_bitline_params,
    si_read_latency,
    si_write_latency,
)
from repro.sram.bitline import calibrate_bitline_to_fig5
from repro.sram.sram import SRAMConfig, SpeedIndependentSRAM

TECH = get_technology("cmos90")
VDDS = [0.25 + 0.05 * i for i in range(8)]


# Module level so the distrib payload pickles by reference.
def _sweep_kernel(vdds):
    return gate_delay(TechnologyBatch.of(TECH), np.asarray(vdds, dtype=float))


def _grid_kernel(vdds, fanouts):
    batch = TechnologyBatch.of(TECH)
    cin = TECH.unit_inverter_input_cap * GateType.INVERTER.logical_effort
    return gate_delay(batch, np.asarray(vdds, dtype=float),
                      external_load=np.asarray(fanouts, dtype=float) * cin)


def _mc_kernel(batch):
    return gate_delay(batch, 0.4)


def _scalar_mc_delay(perturbed):
    return GateModel(technology=perturbed).delay(0.4)


_sweep_q = batched(_sweep_kernel)
_grid_q = batched(_grid_kernel)
_mc_q = batched(_mc_kernel)


def _sweep_plan(values=VDDS):
    return ExperimentPlan.sweep("vdd", values)


def _mc_plan(samples=24, seed=3):
    return ExperimentPlan.monte_carlo(samples, technology=TECH, seed=seed)


class TestBatchedProtocol:
    def test_decorator_forms(self):
        assert isinstance(_sweep_q, BatchedQuantity)

        @batched
        def plain(vdds):
            return np.asarray(vdds) * 2.0

        assert isinstance(plain, BatchedQuantity)
        assert plain.batch(np.asarray([1.0, 2.0])).tolist() == [2.0, 4.0]
        assert plain(3.0) == 6.0

        @batched(point=lambda v: v * 2.0)
        def with_point(vdds):
            return np.asarray(vdds) * 2.0

        assert with_point(3.0) == 6.0

    def test_non_callable_rejected(self):
        with pytest.raises(ConfigurationError):
            batched("not a function")
        with pytest.raises(ConfigurationError):
            BatchedQuantity(lambda xs: xs, point_fn="nope")

    def test_sweep_batched_is_bit_identical(self):
        plan = _sweep_plan()
        fast = Executor().run(plan, {"delay": _sweep_q})
        slow = Executor(batch=False).run(plan, {"delay": _sweep_q})
        assert fast.provenance.executor == f"batched[{len(VDDS)} points]"
        assert slow.provenance.executor == "serial"
        assert fast.values == slow.values

    def test_grid_batched_is_bit_identical(self):
        plan = ExperimentPlan.grid("vdd", VDDS[:4], "fanout", [1.0, 2.0, 4.0])
        fast = Executor().run(plan, {"delay": _grid_q})
        slow = Executor(batch=False).run(plan, {"delay": _grid_q})
        assert fast.provenance.executor == "batched[12 points]"
        assert fast.values == slow.values

    def test_monte_carlo_batched_is_bit_identical(self):
        plan = _mc_plan()
        fast = Executor().run(plan, {"delay": _mc_q})
        slow = Executor(batch=False).run(plan, {"delay": _mc_q})
        assert fast.provenance.executor.startswith("batched[")
        assert fast.values == slow.values

    def test_monte_carlo_batched_matches_scalar_models_closely(self):
        # Per-sample draws match the scalar path exactly; the numerics of
        # numpy vs libm transcendentals differ by at most a few ULPs.
        plan = _mc_plan()
        fast = Executor().run(plan, {"delay": _mc_q})
        scalar = Executor().run(plan, {"delay": _scalar_mc_delay})
        assert fast.values["delay"] == pytest.approx(
            scalar.values["delay"], rel=1e-9)

    def test_run_shard_slices_the_batched_run(self):
        plan = _mc_plan(samples=17)
        full = Executor().run(plan, {"delay": _mc_q})
        shard = Executor().run_shard(plan, {"delay": _mc_q}, 5, 13)
        assert shard["delay"] == full.values["delay"][5:13]

    def test_mixed_quantity_set_falls_back_to_per_point(self):
        plan = _mc_plan(samples=6)
        result = Executor().run(plan, {"delay": _mc_q,
                                       "scalar": _scalar_mc_delay})
        assert result.provenance.executor == "serial"
        only_scalar = Executor().run(plan, {"scalar": _scalar_mc_delay})
        assert result.values["scalar"] == only_scalar.values["scalar"]

    def test_batch_false_disables_vectorised_path(self):
        result = Executor(batch=False).run(_sweep_plan(), {"d": _sweep_q})
        assert result.provenance.executor == "serial"

    def test_wrong_shape_kernel_rejected(self):
        bad = batched(lambda vdds: np.asarray([1.0]))
        with pytest.raises(ConfigurationError, match="shape"):
            Executor().run(_sweep_plan(), {"bad": bad})

    def test_wrong_shape_kernel_rejected_per_point_too(self):
        bad = batched(lambda vdds: np.asarray([1.0, 2.0]))
        with pytest.raises(ConfigurationError, match="shape"):
            Executor(batch=False).run(_sweep_plan([0.5]), {"bad": bad})


class TestBatchedCacheAndDistrib:
    def test_cache_hit_equivalence_batched_then_per_point(self, tmp_path):
        plan = _mc_plan()
        rw = ResultCache(root=tmp_path, mode="rw")
        first = Executor(persistent=rw).run(plan, {"delay": _mc_q})
        assert first.provenance.executor.startswith("batched[")
        replay = Executor(persistent=ResultCache(root=tmp_path, mode="rw"),
                          batch=False).run(plan, {"delay": _mc_q})
        assert replay.provenance.executor == "persistent-cache"
        assert replay.values == first.values

    def test_cache_hit_equivalence_per_point_then_batched(self, tmp_path):
        plan = _mc_plan()
        slow = Executor(persistent=ResultCache(root=tmp_path, mode="rw"),
                        batch=False).run(plan, {"delay": _mc_q})
        assert slow.provenance.executor == "serial"
        replay = Executor(
            persistent=ResultCache(root=tmp_path, mode="rw")).run(
            plan, {"delay": _mc_q})
        assert replay.provenance.executor == "persistent-cache"
        assert replay.values == slow.values

    def test_distributed_batched_run_is_bit_identical(self, tmp_path):
        plan = _mc_plan(samples=10)
        local = Executor().run(plan, {"delay": _mc_q})
        distributed = Executor(distrib=DistribBackend(
            root=tmp_path, participate=True, poll_s=0.01, shard_size=4,
            timeout_s=60.0)).run(plan, {"delay": _mc_q})
        assert distributed.provenance.executor.startswith("distrib[")
        assert distributed.values == local.values


class TestDegenerateSizing:
    """One-point plans survive every execution mode (regression sweep)."""

    def test_shard_ranges_of_a_single_point_plan(self):
        plan = _sweep_plan([0.5])
        assert plan.shard_ranges(4) == [(0, 1)]
        assert plan.shard_ranges(1) == [(0, 1)]

    def test_one_point_serial_and_batched(self):
        plan = _sweep_plan([0.5])
        fast = Executor().run(plan, {"d": _sweep_q})
        slow = Executor(batch=False).run(plan, {"d": _sweep_q})
        assert fast.provenance.executor == "batched[1 points]"
        assert fast.values == slow.values

    def test_one_point_pool(self):
        plan = _sweep_plan([0.5])
        pooled = Executor(workers=2, batch=False).run(plan, {"d": _sweep_q})
        assert pooled.values == Executor().run(plan, {"d": _sweep_q}).values

    def test_one_point_run_shard(self):
        plan = _sweep_plan([0.5])
        shard = Executor().run_shard(plan, {"d": _sweep_q}, 0, 1)
        assert shard["d"] == Executor().run(plan, {"d": _sweep_q}).values["d"]

    def test_one_point_persistent(self, tmp_path):
        plan = _sweep_plan([0.5])
        cache = ResultCache(root=tmp_path, mode="rw")
        first = Executor(persistent=cache).run(plan, {"d": _sweep_q})
        again = Executor(persistent=cache).run(plan, {"d": _sweep_q})
        assert again.provenance.executor == "persistent-cache"
        assert again.values == first.values

    def test_one_point_distrib(self, tmp_path):
        plan = _sweep_plan([0.5])
        distributed = Executor(distrib=DistribBackend(
            root=tmp_path, participate=True, poll_s=0.01,
            timeout_s=60.0)).run(plan, {"d": _sweep_q})
        assert distributed.values == Executor().run(
            plan, {"d": _sweep_q}).values

    def test_one_sample_monte_carlo(self):
        plan = _mc_plan(samples=1)
        fast = Executor().run(plan, {"delay": _mc_q})
        slow = Executor(batch=False).run(plan, {"delay": _mc_q})
        assert fast.values == slow.values


class TestTechnologyBatch:
    def test_of_wraps_unchanged(self):
        batch = TechnologyBatch.of(TECH)
        assert batch.size == 1
        assert batch.vth[0] == TECH.vth
        assert batch.i_on_per_um[0] == TECH.i_on_per_um

    def test_from_samples_mirrors_apply_to(self):
        batch = TechnologyBatch.from_samples(
            TECH, [0.02, -0.01], [0.9, 1.1], [1.5, 0.7])
        assert batch.vth.tolist() == [TECH.vth + 0.02, TECH.vth - 0.01]
        assert batch.i_on_per_um.tolist() == [TECH.i_on_per_um * 0.9,
                                              TECH.i_on_per_um * 1.1]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ModelError):
            TechnologyBatch(base=TECH, vth=[0.3, 0.3],
                            i_on_per_um=[1.0], i_leak_per_um=[1.0])

    def test_non_1d_rejected(self):
        with pytest.raises(ModelError):
            TechnologyBatch(base=TECH, vth=[[0.3]], i_on_per_um=[[1.0]],
                            i_leak_per_um=[[1.0]])


class TestModelKernels:
    """The vectorised kernels agree with the scalar models they mirror."""

    def test_on_current_matches_mosfet_model(self):
        batch = TechnologyBatch.of(TECH)
        for vgs in (0.2, 0.4, 1.0):
            scalar = MosfetModel(technology=TECH, width_um=2.0).on_current(vgs)
            assert on_current(batch, vgs, 2.0)[0] == pytest.approx(
                scalar, rel=1e-9)

    def test_leakage_matches_mosfet_model(self):
        batch = TechnologyBatch.of(TECH)
        scalar = MosfetModel(technology=TECH).leakage_current(0.6)
        assert leakage_current(batch, 0.6)[0] == pytest.approx(
            scalar, rel=1e-9)
        assert leakage_current(batch, 0.0)[0] == 0.0

    def test_gate_delay_matches_gate_model(self):
        batch = TechnologyBatch.of(TECH)
        for gate_type in (GateType.INVERTER, GateType.NAND2, GateType.OR2):
            scalar = GateModel(technology=TECH, gate_type=gate_type).delay(0.5)
            assert gate_delay(batch, 0.5, gate_type)[0] == pytest.approx(
                scalar, rel=1e-9)

    def test_gate_delay_rejects_subfunctional_vdd(self):
        with pytest.raises(ModelError):
            gate_delay(TechnologyBatch.of(TECH), TECH.vdd_min / 2.0)

    def test_transition_energy_matches_gate_model(self):
        batch = TechnologyBatch.of(TECH)
        for vdd in (0.2, 0.5, 1.0):
            scalar = GateModel(technology=TECH).transition_energy(vdd)
            assert gate_transition_energy(batch, vdd)[0] == pytest.approx(
                scalar, rel=1e-9)

    def test_fo4_delay_matches_scalar(self):
        batch = TechnologyBatch.of(TECH)
        assert fo4_delay(batch, 0.6)[0] == pytest.approx(
            scalar_fo4_delay(TECH, 0.6), rel=1e-9)

    def test_elementwise_contract(self):
        # A sample's value inside a large batch is bitwise the value of
        # the one-sample batch — the property the runner relies on.
        rng = np.random.default_rng(5)
        offsets = rng.normal(0.0, 0.03, 32)
        batch = TechnologyBatch.from_samples(TECH, offsets,
                                             np.ones(32), np.ones(32))
        whole = gate_delay(batch, 0.4)
        for i in (0, 7, 31):
            alone = TechnologyBatch.from_samples(
                TECH, [offsets[i]], [1.0], [1.0])
            assert gate_delay(alone, 0.4)[0] == whole[i]


class TestSramKernels:
    def test_calibration_matches_scalar_fit(self):
        penalty, capacitance = calibrated_bitline_params(
            TechnologyBatch.of(TECH))
        scalar = calibrate_bitline_to_fig5(TECH)
        assert penalty[0] == pytest.approx(scalar.read_vth_penalty, rel=1e-6)
        assert capacitance[0] == pytest.approx(scalar.bitline_capacitance,
                                               rel=1e-6)

    @pytest.mark.parametrize("config", [
        SRAMConfig(rows=16, columns=8, calibrate_energy=False),
        SRAMConfig(rows=64, columns=16, calibrate_energy=False,
                   calibrate_to_fig5=False),
        SRAMConfig(rows=32, columns=8, calibrate_energy=False,
                   completion_segment_size=4),
    ])
    def test_latencies_match_scalar_sram(self, config):
        batch = TechnologyBatch.of(TECH)
        sram = SpeedIndependentSRAM(TECH, config)
        for vdd in (0.25, 0.5, 1.0):
            assert si_write_latency(batch, config, vdd)[0] == pytest.approx(
                sram.write_latency(vdd), rel=1e-9)
            assert si_read_latency(batch, config, vdd)[0] == pytest.approx(
                sram.read_latency(vdd), rel=1e-9)


class TestSensorKernels:
    def test_counts_match_converter_prediction(self):
        converter = ChargeToDigitalConverter(technology=TECH,
                                             sampling_capacitance=2e-12)
        for vdd in (0.3, 0.55, 0.9):
            assert predicted_counts(
                TECH, vdd, sampling_capacitance=2e-12)[0] == float(
                converter.predicted_count(vdd))

    def test_voltage_axis_broadcast_is_elementwise(self):
        vdds = np.asarray([0.3, 0.45, 0.6])
        swept = predicted_counts(TECH, vdds, sampling_capacitance=2e-12)
        singles = [predicted_counts(TECH, v, sampling_capacitance=2e-12)[0]
                   for v in vdds]
        assert swept.tolist() == singles

    def test_below_stop_voltage_counts_zero(self):
        assert predicted_counts(TECH, 0.0,
                                sampling_capacitance=2e-12)[0] == 0.0

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            predicted_counts(TECH, 0.5, sampling_capacitance=0.0)
        with pytest.raises(ConfigurationError):
            predicted_counts(TECH, 0.5, counter_width=0)
        with pytest.raises(ConfigurationError):
            predicted_counts(TECH, 0.5, stop_voltage=TECH.vdd_min / 2.0)
