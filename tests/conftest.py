"""Shared fixtures for the test suite."""

import pytest

from repro.models.technology import get_technology
from repro.sram.sram import SpeedIndependentSRAM, BundledSRAM, SRAMConfig


@pytest.fixture(scope="session")
def tech():
    """The paper's 90 nm process."""
    return get_technology("cmos90")


@pytest.fixture(scope="session")
def tech65():
    return get_technology("cmos65")


@pytest.fixture(scope="session")
def tech180():
    return get_technology("cmos180")


@pytest.fixture(scope="session")
def si_sram(tech):
    """A calibrated 64x16 speed-independent SRAM (shared, read-only use)."""
    return SpeedIndependentSRAM(tech)


@pytest.fixture(scope="session")
def bundled_sram(tech):
    """The matched-delay baseline SRAM (shared, read-only use)."""
    return BundledSRAM(tech)


@pytest.fixture()
def fresh_si_sram(tech):
    """A private SI SRAM instance for tests that mutate storage."""
    return SpeedIndependentSRAM(tech)


@pytest.fixture(scope="session")
def small_sram_config():
    """A small array for fast event-driven tests."""
    return SRAMConfig(rows=8, columns=4, calibrate_energy=False)
