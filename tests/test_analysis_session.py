"""RunConfig resolution, the Session facade, and the consolidated CLI."""

import json
import os
import sys

import pytest

from repro.analysis.cache import ResultCache
from repro.analysis.runner import Executor, ExperimentPlan
from repro.analysis.session import (
    RunConfig,
    RunHandle,
    Session,
    default_session,
    reset_default_session,
)
from repro.analysis.sweep import sweep
from repro.errors import ConfigurationError

HAVE_TOMLLIB = sys.version_info >= (3, 11)


def delay_fn(vdd):
    from repro.models.gate import GateModel
    from repro.models.technology import get_technology

    return GateModel(technology=get_technology("cmos90")).delay(vdd)


def energy_fn(vdd):
    from repro.models.gate import GateModel
    from repro.models.technology import get_technology

    return GateModel(technology=get_technology("cmos90")).transition_energy(vdd)


PLAN = ExperimentPlan.sweep("vdd", [0.3 + 0.1 * i for i in range(8)])
QUANTITIES = {"delay": delay_fn, "energy": energy_fn}


# ---------------------------------------------------------------------------
# RunConfig resolution


class TestRunConfigResolution:
    def test_defaults(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # no stray repro.toml
        config = RunConfig.resolve(environ={})
        assert config.workers == 0
        assert config.cache_mode == "off"
        assert config.cache_root is None
        assert config.distrib_root is None
        assert config.shard_size == 4
        assert set(config.sources.values()) == {"default"}

    def test_env_beats_defaults(self):
        env = {"REPRO_WORKERS": "5", "REPRO_CACHE_MODE": "ro",
               "REPRO_CACHE_DIR": "/tmp/somewhere",
               "REPRO_DISTRIB_ROOT": "http://host:1/bucket",
               "REPRO_SHARD_SIZE": "7"}
        config = RunConfig.resolve(environ=env)
        assert config.workers == 5
        assert config.cache_mode == "ro"
        assert config.cache_root == "/tmp/somewhere"
        assert config.distrib_root == "http://host:1/bucket"
        assert config.shard_size == 7
        assert config.sources["workers"] == "env REPRO_WORKERS"

    def test_kwargs_beat_env(self):
        env = {"REPRO_WORKERS": "5", "REPRO_CACHE_MODE": "ro"}
        config = RunConfig.resolve(environ=env, workers=2, cache_mode="rw")
        assert config.workers == 2
        assert config.cache_mode == "rw"
        assert config.sources["workers"] == "kwargs"
        assert config.sources["cache_mode"] == "kwargs"

    def test_none_kwarg_falls_through_to_env(self):
        config = RunConfig.resolve(environ={"REPRO_WORKERS": "3"},
                                   workers=None)
        assert config.workers == 3

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown RunConfig"):
            RunConfig.resolve(environ={}, worker_count=4)

    @pytest.mark.skipif(not HAVE_TOMLLIB, reason="tomllib needs >= 3.11")
    def test_file_beats_defaults_env_beats_file(self, tmp_path):
        path = tmp_path / "repro.toml"
        path.write_text('[run]\nworkers = 6\ncache_mode = "rw"\n'
                        'shard_size = 2\n')
        from_file = RunConfig.resolve(environ={}, config_file=str(path))
        assert from_file.workers == 6
        assert from_file.cache_mode == "rw"
        assert from_file.shard_size == 2
        assert from_file.sources["workers"] == f"file {path}"
        layered = RunConfig.resolve(environ={"REPRO_WORKERS": "1"},
                                    config_file=str(path))
        assert layered.workers == 1          # env wins
        assert layered.cache_mode == "rw"    # file still fills the rest

    @pytest.mark.skipif(not HAVE_TOMLLIB, reason="tomllib needs >= 3.11")
    def test_implicit_repro_toml_in_cwd(self, tmp_path, monkeypatch):
        (tmp_path / "repro.toml").write_text('[run]\nworkers = "auto"\n')
        monkeypatch.chdir(tmp_path)
        config = RunConfig.resolve(environ={})
        assert config.workers == RunConfig.available_cpus()

    @pytest.mark.skipif(not HAVE_TOMLLIB, reason="tomllib needs >= 3.11")
    def test_unknown_file_key_rejected(self, tmp_path):
        path = tmp_path / "repro.toml"
        path.write_text("[run]\nworker_count = 4\n")
        with pytest.raises(ConfigurationError, match="unknown"):
            RunConfig.resolve(environ={}, config_file=str(path))

    def test_explicit_missing_file_is_an_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            RunConfig.resolve(environ={},
                              config_file=str(tmp_path / "nope.toml"))
        with pytest.raises(ConfigurationError, match="does not exist"):
            RunConfig.resolve(
                environ={"REPRO_CONFIG": str(tmp_path / "nope.toml")})

    def test_parse_workers(self):
        assert RunConfig.parse_workers("auto") == RunConfig.available_cpus()
        assert RunConfig.parse_workers("3") == 3
        assert RunConfig.parse_workers(0) == 0
        for bad in ("many", "-1", -1, 2.5, True):
            with pytest.raises(ConfigurationError):
                RunConfig.parse_workers(bad)

    def test_parse_root(self):
        assert RunConfig.parse_root(None) is None
        # "fs" is an *explicit* choice of the default local root, so a
        # flag saying "fs" beats an env var pointing elsewhere.
        assert RunConfig.parse_root("fs") == ".repro_cache"
        assert RunConfig.parse_root("") is None
        assert RunConfig.parse_root("obj:http://h:9/b") == "http://h:9/b"
        assert RunConfig.parse_root("/some/dir") == "/some/dir"
        assert RunConfig.parse_root("https://h:9/b") == "https://h:9/b"
        with pytest.raises(ConfigurationError):
            RunConfig.parse_root("obj:ftp://nope")

    def test_explicit_fs_flag_beats_env(self):
        config = RunConfig.resolve(
            environ={"REPRO_CACHE_DIR": "http://host:1/bucket"},
            cache_root="fs")
        assert config.cache_root == ".repro_cache"
        assert config.sources["cache_root"] == "kwargs"

    def test_config_file_false_disables_file_tier(self, tmp_path,
                                                  monkeypatch):
        (tmp_path / "repro.toml").write_text("[run]\nworkers = 5\n")
        monkeypatch.chdir(tmp_path)
        config = RunConfig.resolve(environ={}, config_file=False)
        assert config.workers == 0
        assert config.sources["workers"] == "default"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RunConfig(workers=-1)
        with pytest.raises(ConfigurationError):
            RunConfig(cache_mode="maybe")
        with pytest.raises(ConfigurationError):
            RunConfig(shard_size=0)

    def test_override(self):
        base = RunConfig.resolve(environ={})
        assert base.override() is base
        changed = base.override(workers="auto", cache_mode=None)
        assert changed.workers == RunConfig.available_cpus()
        assert changed.cache_mode == "off"
        assert changed.sources["workers"] == "kwargs"
        with pytest.raises(ConfigurationError):
            base.override(nonsense=1)

    def test_describe_and_fingerprint(self):
        config = RunConfig.resolve(environ={}, workers=2)
        described = config.describe()
        assert described["workers"] == 2
        assert described["sources"]["workers"] == "kwargs"
        # Policy must not perturb result content keys.
        assert config.__cache_fingerprint__() == "RunConfig"


# ---------------------------------------------------------------------------
# The Session facade


class TestSession:
    def test_run_mapping_and_kwargs_forms_identical(self):
        with Session(RunConfig.resolve(environ={})) as session:
            a = session.run(PLAN, QUANTITIES)
            b = session.run(PLAN, delay=delay_fn, energy=energy_fn)
        assert a.values == b.values
        assert a.provenance.quantities == b.provenance.quantities

    def test_serial_pooled_and_submit_are_bit_identical(self):
        serial = Executor(workers=0).run(PLAN, QUANTITIES)
        with Session(RunConfig.resolve(environ={}, workers=2)) as session:
            pooled = session.run(PLAN, QUANTITIES)
            handles = [session.submit(PLAN, QUANTITIES) for _ in range(3)]
            gathered = session.gather(handles)
        assert pooled.values == serial.values
        for result in gathered:
            assert result.values == serial.values
            record = result.provenance
            assert record.kind == "sweep"
            assert record.points == PLAN.point_count
            assert record.quantities == ("delay", "energy")
            assert record.wall_time_s >= 0.0

    def test_concurrent_submits_fork_pool_against_shared_cache(self, tech):
        # Monte-Carlo points build technologies through the shared cache
        # from pool children forked while sibling submits are mid-run —
        # the fork-guard / lock-rearm path must keep this deadlock-free
        # and bit-identical.
        def mc_delay(technology):
            from repro.models.gate import GateModel

            return GateModel(technology=technology).delay(0.4)

        mc = ExperimentPlan.monte_carlo(8, technology=tech, seed=3)
        serial = Executor(workers=0).run(mc, {"delay": mc_delay})
        with Session(RunConfig.resolve(environ={}, workers=2)) as session:
            handles = [session.submit(mc, delay=mc_delay)
                       for _ in range(3)]
            results = session.gather(handles)
        assert all(r.values == serial.values for r in results)

    def test_many_tenant_threads_submit_bit_identical(self):
        # The experiment service drives one shared Session from several
        # dispatcher threads; many threads interleaving submit()/gather()
        # must each get results bit-identical to the serial executor.
        import threading

        serial = Executor(workers=0).run(PLAN, QUANTITIES)
        results = {}
        errors = []
        with Session(RunConfig.resolve(environ={}, workers=2)) as session:
            def tenant(name):
                try:
                    handles = [session.submit(PLAN, QUANTITIES)
                               for _ in range(2)]
                    results[name] = session.gather(handles)
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append((name, exc))

            threads = [threading.Thread(target=tenant, args=(f"t{i}",))
                       for i in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=180)
        assert not errors
        assert len(results) == 6
        for gathered in results.values():
            assert all(r.values == serial.values for r in gathered)

    def test_technology_cache_is_consistent_under_contention(self, tech):
        # Monte-Carlo submits from many threads hammer one shared
        # TechnologyCache in-process (workers=0).  Contract under
        # contention: identical values, first-insert-wins entries (one
        # per perturbed sample), and no lost counter updates — every
        # lookup lands in exactly one of hits/misses.
        import threading

        def mc_delay(technology):
            from repro.models.gate import GateModel

            return GateModel(technology=technology).delay(0.4)

        mc = ExperimentPlan.monte_carlo(8, technology=tech, seed=3)
        serial = Executor(workers=0).run(mc, {"delay": mc_delay})
        n_threads, runs_each = 6, 2
        errors = []
        with Session(RunConfig.resolve(environ={})) as session:
            def tenant():
                try:
                    handles = [session.submit(mc, delay=mc_delay)
                               for _ in range(runs_each)]
                    for result in session.gather(handles):
                        assert result.values == serial.values
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [threading.Thread(target=tenant)
                       for _ in range(n_threads)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=180)
            assert not errors
            lookups = n_threads * runs_each * mc.point_count
            assert session.cache.hits + session.cache.misses == lookups
            # Racing misses may build a sample twice, but the entry set
            # converges to exactly one Technology per perturbed sample.
            assert len(session.cache) == mc.point_count
            assert session.cache.misses >= mc.point_count

    def test_gather_accepts_variadic_handles(self):
        with Session(RunConfig.resolve(environ={})) as session:
            h1 = session.submit(PLAN, delay=delay_fn)
            h2 = session.submit(PLAN, energy=energy_fn)
            r1, r2 = session.gather(h1, h2)
        assert isinstance(h1, RunHandle)
        assert h1.done() and h2.done()
        assert list(r1.values) == ["delay"]
        assert list(r2.values) == ["energy"]

    def test_handle_surfaces_quantity_exceptions(self):
        def broken(vdd):
            raise ValueError("modelling bug")

        with Session(RunConfig.resolve(environ={})) as session:
            handle = session.submit(PLAN, broken=broken)
            assert isinstance(handle.exception(timeout=30), ValueError)
            with pytest.raises(ValueError, match="modelling bug"):
                handle.result()

    def test_shared_technology_cache(self, tech):
        grid = ExperimentPlan.grid("vdd", [0.4, 0.7], "temperature_k",
                                   [260.0, 300.0])
        with Session(RunConfig.resolve(environ={})) as session:
            def energy(vdd, temperature_k):
                warm = session.cache.scaled(tech,
                                            temperature_k=temperature_k)
                return energy_fn(vdd) * warm.temperature_k

            session.run(grid, energy=energy)
            misses_after_first = session.cache.misses
            session.run(grid, energy=energy)
        # The second run rebuilds nothing: one shared cache across runs.
        assert session.cache.misses == misses_after_first
        assert session.executor is session.executor  # memoised wiring

    def test_persistent_cache_through_facade(self, tmp_path):
        config = RunConfig.resolve(environ={}, cache_mode="rw",
                                   cache_root=str(tmp_path))
        with Session(config) as session:
            assert isinstance(session.persistent, ResultCache)
            assert session.distrib is None
            first = session.run(PLAN, QUANTITIES)
            second = session.run(PLAN, QUANTITIES)
        assert first.provenance.persistent_misses == PLAN.point_count
        assert second.provenance.executor == "persistent-cache"
        assert second.values == first.values
        # A fresh session over the same root replays from disk.
        with Session(config) as replay:
            again = replay.run(PLAN, QUANTITIES)
        assert again.provenance.executor == "persistent-cache"
        assert again.values == first.values

    def test_session_overrides_and_bad_args(self):
        session = Session(workers="auto", environ={})
        assert session.config.workers == RunConfig.available_cpus()
        base = RunConfig.resolve(environ={})
        overridden = Session(base, workers=2)
        assert overridden.config.workers == 2
        assert base.workers == 0  # the original is untouched
        with pytest.raises(ConfigurationError):
            Session("not-a-config")
        with pytest.raises(ConfigurationError):
            Session(base, max_inflight=0)
        with pytest.raises(ConfigurationError):
            session.run(PLAN)  # no quantities
        with pytest.raises(ConfigurationError):
            session.run(PLAN, {"delay": delay_fn}, delay=delay_fn)

    def test_submit_after_close_is_refused(self):
        session = Session(RunConfig.resolve(environ={}))
        session.run(PLAN, delay=delay_fn)
        session.close()
        session.close()  # idempotent
        with pytest.raises(ConfigurationError, match="closed"):
            session.submit(PLAN, delay=delay_fn)
        # Synchronous runs stay available after close.
        assert session.run(PLAN, delay=delay_fn).values


# ---------------------------------------------------------------------------
# The legacy sweep() helper rides the default session


class TestDefaultSession:
    @pytest.fixture(autouse=True)
    def _fresh_default_session(self):
        reset_default_session()
        yield
        reset_default_session()

    def test_sweep_routes_through_default_session(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("REPRO_CACHE_MODE", "rw")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        reset_default_session()
        first = sweep("vdd", [0.4, 0.6, 0.8], {"delay": delay_fn})
        session = default_session()
        assert session.persistent is not None
        assert session.persistent.writes > 0
        second = sweep("vdd", [0.4, 0.6, 0.8], {"delay": delay_fn})
        assert session.persistent.hits > 0
        assert second["delay"].points == first["delay"].points

    def test_explicit_executor_still_wins(self):
        executor = Executor(workers=0)
        result = sweep("vdd", [0.5, 0.9], {"delay": delay_fn},
                       executor=executor)
        assert [x for x, _ in result["delay"].points] == [0.5, 0.9]


# ---------------------------------------------------------------------------
# The consolidated CLI


class TestConsolidatedCLI:
    def test_bare_invocation_prints_help(self, capsys):
        from repro.cli import main

        assert main([]) == 2
        assert "selftest" in capsys.readouterr().out

    def test_cache_alias_forwards_flags_verbatim(self, tmp_path,
                                                 monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache", "--stats", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["root"] == str(tmp_path)

    def test_run_subcommand_json(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        code = main(["run", "--plan", "repro.analysis.distrib:selftest_plan",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["provenance"]["points"] == 12
        assert sorted(payload["values"]) == ["delay", "energy"]
        assert payload["config"]["workers"] == 0

    def test_run_matches_direct_execution(self, tmp_path, monkeypatch,
                                          capsys):
        from repro.analysis.distrib import selftest_plan
        from repro.cli import main

        plan, quantities = selftest_plan()
        direct = Executor(workers=0).run(plan, quantities)
        monkeypatch.chdir(tmp_path)
        assert main(["run", "--plan",
                     "repro.analysis.distrib:selftest_plan",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["values"] == direct.values

    def test_selftest_rejects_unknown_suite(self, capsys):
        from repro.cli import main

        assert main(["selftest", "--only", "nonsense"]) == 2
        assert "unknown selftest suite" in capsys.readouterr().out
