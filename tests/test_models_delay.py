"""Tests for inverter chains and logic-delay references."""

import pytest

from repro.errors import ConfigurationError, ModelError
from repro.models.delay import InverterChain, fo4_delay, logical_effort_delay


class TestFo4Delay:
    def test_positive_and_voltage_dependent(self, tech):
        assert fo4_delay(tech, 1.0) > 0
        assert fo4_delay(tech, 0.3) > fo4_delay(tech, 1.0)

    def test_older_node_is_slower(self, tech, tech180):
        assert fo4_delay(tech180, 1.8) > 0
        # At its own nominal voltage the 180 nm node is slower than 90 nm.
        assert fo4_delay(tech180, tech180.vdd_nominal) > fo4_delay(tech, tech.vdd_nominal)


class TestLogicalEffortDelay:
    def test_more_stages_means_more_delay(self, tech):
        two = logical_effort_delay(tech, 1.0, [1.0, 1.0])
        four = logical_effort_delay(tech, 1.0, [1.0, 1.0, 1.0, 1.0])
        assert four > two > 0

    def test_higher_stage_effort_is_slower(self, tech):
        assert (logical_effort_delay(tech, 1.0, [4.0])
                > logical_effort_delay(tech, 1.0, [1.0]))


class TestInverterChain:
    def test_total_delay_is_stages_times_stage_delay(self, tech):
        chain = InverterChain(technology=tech, stages=10)
        assert chain.total_delay(0.8) == pytest.approx(
            10 * chain.stage_delay(0.8), rel=1e-9)

    def test_arrival_times_are_increasing(self, tech):
        chain = InverterChain(technology=tech, stages=5)
        arrivals = chain.stage_arrival_times(0.6)
        assert len(arrivals) == 5
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))

    def test_stages_reached_monotone_in_elapsed_time(self, tech):
        chain = InverterChain(technology=tech, stages=50)
        t_half = chain.total_delay(0.5) / 2
        assert chain.stages_reached(0.5, 0.0) == 0
        mid = chain.stages_reached(0.5, t_half)
        assert 0 < mid < 50
        assert chain.stages_reached(0.5, 10 * chain.total_delay(0.5)) == 50

    def test_delay_in_inverters_ruler(self, tech):
        chain = InverterChain(technology=tech, stages=1)
        some_delay = 25 * chain.stage_delay(1.0)
        assert chain.delay_in_inverters(1.0, some_delay) == pytest.approx(25, rel=1e-6)

    def test_energy_positive_and_grows_with_vdd(self, tech):
        chain = InverterChain(technology=tech, stages=8)
        assert chain.energy(1.0) > chain.energy(0.4) > 0

    def test_rejects_non_positive_stage_count(self, tech):
        with pytest.raises((ConfigurationError, ModelError)):
            InverterChain(technology=tech, stages=0)

    def test_fanout_slows_the_chain(self, tech):
        light = InverterChain(technology=tech, stages=10, fanout=1.0)
        heavy = InverterChain(technology=tech, stages=10, fanout=4.0)
        assert heavy.total_delay(1.0) > light.total_delay(1.0)
