"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for name in ("ConfigurationError", "ModelError", "SimulationError",
                     "PowerError", "SupplyCollapseError", "ProtocolError",
                     "SchedulerError", "ArbitrationError", "SensorError",
                     "CalibrationError", "AddressError", "RetentionError",
                     "HazardError", "DeadlockError", "SchedulingError",
                     "EnergyAccountingError", "CompletionDetectionError"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_supply_collapse_is_a_power_error(self):
        assert issubclass(errors.SupplyCollapseError, errors.PowerError)

    def test_deadlock_and_hazard_are_simulation_errors(self):
        assert issubclass(errors.DeadlockError, errors.SimulationError)
        assert issubclass(errors.HazardError, errors.SimulationError)

    def test_calibration_is_a_sensor_error(self):
        assert issubclass(errors.CalibrationError, errors.SensorError)

    def test_address_and_retention_are_memory_errors(self):
        assert issubclass(errors.AddressError, errors.MemoryError_)
        assert issubclass(errors.RetentionError, errors.MemoryError_)

    def test_repro_error_is_catchable_as_exception(self):
        with pytest.raises(Exception):
            raise errors.ReproError("boom")

    def test_errors_carry_messages(self):
        try:
            raise errors.SupplyCollapseError("the rail died")
        except errors.PowerError as exc:
            assert "rail died" in str(exc)
