"""Property-based tests (hypothesis) on the library's core invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.energy_tokens import EnergyTokenNet
from repro.core.petri import PetriNet
from repro.core.scheduler import EnergyTokenScheduler, SchedulingPolicy, Task
from repro.core.stochastic import PowerLatencyModel
from repro.models.gate import GateModel, GateType
from repro.models.technology import get_technology
from repro.power.capacitor import Capacitor
from repro.sensors.charge_to_digital import ChargeToDigitalConverter
from repro.sensors.reference_free import ReferenceFreeVoltageSensor


TECH = get_technology("cmos90")


class TestDeviceModelProperties:
    @given(vdd=st.floats(min_value=0.18, max_value=1.1),
           gate_type=st.sampled_from(list(GateType)))
    @settings(max_examples=60)
    def test_delay_and_energy_positive_for_every_gate_type(self, vdd, gate_type):
        gate = GateModel(technology=TECH, gate_type=gate_type)
        assert gate.delay(vdd) > 0
        assert gate.transition_energy(vdd) > 0
        assert gate.leakage_power(vdd) > 0

    @given(v_low=st.floats(min_value=0.18, max_value=0.9),
           delta=st.floats(min_value=0.02, max_value=0.2))
    @settings(max_examples=60)
    def test_delay_monotone_decreasing_in_vdd(self, v_low, delta):
        gate = GateModel(technology=TECH, gate_type=GateType.NAND2)
        assert gate.delay(v_low) >= gate.delay(min(v_low + delta, 1.1))


class TestChargeConservationProperties:
    @given(initial=st.floats(min_value=0.1, max_value=2.0),
           draws=st.lists(st.floats(min_value=0.0, max_value=1e-9),
                          min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_capacitor_voltage_never_negative_and_never_rises_on_draws(
            self, initial, draws):
        cap = Capacitor(capacitance=10e-9, initial_voltage=initial)
        previous = cap.voltage(0.0)
        for i, charge in enumerate(draws):
            cap.draw_charge(charge, float(i)) if previous > 0 else None
            current = cap.voltage(float(i))
            assert 0.0 <= current <= previous + 1e-15
            previous = current

    @given(voltage=st.floats(min_value=0.3, max_value=1.0))
    @settings(max_examples=15, deadline=None)
    def test_charge_to_digital_count_bounded_by_stored_charge(self, voltage):
        converter = ChargeToDigitalConverter(technology=TECH,
                                             sampling_capacitance=20e-12)
        from repro.power.supply import ConstantSupply
        result = converter.convert(ConstantSupply(voltage))
        assert 0 <= result.count < (1 << converter.counter_width)
        assert result.charge_consumed <= 20e-12 * voltage + 1e-15
        assert result.final_voltage <= result.sampled_voltage + 1e-12


class TestSensorMonotonicityProperties:
    @given(v_low=st.floats(min_value=0.2, max_value=0.95),
           delta=st.floats(min_value=0.02, max_value=0.3))
    @settings(max_examples=40)
    def test_reference_free_code_monotone_nonincreasing_in_vdd(self, v_low, delta):
        sensor = ReferenceFreeVoltageSensor(technology=TECH)
        v_high = min(v_low + delta, 1.0)
        assert sensor.raw_code(v_high) <= sensor.raw_code(v_low)


class TestPetriNetProperties:
    @given(tokens=st.integers(min_value=0, max_value=30),
           weight=st.integers(min_value=1, max_value=5))
    @settings(max_examples=40)
    def test_token_conservation_in_a_transfer_net(self, tokens, weight):
        net = PetriNet()
        net.add_place("a", tokens=tokens)
        net.add_place("b", tokens=0)
        net.add_transition("move", {"a": weight}, {"b": weight})
        net.run()
        marking = net.marking()
        assert marking["a"] + marking["b"] == tokens
        assert marking["a"] < weight

    @given(deposits=st.lists(st.floats(min_value=0.0, max_value=5e-9),
                             min_size=1, max_size=30))
    @settings(max_examples=40)
    def test_energy_ledger_never_creates_energy(self, deposits):
        net = EnergyTokenNet(joules_per_token=1e-9)
        net.add_place("go", tokens=100)
        net.add_energy_transition("work", {"go": 1}, {}, energy_tokens=2)
        for amount in deposits:
            net.deposit_energy(amount)
        net.run(max_firings=1000)
        assert net.energy_spent + net.stored_energy <= net.energy_deposited + 1e-9
        assert net.energy_spent >= 0


class TestSchedulerProperties:
    task_strategy = st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=20e-9),    # energy
                  st.integers(min_value=1, max_value=3),        # duration
                  st.floats(min_value=0.0, max_value=10.0)),    # value
        min_size=1, max_size=6)

    @given(specs=task_strategy,
           profile=st.lists(st.floats(min_value=0.0, max_value=10e-9),
                            min_size=1, max_size=20),
           policy=st.sampled_from(list(SchedulingPolicy)))
    @settings(max_examples=50, deadline=None)
    def test_scheduler_never_spends_more_than_offered(self, specs, profile, policy):
        tasks = [Task(f"t{i}", energy=e, duration=d, value=v)
                 for i, (e, d, v) in enumerate(specs)]
        scheduler = EnergyTokenScheduler(tasks, joules_per_token=1e-9,
                                         policy=policy)
        result = scheduler.run(profile)
        assert result.energy_spent <= result.energy_offered + 1e-12
        assert 0.0 <= result.energy_utilisation <= 1.0
        completed = set(result.completed_tasks)
        assert completed.isdisjoint(set(result.unfinished_tasks))
        assert completed | set(result.unfinished_tasks) == {t.name for t in tasks}


class TestQueueingProperties:
    @given(arrival=st.floats(min_value=1.0, max_value=200.0),
           service=st.floats(min_value=1.0, max_value=100.0),
           extra=st.integers(min_value=0, max_value=8))
    @settings(max_examples=60)
    def test_latency_bounded_below_by_service_time_and_decreasing_in_servers(
            self, arrival, service, extra):
        model = PowerLatencyModel(arrival_rate=arrival, service_rate=service)
        servers = model.minimum_servers() + extra
        latency = model.mean_latency(servers)
        assert latency >= 1.0 / service - 1e-12
        assert model.mean_latency(servers + 1) <= latency + 1e-12


class TestStochasticSimulationProperties:
    """The un-vectorised M/M/c Monte-Carlo kernel (core/stochastic)."""

    @given(arrival=st.floats(min_value=10.0, max_value=500.0),
           service=st.floats(min_value=10.0, max_value=200.0),
           extra=st.integers(min_value=0, max_value=4),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_simulation_is_seed_deterministic_and_physical(
            self, arrival, service, extra, seed):
        from repro.core.stochastic import simulate_mmc

        model = PowerLatencyModel(arrival_rate=arrival, service_rate=service)
        servers = model.minimum_servers() + extra
        first = simulate_mmc(model, servers, jobs=200, seed=seed)
        again = simulate_mmc(model, servers, jobs=200, seed=seed)
        assert first == again  # bit-identical replay from one seed
        assert 0.0 <= first.utilisation <= 1.0 + 1e-12
        # every job waits at least its own service time, so the empirical
        # mean latency cannot undercut the analytic service-time floor by
        # much more than sampling noise allows in expectation
        assert first.mean_latency > 0.0
        assert first.power > 0.0
        assert first.stable == model.is_stable(servers)

    @given(arrival=st.floats(min_value=10.0, max_value=500.0),
           service=st.floats(min_value=10.0, max_value=200.0),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_simulated_latency_dominates_pure_service_time(
            self, arrival, service, seed):
        from repro.core.stochastic import simulate_mmc

        model = PowerLatencyModel(arrival_rate=arrival, service_rate=service)
        # with one server per minimum requirement plus slack, queueing
        # delay is non-negative: simulated latency >= the mean of the
        # drawn service times, which the same seed reproduces
        servers = model.minimum_servers() + 2
        point = simulate_mmc(model, servers, jobs=300, seed=seed)
        import numpy as np

        rng = np.random.default_rng(seed)
        rng.exponential(1.0 / model.arrival_rate, size=300)
        services = rng.exponential(1.0 / model.service_rate, size=300)
        assert point.mean_latency >= float(services.mean()) - 1e-12


class TestHarvesterProperties:
    """The seeded harvester family (power/harvester)."""

    kinds = st.sampled_from(["vibration", "solar", "thermal",
                             "intermittent"])

    @given(kind=kinds,
           seed=st.integers(min_value=0, max_value=2**31 - 1),
           deltas=st.lists(st.floats(min_value=0.01, max_value=5.0),
                           min_size=1, max_size=8),
           scale=st.floats(min_value=0.5, max_value=1.5))
    @settings(max_examples=40, deadline=None)
    def test_energy_envelope_holds_for_every_seeded_realisation(
            self, kind, seed, deltas, scale):
        from repro.power.harvester import harvester_energy_violations

        times, total = [], 0.0
        for delta in deltas:
            total += delta
            times.append(total)
        assert harvester_energy_violations(kind, seed, times,
                                           voltage_scale=scale) == []

    @given(kind=kinds,
           seed=st.integers(min_value=0, max_value=2**31 - 1),
           t=st.floats(min_value=0.01, max_value=60.0))
    @settings(max_examples=40, deadline=None)
    def test_same_seed_same_environment(self, kind, seed, t):
        from repro.power.harvester import make_harvester

        first = make_harvester(kind, seed=seed).available_power(t)
        again = make_harvester(kind, seed=seed).available_power(t)
        assert first == again  # bit-identical seeded replay
        assert 0.0 <= first <= 2.0 * make_harvester(kind, seed=seed).peak_power

    @given(kind=kinds,
           seed=st.integers(min_value=0, max_value=2**31 - 1),
           duration=st.floats(min_value=0.1, max_value=30.0))
    @settings(max_examples=40, deadline=None)
    def test_harvest_ledger_matches_the_integral(self, kind, seed, duration):
        from repro.power.harvester import make_harvester

        harvester = make_harvester(kind, seed=seed)
        energy = harvester.harvest(0.0, duration)
        assert energy >= 0.0
        assert harvester.energy_harvested == energy
