"""Tests for harvester models and MPPT tracking."""

import pytest

from repro.errors import ConfigurationError
from repro.power.capacitor import Capacitor
from repro.power.harvester import (
    HarvesterModel,
    IntermittentHarvester,
    SolarHarvester,
    ThermalHarvester,
    VibrationHarvester,
)
from repro.power.mppt import MPPTController


class TestHarvesterBase:
    def test_extraction_is_maximal_at_mpp(self):
        harvester = VibrationHarvester(peak_power=100e-6, seed=0)
        t = 0.0
        vm = harvester.v_mpp(t)
        at_mpp = harvester.extracted_power(t, vm)
        off_mpp = harvester.extracted_power(t, vm * 0.5)
        assert at_mpp >= off_mpp
        assert harvester.extracted_power(t, 0.0) == pytest.approx(0.0)

    def test_harvest_accumulates_energy(self):
        harvester = VibrationHarvester(peak_power=100e-6, seed=0)
        energy = harvester.harvest(0.0, 1.0)
        assert energy > 0
        assert harvester.energy_harvested == pytest.approx(energy)

    def test_harvest_energy_bounded_by_peak_power(self):
        harvester = VibrationHarvester(peak_power=100e-6, wander=0.0, seed=0)
        energy = harvester.harvest(0.0, 2.0)
        assert energy <= 100e-6 * 2.0 * 1.01

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            HarvesterModel(peak_power=0.0, v_mpp_nominal=1.0)
        with pytest.raises(ConfigurationError):
            HarvesterModel(peak_power=1e-6, v_mpp_nominal=0.0)


class TestHarvesterVariants:
    def test_seeded_harvesters_are_reproducible(self):
        a = VibrationHarvester(seed=3)
        b = VibrationHarvester(seed=3)
        powers_a = [a.available_power(float(t)) for t in range(10)]
        powers_b = [b.available_power(float(t)) for t in range(10)]
        assert powers_a == powers_b

    def test_vibration_power_is_unstable(self):
        harvester = VibrationHarvester(wander=0.2, seed=1)
        samples = [harvester.available_power(float(t)) for t in range(60)]
        assert max(samples) > 1.5 * min(samples)

    def test_solar_follows_a_day_cycle(self):
        harvester = SolarHarvester(peak_power=1e-3, day_period=100.0,
                                   cloud_sigma=0.0, seed=0)
        noon = harvester.available_power(50.0)   # raised-cosine peak
        night = harvester.available_power(99.0)  # end of the "day"
        assert noon > night

    def test_thermal_power_positive_and_bounded(self):
        harvester = ThermalHarvester(peak_power=50e-6, seed=0)
        for t in range(0, 200, 20):
            power = harvester.available_power(float(t))
            assert 0.0 <= power <= 50e-6 * 1.01

    def test_intermittent_switches_on_and_off(self):
        harvester = IntermittentHarvester(mean_on_time=0.5, mean_off_time=0.5,
                                          seed=2)
        samples = [harvester.available_power(t * 0.1) for t in range(200)]
        assert any(p == 0.0 for p in samples)
        assert any(p > 0.0 for p in samples)

    def test_all_variants_expose_energy_ledger(self):
        for harvester in (VibrationHarvester(seed=0), SolarHarvester(seed=0),
                          ThermalHarvester(seed=0), IntermittentHarvester(seed=0)):
            harvester.harvest(0.0, 0.5)
            assert harvester.energy_harvested >= 0.0


class TestMPPT:
    def test_tracking_charges_the_store(self):
        harvester = VibrationHarvester(peak_power=200e-6, wander=0.0, seed=0)
        store = Capacitor(capacitance=100e-6, initial_voltage=0.5)
        controller = MPPTController(harvester=harvester, store=store,
                                    initial_voltage=harvester.v_mpp_nominal,
                                    step_interval=0.05)
        steps = controller.run(0.0, 5.0)
        assert len(steps) == pytest.approx(100, abs=2)
        assert store.voltage(5.2) > 0.5
        assert controller.energy_harvested() > 0.0

    def test_tracking_efficiency_reasonable(self):
        harvester = VibrationHarvester(peak_power=200e-6, wander=0.0, seed=0)
        store = Capacitor(capacitance=100e-6, initial_voltage=0.5)
        controller = MPPTController(harvester=harvester, store=store,
                                    initial_voltage=harvester.v_mpp_nominal * 0.8,
                                    step_interval=0.05)
        controller.run(0.0, 10.0)
        # Perturb-and-observe should stay within a sane fraction of ideal.
        assert 0.5 <= controller.tracking_efficiency() <= 1.0 + 1e-9

    def test_each_step_reports_operating_point(self):
        harvester = VibrationHarvester(peak_power=100e-6, seed=0)
        store = Capacitor(capacitance=100e-6, initial_voltage=1.0)
        controller = MPPTController(harvester=harvester, store=store)
        step = controller.step(0.0)
        assert step.operating_voltage > 0
        assert step.extracted_power >= 0
        assert step.harvested_energy >= 0
