"""The scenario campaign engine and the seeded invariant fuzzer.

Covers the four contracts the campaign layer makes:

* the declarative spec compiles deterministically (same registry + seed
  => identical plan set and signature) and the bundled ``paper_space``
  campaign enumerates the full figure space from one TOML file;
* execution goes through the Session front door, so serial, pooled and
  distrib-sharded runs of the same campaign are bit-identical and a warm
  persistent cache answers a re-run entirely from disk;
* the fuzzer's violation corpus replays byte-for-byte — demonstrated
  against a deliberately broken capacitor model that over-reports its
  stored charge, which the fuzzer must catch, shrink and persist within
  a bounded seed budget;
* the CLI surfaces misconfiguration as one clear ``error:`` line and an
  exit code, never a traceback.
"""

import json

import pytest

from repro.analysis.campaign import (
    DEFAULT_INVARIANTS,
    Invariant,
    compile_campaign,
    fuzz,
    load_case,
    reproduce,
    run_campaign,
)
from repro.analysis.campaign.spec import (
    AxisSpec,
    CampaignSpec,
    ScenarioSpec,
    builtin_campaign_path,
    load_campaign,
)
from repro.analysis.session import RunConfig, Session
from repro.errors import ConfigurationError
from repro.power.capacitor import (
    Capacitor,
    charge_conservation_violations,
)


def small_campaign(seed=7):
    """A hand-built two-scenario campaign (no tomllib dependency)."""
    return CampaignSpec(
        name="unit", seed=seed, scenarios=(
            ScenarioSpec(
                point="gate_metrics", technologies=("cmos90", "cmos65"),
                axes=(AxisSpec("vdd", (0.4, 0.7, 1.0)),),
                matrix=(("gate", ("INVERTER", "NAND2")),)),
            ScenarioSpec(
                point="mc_gate", technologies=("cmos90",),
                params=(("vdd", 0.5),), samples=6, seed_batches=2),
        ))


# ---------------------------------------------------------------------------
# Spec + compilation


class TestCampaignSpec:
    def test_compilation_expands_the_cross_product(self):
        campaign = compile_campaign(small_campaign())
        # 2 tech x 2 gates sweeps of 3 points, plus 2 MC batches of 6
        assert len(campaign.runs) == 2 * 2 + 2
        assert campaign.point_count == 4 * 3 + 2 * 6
        labels = [run.label for run in campaign.runs]
        assert "gate_metrics[cmos90]#0" in labels
        assert "mc_gate[cmos90]@1" in labels

    def test_same_spec_and_seed_compile_identically(self):
        first = compile_campaign(small_campaign())
        again = compile_campaign(small_campaign())
        assert first.signature() == again.signature()
        assert [r.label for r in first.runs] == \
            [r.label for r in again.runs]
        assert [r.plan.points() for r in first.runs] == \
            [r.plan.points() for r in again.runs]

    def test_seed_changes_the_monte_carlo_plans(self):
        base = compile_campaign(small_campaign(seed=7))
        other = compile_campaign(small_campaign(seed=8))
        assert base.signature() != other.signature()

    def test_unknown_point_function_rejected(self):
        with pytest.raises(ConfigurationError, match="point function"):
            compile_campaign(CampaignSpec(
                name="bad", seed=0, scenarios=(
                    ScenarioSpec(point="nonsense",
                                 technologies=("cmos90",)),)))

    def test_axes_must_match_the_point_function(self):
        with pytest.raises(ConfigurationError, match="needs axes"):
            compile_campaign(CampaignSpec(
                name="bad", seed=0, scenarios=(
                    ScenarioSpec(point="gate_metrics",
                                 technologies=("cmos90",),
                                 axes=(AxisSpec("volts", (0.5,)),)),)))

    def test_monte_carlo_rejects_axes_and_needs_samples(self):
        with pytest.raises(ConfigurationError, match="samples"):
            compile_campaign(CampaignSpec(
                name="bad", seed=0, scenarios=(
                    ScenarioSpec(point="mc_gate",
                                 technologies=("cmos90",)),)))
        with pytest.raises(ConfigurationError, match="not axes"):
            compile_campaign(CampaignSpec(
                name="bad", seed=0, scenarios=(
                    ScenarioSpec(point="mc_gate", technologies=("cmos90",),
                                 samples=4,
                                 axes=(AxisSpec("vdd", (0.5,)),)),)))

    def test_empty_campaign_rejected(self):
        with pytest.raises(ConfigurationError, match="no scenarios"):
            compile_campaign(CampaignSpec(name="bad", seed=0,
                                          scenarios=()))

    def test_trimmed_keeps_every_scenario_but_shrinks_the_space(self):
        spec = small_campaign()
        smoke = compile_campaign(spec.trimmed())
        full = compile_campaign(spec)
        assert smoke.point_count < full.point_count
        assert {r.scenario_index for r in smoke.runs} == \
            {r.scenario_index for r in full.runs}


class TestBundledCampaign:
    def test_paper_space_enumerates_the_figure_space(self):
        pytest.importorskip("tomllib")
        spec = load_campaign(builtin_campaign_path("paper_space"))
        campaign = compile_campaign(spec)
        # the acceptance bar: one TOML file, >= 5000 distinct plan points
        assert campaign.point_count >= 5000
        points = {scenario.point for scenario in spec.scenarios}
        assert {"gate_metrics", "sram_latency", "dualrail_counter",
                "charge_to_digital", "harvester_power",
                "mc_gate"} <= points

    def test_smoke_trim_is_seconds_sized(self):
        pytest.importorskip("tomllib")
        spec = load_campaign(builtin_campaign_path("paper_space"))
        smoke = compile_campaign(spec.trimmed())
        assert smoke.point_count < 200

    def test_unknown_bundled_name_lists_what_exists(self):
        with pytest.raises(ConfigurationError, match="paper_space"):
            builtin_campaign_path("nonsense")

    def test_schema_errors_name_the_scenario(self, tmp_path):
        pytest.importorskip("tomllib")
        bad = tmp_path / "bad.toml"
        bad.write_text('[[scenario]]\npoint = "gate_metrics"\n'
                       'bogus_key = 1\n')
        with pytest.raises(ConfigurationError, match="unknown keys"):
            load_campaign(bad)
        with pytest.raises(ConfigurationError, match="no \\[\\[scenario\\]\\]"):
            empty = tmp_path / "empty.toml"
            empty.write_text('[campaign]\nname = "x"\n')
            load_campaign(empty)


# ---------------------------------------------------------------------------
# Execution determinism across executors (the satellite-d contract)


class TestCampaignDeterminism:
    @pytest.fixture(scope="class")
    def campaign(self):
        return compile_campaign(small_campaign().trimmed())

    def serial_values(self, campaign):
        config = RunConfig.resolve(config_file=False)
        with Session(config) as session:
            return run_campaign(campaign, session).values()

    def test_serial_and_pooled_are_bit_identical(self, campaign):
        serial = self.serial_values(campaign)
        pooled_config = RunConfig.resolve(config_file=False, workers=2)
        with Session(pooled_config) as session:
            pooled = run_campaign(campaign, session)
        assert pooled.values() == serial

    def test_distrib_sharding_is_bit_identical(self, campaign, tmp_path):
        serial = self.serial_values(campaign)
        config = RunConfig.resolve(config_file=False,
                                   distrib_root=str(tmp_path / "fleet"))
        with Session(config) as session:
            distrib = run_campaign(campaign, session)
        assert distrib.values() == serial
        assert all(e.startswith("distrib[")
                   for e in distrib.summary()["executors"])

    def test_warm_cache_answers_a_rerun_from_disk(self, campaign, tmp_path):
        config = RunConfig.resolve(config_file=False, cache_mode="rw",
                                   cache_root=str(tmp_path / "cache"))
        with Session(config) as session:
            cold = run_campaign(campaign, session)
        with Session(config) as session:
            warm = run_campaign(campaign, session)
        assert warm.values() == cold.values()
        summary = warm.summary()
        assert summary["persistent_hits"] == campaign.point_count
        assert summary["persistent_misses"] == 0

    def test_signature_is_stable_across_executions(self, campaign):
        before = campaign.signature()
        self.serial_values(campaign)
        assert campaign.signature() == before


class TestRowCachePickle:
    """Regression: the scenario-row memo used to break executor payloads.

    A quantity closure can drag the module-level ``_ROWS`` memo into a
    pickled submission; its ``threading.Lock`` made that a ``TypeError``
    until ``__getstate__`` learned to ship the configuration only.
    """

    def test_row_cache_survives_a_pickle_round_trip(self):
        import pickle

        from repro.analysis.campaign.registry import _RowCache

        memo = _RowCache(max_entries=3)
        memo.get(("k",), lambda: {"v": 1.0})
        clone = pickle.loads(pickle.dumps(memo))
        # Configuration travels; per-process execution state does not.
        assert clone.max_entries == 3
        assert clone._entries == {}
        # The clone's lock is re-armed and functional.
        assert clone.get(("k",), lambda: {"v": 2.0}) == {"v": 2.0}

    def test_module_level_memo_is_picklable(self):
        import pickle

        from repro.analysis.campaign import registry

        assert pickle.loads(pickle.dumps(registry._ROWS)) is not None


# ---------------------------------------------------------------------------
# The fuzzer and its replayable corpus


class OverReportingCapacitor(Capacitor):
    """The deliberately broken model: its ledger invents 20% extra charge."""

    def stored_charge(self, time):
        return super().stored_charge(time) * 1.2


def _check_broken_charge_conservation(params):
    return charge_conservation_violations(
        float(params["capacitance"]), float(params["initial_voltage"]),
        [float(d) for d in params["draws"]],
        capacitor_factory=OverReportingCapacitor)


def broken_registry():
    """The default registry with the capacitor invariant checking the
    over-reporting model — the mutation the fuzzer must catch."""
    healthy = DEFAULT_INVARIANTS["charge_conservation"]
    table = dict(DEFAULT_INVARIANTS)
    table["charge_conservation"] = Invariant(
        name=healthy.name, description=healthy.description,
        draw=healthy.draw, check=_check_broken_charge_conservation,
        shrink_floors=healthy.shrink_floors)
    return table


class TestFuzzer:
    def test_healthy_models_survive_a_pinned_budget(self, tmp_path):
        report = fuzz(seed=20260808, budget=16, corpus_dir=tmp_path)
        assert report.evaluated + report.rejected == 16
        assert report.violation_count == 0
        assert list(tmp_path.glob("*.json")) == []

    def test_budget_and_names_are_validated(self, tmp_path):
        with pytest.raises(ConfigurationError, match="budget"):
            fuzz(seed=0, budget=0, corpus_dir=tmp_path)
        with pytest.raises(ConfigurationError, match="unknown invariants"):
            fuzz(seed=0, budget=4, corpus_dir=tmp_path, names=["nonsense"])

    def test_broken_model_is_caught_shrunk_and_replayable(self, tmp_path):
        report = fuzz(seed=1, budget=8, corpus_dir=tmp_path,
                      invariants=broken_registry(),
                      names=["charge_conservation"])
        assert report.violation_count >= 1
        case = report.cases[0]
        # shrinking drove the draw list down to a single element
        assert len(case.params["draws"]) == 1
        assert case.violations
        # the persisted case round-trips and replays byte-for-byte
        loaded = load_case(case.case_id, corpus_dir=tmp_path)
        assert loaded == case
        identical, violations = reproduce(loaded,
                                          invariants=broken_registry())
        assert identical
        assert tuple(violations) == case.violations

    def test_fixed_model_fails_to_reproduce_the_case(self, tmp_path):
        report = fuzz(seed=1, budget=8, corpus_dir=tmp_path,
                      invariants=broken_registry(),
                      names=["charge_conservation"])
        case = report.cases[0]
        identical, violations = reproduce(case)  # healthy registry
        assert not identical
        assert violations == []

    def test_every_index_is_independently_re_drawable(self, tmp_path):
        first = fuzz(seed=1, budget=8, corpus_dir=tmp_path / "a",
                     invariants=broken_registry(),
                     names=["charge_conservation"])
        again = fuzz(seed=1, budget=8, corpus_dir=tmp_path / "b",
                     invariants=broken_registry(),
                     names=["charge_conservation"])
        assert [c.as_dict() for c in first.cases] == \
            [c.as_dict() for c in again.cases]

    def test_unknown_case_id_is_a_clear_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no fuzz case"):
            load_case("deadbeef", corpus_dir=tmp_path)


# ---------------------------------------------------------------------------
# The CLI (python -m repro campaign ... / python -m repro run ...)


class TestCampaignCLI:
    def test_plan_only_reports_the_full_geometry(self, capsys):
        pytest.importorskip("tomllib")
        from repro.cli import main

        assert main(["campaign", "run", "--plan-only", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["points"] >= 5000
        assert payload["runs"] > 0
        assert len(payload["signature"]) == 64

    def test_smoke_run_executes_every_scenario(self, tmp_path, monkeypatch,
                                               capsys):
        pytest.importorskip("tomllib")
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["campaign", "run", "--smoke", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["evaluated_points"] == summary["points"] > 0
        assert summary["executors"]

    def test_list_names_points_and_invariants(self, capsys):
        from repro.cli import main

        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        assert "gate_metrics" in out
        assert "charge_conservation" in out

    def test_unknown_campaign_is_one_error_line(self, capsys):
        from repro.cli import main

        assert main(["campaign", "run", "--campaign", "nonsense"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_fuzz_and_repro_round_trip(self, tmp_path, capsys):
        from repro.analysis.campaign.cli import main

        code = main(["fuzz", "--budget", "6", "--seed", "1",
                     "--corpus", str(tmp_path)],
                    invariants=broken_registry())
        assert code == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out
        case_id = sorted(p.stem for p in tmp_path.glob("*.json"))[0]
        assert main(["repro", case_id, "--corpus", str(tmp_path)],
                    invariants=broken_registry()) == 0
        assert "reproduced byte-for-byte" in capsys.readouterr().out
        # against the healthy registry the case must NOT reproduce
        assert main(["repro", case_id, "--corpus", str(tmp_path)]) == 1
        assert "DID NOT reproduce" in capsys.readouterr().out

    def test_repro_unknown_case_exits_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["campaign", "repro", "deadbeef",
                     "--corpus", str(tmp_path)]) == 2
        assert capsys.readouterr().err.startswith("error:")

    @pytest.mark.parametrize("spec", [
        "no-colon-here",
        "definitely_missing_module:factory",
        "repro.analysis.distrib:no_such_factory",
    ])
    def test_malformed_plan_spec_is_one_error_line(self, spec, capsys):
        from repro.cli import main

        assert main(["run", "--plan", spec]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert spec.split(":")[0] in err
        assert "Traceback" not in err
