"""Observability (:mod:`repro.analysis.obs`): trajectory, gate, dashboard.

The honest-keeping contract, pinned in three pieces: (1) the perf
trajectory round-trips pytest-benchmark snapshots into the tracked
``BENCH_history.jsonl`` and computes trailing-median baselines; (2) the
regression gate passes improvements, fails >20% slowdowns, honours the
``--allow`` recalibration escape hatch, and never fails a benchmark
that has no baseline yet; (3) the dashboard renders all five feed
sections — tenants, admission, fleet, cache, trajectory — from canned
JSON, from a live ``GET /v1/dashboard`` on the experiment server, and
from the standalone fleet-only server.
"""

import json
from urllib.request import urlopen

import pytest

from repro.analysis.obs import main as obs_main
from repro.analysis.obs.dashboard import (
    DashboardServer,
    collect_feeds,
    render_dashboard,
    sparkline,
)
from repro.analysis.obs.trajectory import (
    TrajectoryPoint,
    append_history,
    baseline_for,
    check_regressions,
    ingest_report,
    load_history,
    main_append,
    main_check,
)
from repro.analysis.serve import ExperimentServer, ExperimentService
from repro.analysis.session import RunConfig

#: Every feed section the dashboard must always render.
SECTIONS = ("tenants", "admission", "fleet", "cache", "trajectory")


def bench_report(median_s, name="test_hot_path", extra=None):
    """A minimal pytest-benchmark JSON document with one benchmark."""
    return {"benchmarks": [{"name": name, "stats": {"median": median_s},
                            "extra_info": dict(extra or {})}]}


def history_of(*medians, name="test_hot_path"):
    """A history list with one entry per median, in append order."""
    return [TrajectoryPoint(benchmark=name, median_s=median, sha=f"c{i}",
                            date="2026-08-08")
            for i, median in enumerate(medians)]


def canned_status():
    """A GET /v1/status payload shaped like ExperimentService.status()."""
    return {
        "uptime_s": 12.5, "dispatchers": 2,
        "scheduler": {"scheduler": "vtc", "depth": 3, "queued_cost": 24.0,
                      "queued_by_tenant": {"alice": 2, "bob": 1},
                      "virtual_time": {"alice": 16.0, "bob": 8.0},
                      "dispatched": {"alice": 4, "bob": 2}},
        "admission": {"max_depth": 64, "max_cost": 100000.0,
                      "admitted": 9, "rejected": 1,
                      "drain_rate_cost_per_s": 42.0},
        "plans": {"queued": 3, "running": 1, "done": 5, "failed": 0},
        "tenants": {"alice": {"submitted": 6, "completed": 4, "failed": 0},
                    "bob": {"submitted": 3, "completed": 1, "failed": 0}},
        "technology_cache": {"entries": 7, "hits": 30, "misses": 7},
        "cache": {"root": "/tmp/cache", "mode": "rw", "current_salt": "s1",
                  "salts": {"s1": {"results": 11, "result_bytes": 2048}},
                  "session": {"hits": 8, "misses": 3, "writes": 3}},
        "distrib": {"jobs": 2, "queue_depth": 5, "leased": 1,
                    "oldest_unclaimed_age_s": 7.5},
    }


# ---------------------------------------------------------------------------
# Trajectory store


class TestTrajectory:
    def test_ingest_reads_median_and_extra_info(self):
        points = ingest_report(
            bench_report(0.25, extra={"speedup_vs_per_point": 55.0}),
            sha="abc1234", date="2026-08-08")
        assert len(points) == 1
        point = points[0]
        assert point.benchmark == "test_hot_path"
        assert point.median_s == 0.25
        assert point.sha == "abc1234"
        assert point.extra == {"speedup_vs_per_point": 55.0}

    def test_ingest_skips_entries_without_a_median(self):
        report = {"benchmarks": [{"name": "test_a", "stats": {}},
                                 {"stats": {"median": 1.0}},
                                 {"name": "test_ok",
                                  "stats": {"median": 0.5}}]}
        assert [p.benchmark for p in ingest_report(report, sha="s")] \
            == ["test_ok"]

    def test_append_then_load_round_trips(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        written = append_history(path, history_of(0.1, 0.2))
        assert written == 2
        loaded = load_history(path)
        assert [point.median_s for point in loaded] == [0.1, 0.2]
        # Every line is an independent JSON object (merge-friendly).
        lines = path.read_text().splitlines()
        assert all(isinstance(json.loads(line), dict) for line in lines)

    def test_load_skips_torn_lines_and_missing_file(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        assert load_history(path) == []
        append_history(path, history_of(0.1))
        path.write_text(path.read_text() + "{torn...\n\n[1,2]\n")
        assert [point.median_s for point in load_history(path)] == [0.1]

    def test_baseline_is_trailing_median(self):
        history = history_of(1.0, 1.0, 0.10, 0.12, 0.08, 0.11, 0.09)
        # Trailing 5 entries: the old 1.0s outliers age out.
        assert baseline_for(history, "test_hot_path", trailing=5) == 0.10
        assert baseline_for(history, "test_other") is None


# ---------------------------------------------------------------------------
# Regression gate


class TestRegressionGate:
    def test_improvement_passes(self):
        regressions, unbaselined = check_regressions(
            history_of(0.10, 0.11, 0.10),
            ingest_report(bench_report(0.08), sha="s"))
        assert regressions == [] and unbaselined == []

    def test_within_threshold_passes(self):
        regressions, _ = check_regressions(
            history_of(0.10), ingest_report(bench_report(0.119), sha="s"))
        assert regressions == []

    def test_over_threshold_fails(self):
        regressions, _ = check_regressions(
            history_of(0.10), ingest_report(bench_report(0.15), sha="s"))
        assert len(regressions) == 1
        reg = regressions[0]
        assert not reg.allowed
        assert reg.baseline_s == 0.10 and reg.new_s == 0.15
        assert reg.ratio == pytest.approx(1.5)

    def test_allow_marks_the_regression_waived(self):
        regressions, _ = check_regressions(
            history_of(0.10), ingest_report(bench_report(0.15), sha="s"),
            allow=["test_hot_path"])
        assert len(regressions) == 1 and regressions[0].allowed

    def test_missing_baseline_is_not_an_error(self):
        regressions, unbaselined = check_regressions(
            history_of(0.10), ingest_report(
                bench_report(9.9, name="test_brand_new"), sha="s"))
        assert regressions == []
        assert unbaselined == ["test_brand_new"]

    def test_cli_exit_codes(self, tmp_path, capsys):
        history = tmp_path / "BENCH_history.jsonl"
        report = tmp_path / "BENCH_ci.json"
        report.write_text(json.dumps(bench_report(0.10)))
        # Seed the trajectory through the append CLI.
        assert main_append([str(report), "--history", str(history),
                            "--sha", "c0", "--date", "2026-08-08"]) == 0
        # Same timing: gate passes.
        assert main_check([str(report), "--history", str(history)]) == 0
        # A 50% slowdown: gate fails...
        report.write_text(json.dumps(bench_report(0.15)))
        assert main_check([str(report), "--history", str(history)]) == 1
        # ...unless deliberately allowed.
        assert main_check([str(report), "--history", str(history),
                           "--allow", "test_hot_path"]) == 0
        # A benchmark with no baseline never fails the gate.
        report.write_text(json.dumps(bench_report(9.9, name="test_new")))
        assert main_check([str(report), "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "NEW" in out and "ALLOWED" in out and "FAIL" in out

    def test_cli_reachable_through_repro_obs(self, tmp_path):
        history = tmp_path / "h.jsonl"
        report = tmp_path / "r.json"
        report.write_text(json.dumps(bench_report(0.10)))
        assert obs_main(["append", str(report), "--history", str(history),
                         "--sha", "c0"]) == 0
        assert obs_main(["check", str(report), "--history",
                         str(history)]) == 0
        assert obs_main(["no-such-verb"]) == 2


# ---------------------------------------------------------------------------
# Dashboard rendering


class TestDashboardRender:
    def test_renders_all_five_sections_from_canned_json(self):
        page = render_dashboard(
            service=canned_status(),
            trajectory=history_of(0.10, 0.11, 0.09))
        for section in SECTIONS:
            assert f'id="{section}"' in page
        # Tenant/queue/virtual-time state lands in the page.
        assert "alice" in page and "bob" in page
        # Admission gate counters and drain rate.
        assert "drain rate" in page and "42" in page
        # Fleet queue depth and oldest-unclaimed age.
        assert "7.5s" in page
        # Cache hit rate (8 of 11).
        assert "73%" in page
        # Trajectory sparkline.
        assert '<svg class="spark"' in page and "test_hot_path" in page

    def test_sections_survive_missing_feeds(self):
        page = render_dashboard()
        for section in SECTIONS:
            assert f'id="{section}"' in page
        assert "no service feed" in page
        assert "no distrib feed" in page

    def test_feed_errors_render_as_unavailable(self):
        page = render_dashboard(fleet={"error": "root gone"},
                                cache={"error": "store gone"})
        assert "fleet feed error" in page and "cache feed error" in page

    def test_html_is_escaped(self):
        status = canned_status()
        status["tenants"]["<script>alert(1)</script>"] = {
            "submitted": 1, "completed": 0, "failed": 0}
        page = render_dashboard(service=status)
        assert "<script>alert(1)</script>" not in page
        assert "&lt;script&gt;" in page

    def test_sparkline_handles_degenerate_series(self):
        assert "svg" in sparkline([1.0])
        assert "svg" in sparkline([2.0, 2.0, 2.0])
        assert "no data" in sparkline([])


# ---------------------------------------------------------------------------
# Live servers


def hermetic_config():
    """No repro.toml / REPRO_* leakage into service-owned sessions."""
    return RunConfig.resolve(environ={}, config_file=False)


class TestDashboardServers:
    def test_experiment_server_serves_v1_dashboard(self, tmp_path):
        history = tmp_path / "BENCH_history.jsonl"
        append_history(history, history_of(0.10, 0.12))
        service = ExperimentService(hermetic_config(), start=False)
        with service, ExperimentServer(service, port=0,
                                       history_path=str(history)) as server:
            with urlopen(f"{server.url}/v1/dashboard") as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith(
                    "text/html")
                page = response.read().decode()
        for section in SECTIONS:
            assert f'id="{section}"' in page
        assert "test_hot_path" in page and '<svg class="spark"' in page

    def test_v1_dashboard_without_history_still_renders(self):
        service = ExperimentService(hermetic_config(), start=False)
        with service, ExperimentServer(service, port=0) as server:
            with urlopen(f"{server.url}/v1/dashboard") as response:
                page = response.read().decode()
        for section in SECTIONS:
            assert f'id="{section}"' in page
        assert "no committed trajectory" in page

    def test_standalone_fleet_dashboard(self, tmp_path):
        history = tmp_path / "BENCH_history.jsonl"
        append_history(history, history_of(0.10))

        def collect():
            return collect_feeds(root=str(tmp_path / "fleet"),
                                 history=str(history))

        with DashboardServer(collect, port=0) as server:
            with urlopen(f"{server.url}/") as response:
                assert response.status == 200
                page = response.read().decode()
            with urlopen(f"{server.url}/v1/dashboard") as response:
                assert response.status == 200
        for section in SECTIONS:
            assert f'id="{section}"' in page
        # An empty fleet root is an empty queue, not an error.
        assert "queue depth" in page

    def test_collect_feeds_swallows_feed_errors(self, tmp_path):
        feeds = collect_feeds(
            service_url="http://127.0.0.1:9",   # nothing listens here
            history=str(tmp_path / "absent.jsonl"))
        assert "error" in feeds["service"]
        assert feeds["trajectory"] is None
