"""Tests for power gating (strategy 1) versus voltage scaling (strategy 2)."""

import pytest

from repro.core.design_styles import BundledDataDesign, SpeedIndependentDesign
from repro.core.gating import (
    GatingParameters,
    PowerGatedDesign,
    voltage_scaled_activity_per_quantum,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def gated(tech):
    return PowerGatedDesign(BundledDataDesign(tech), nominal_vdd=1.0)


@pytest.fixture(scope="module")
def self_timed(tech):
    return SpeedIndependentDesign(tech)


class TestGatingParameters:
    def test_wakeup_energy_scales_with_vdd_squared(self):
        gating = GatingParameters(domain_capacitance=10e-12)
        assert gating.wakeup_energy(1.0) == pytest.approx(
            4 * gating.wakeup_energy(0.5))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GatingParameters(residual_leakage_fraction=1.5)
        with pytest.raises(ConfigurationError):
            GatingParameters(domain_capacitance=0.0)


class TestPowerGatedDesign:
    def test_gated_domain_needs_its_nominal_rail(self, gated):
        assert gated.is_functional(1.0)
        assert not gated.is_functional(0.5)
        assert gated.minimum_operating_voltage() == pytest.approx(1.0)

    def test_sleep_leakage_is_a_small_fraction_of_awake_leakage(self, gated):
        assert gated.leakage_power(1.0) == pytest.approx(
            0.05 * gated.awake_leakage_power())
        assert gated.leakage_power(1.0) < gated.awake_leakage_power()

    def test_wakeup_latency_eats_into_short_bursts(self, gated):
        latency = gated.gating.wakeup_latency
        assert gated.operations_per_burst(latency * 0.5) == 0.0
        assert gated.operations_per_burst(latency * 10) > 0.0

    def test_burst_energy_includes_wakeup_cost(self, gated):
        short = gated.burst_energy(gated.gating.wakeup_latency)
        assert short >= gated.gating.wakeup_energy(1.0)
        assert gated.burst_energy(1e-3) > short

    def test_must_be_functional_at_nominal(self, tech):
        with pytest.raises(ConfigurationError):
            PowerGatedDesign(BundledDataDesign(tech), nominal_vdd=0.2)

    def test_activity_grows_with_the_quantum(self, gated):
        period = 1e-3
        small = gated.activity_per_quantum(1e-10, period)
        large = gated.activity_per_quantum(1e-8, period)
        assert large > small >= 0.0

    def test_tiny_quantum_is_swallowed_by_overheads(self, gated):
        # A quantum smaller than the wake-up energy buys nothing.
        tiny = 0.5 * gated.gating.wakeup_energy(1.0)
        assert gated.activity_per_quantum(tiny, period=1e-3) == 0.0


class TestStrategyComparison:
    """The paper's Section II-B trade-off, quantified."""

    PERIOD = 1e-4

    def test_voltage_scaling_wins_for_small_quanta(self, gated, self_timed):
        # Small scavenged quanta: strategy 2 (self-timed, variable voltage)
        # produces far more activity because strategy 1 first pays its
        # wake-up and sleep-leakage tax at the nominal voltage.
        quantum = 3 * gated.gating.wakeup_energy(1.0)
        gated_ops = gated.activity_per_quantum(quantum, self.PERIOD)
        scaled_ops = voltage_scaled_activity_per_quantum(self_timed, quantum,
                                                         self.PERIOD)
        assert scaled_ops > 2.0 * gated_ops

    def test_gating_competitive_for_large_quanta(self, gated, self_timed):
        # Large quanta: running the efficient fabric at nominal voltage is at
        # least in the same league (within ~4x) as voltage scaling.
        quantum = 5e-9
        gated_ops = gated.activity_per_quantum(quantum, self.PERIOD)
        scaled_ops = voltage_scaled_activity_per_quantum(self_timed, quantum,
                                                         self.PERIOD)
        assert gated_ops > 0
        assert gated_ops > 0.25 * scaled_ops

    def test_both_strategies_respect_the_energy_budget(self, gated, self_timed):
        quantum = 1e-9
        gated_ops = gated.activity_per_quantum(quantum, self.PERIOD)
        assert gated_ops * gated.energy_per_operation(1.0) <= quantum
        scaled_ops = voltage_scaled_activity_per_quantum(self_timed, quantum,
                                                         self.PERIOD)
        floor = self_timed.minimum_operating_voltage()
        assert scaled_ops * self_timed.energy_per_operation(floor) <= quantum * 1.01

    def test_input_validation(self, gated, self_timed):
        with pytest.raises(ConfigurationError):
            gated.activity_per_quantum(-1.0, 1e-3)
        with pytest.raises(ConfigurationError):
            gated.activity_per_quantum(1e-9, 0.0)
        with pytest.raises(ConfigurationError):
            voltage_scaled_activity_per_quantum(self_timed, 1e-9, 1e-3,
                                                vdd_grid_steps=1)
