"""Speed-independent SRAM (paper Section III-A, Figs. 5–7).

SRAM is "a fundamental component in designing any computational load for an
EH-based system" and the paper's flagship design example: a 1-kbit (64×16)
6T-cell array whose timing is not bundled by worst-case delay lines but
*completion-detected* — the controller observes the bit-line transients
themselves, so the memory keeps working (just more slowly) across the whole
0.2–1 V supply range, with a minimum energy per operation around 0.4 V.

Package layout mirrors the structures the paper names:

* :mod:`repro.sram.cell` — 6T and 8T storage cells with retention limits;
* :mod:`repro.sram.bitline` — bit-line delay/energy model, including the
  calibration against the paper's Fig. 5 anchor points (SRAM read = 50
  inverter delays at 1 V, 158 at 190 mV);
* :mod:`repro.sram.decoder`, :mod:`repro.sram.precharge`,
  :mod:`repro.sram.write_driver`, :mod:`repro.sram.sense` — peripheral blocks;
* :mod:`repro.sram.completion` — column completion detection (with the
  segmentation option the paper suggests for sub-0.3 V operation);
* :mod:`repro.sram.controller` — the handshake-based controller of Fig. 6,
  including the read-before-write trick that makes write completion
  detectable;
* :mod:`repro.sram.sram` — the assembled speed-independent SRAM plus a
  bundled-data baseline for comparison;
* :mod:`repro.sram.bundling` — the "smart latency bundling" replica-column
  variant of reference [8].
"""

from repro.sram.cell import SRAMCell, CellType
from repro.sram.bitline import BitlineModel, calibrate_bitline_to_fig5
from repro.sram.decoder import AddressDecoder
from repro.sram.precharge import PrechargeUnit
from repro.sram.write_driver import WriteDriver
from repro.sram.sense import ReadBuffer
from repro.sram.completion import ColumnCompletionDetector
from repro.sram.controller import SISRAMController, SRAMOperation, OperationRecord
from repro.sram.sram import SpeedIndependentSRAM, BundledSRAM, SRAMConfig
from repro.sram.bundling import ReplicaColumnBundling

__all__ = [
    "SRAMCell",
    "CellType",
    "BitlineModel",
    "calibrate_bitline_to_fig5",
    "AddressDecoder",
    "PrechargeUnit",
    "WriteDriver",
    "ReadBuffer",
    "ColumnCompletionDetector",
    "SISRAMController",
    "SRAMOperation",
    "OperationRecord",
    "SpeedIndependentSRAM",
    "BundledSRAM",
    "SRAMConfig",
    "ReplicaColumnBundling",
]
