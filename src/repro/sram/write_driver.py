"""Write driver model.

The write driver pulls one bit line fully low (and keeps the complement
high) to overpower the selected cell.  In the SI SRAM its completion is made
observable by the paper's read-before-write trick — see
:mod:`repro.sram.controller`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.models.gate import GateModel, GateType
from repro.models.technology import Technology
from repro.sram.bitline import BitlineModel
from repro.sram.cell import SRAMCell


@dataclass
class WriteDriver:
    """Full-swing bit-line driver for one column.

    Parameters
    ----------
    technology:
        Process parameters.
    bitline:
        The column's bit-line model.
    drive_strength:
        Driver sizing relative to minimum (write drivers are big).
    """

    technology: Technology
    bitline: BitlineModel
    drive_strength: float = 8.0

    def __post_init__(self) -> None:
        if self.drive_strength <= 0:
            raise ConfigurationError("drive_strength must be positive")
        self._driver = GateModel(
            technology=self.technology,
            gate_type=GateType.WRITE_DRIVER,
            drive_strength=self.drive_strength,
        )

    # ------------------------------------------------------------------

    def drive_delay(self, vdd: float) -> float:
        """Time (s) to slew the bit line to its written value."""
        return self._driver.delay(
            vdd, external_load=self.bitline.bitline_capacitance
        )

    def write_delay(self, vdd: float, cell: SRAMCell) -> float:
        """Complete write latency (s): drive the line, then flip the cell."""
        return self.drive_delay(vdd) + cell.write_time(vdd)

    def energy(self, vdd: float) -> float:
        """Energy (J) of one column write (full bit-line swing + driver)."""
        return self.bitline.write_energy(vdd)

    def leakage_power(self, vdd: float) -> float:
        """Static power (W) of the (idle) write driver."""
        return self._driver.leakage_power(vdd)
