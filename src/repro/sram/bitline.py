"""Bit-line delay and energy model, calibrated to the paper's Fig. 5.

Fig. 5 of the paper quantifies the core problem with conventional (matched
delay) SRAM timing under voltage scaling: expressed in inverter delays, an
SRAM read costs ~50 inverters at Vdd = 1 V but ~158 inverters at 190 mV — the
memory slows down three times faster than the logic that would be used to
time it.  The physical origin is that the cell's read path (access transistor
in series with the pull-down, discharging a heavily loaded bit line) has a
higher effective threshold and a long RC load, so its current collapses
earlier than a logic gate's as Vdd approaches the threshold.

:class:`BitlineModel` is a first-order model of that mechanism: constant-
current discharge of the bit-line capacitance by the cell's read current,
with a configurable effective threshold penalty.  Because the first-order
model cannot capture every second-order contribution of the real 90 nm
design, :func:`calibrate_bitline_to_fig5` solves for the effective penalty
and bit-line capacitance that land exactly on the paper's two anchor points;
the calibrated model then *predicts* the whole curve in between (and below),
which is what the FIG5 benchmark regenerates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError, ModelError
from repro.models.delay import InverterChain
from repro.models.gate import GateModel, GateType
from repro.models.mosfet import MosfetModel
from repro.models.technology import Technology
from repro.sram.cell import CellType, SRAMCell


@dataclass
class BitlineModel:
    """Delay/energy model of one SRAM column's bit line.

    Parameters
    ----------
    technology:
        Process parameters.
    rows:
        Number of cells hanging on the bit line (64 for the paper's array).
    swing_fraction:
        Fraction of Vdd the bit line must move before the sense/completion
        logic can react (differential sensing needs only a partial swing).
    read_vth_penalty:
        Effective extra threshold (V) of the cell read path relative to a
        logic inverter.  Defaults to the 6T cell's physical penalty; the
        Fig. 5 calibration replaces it with the fitted effective value.
    bitline_capacitance:
        Total bit-line capacitance in farads; ``None`` derives it from the
        per-row wire and drain capacitance.
    fixed_overhead_inverters:
        Read-path overhead that scales like ordinary logic (decoder, word
        line driver, sense buffering), expressed in inverter delays.
    """

    technology: Technology
    rows: int = 64
    swing_fraction: float = 0.15
    read_vth_penalty: Optional[float] = None
    bitline_capacitance: Optional[float] = None
    fixed_overhead_inverters: float = 10.0

    def __post_init__(self) -> None:
        if self.rows < 1:
            raise ConfigurationError("rows must be >= 1")
        if not (0.0 < self.swing_fraction <= 1.0):
            raise ConfigurationError("swing_fraction must lie in (0, 1]")
        if self.fixed_overhead_inverters < 0:
            raise ConfigurationError("fixed_overhead_inverters must be >= 0")
        if self.read_vth_penalty is None:
            self.read_vth_penalty = CellType.SIX_T.read_vth_penalty
        if self.bitline_capacitance is None:
            per_row = (2.0 * self.technology.wire_cap_per_um  # ~2 µm pitch of wire
                       + 0.5 * self.technology.unit_inverter_output_cap)  # drain
            self.bitline_capacitance = self.rows * per_row
        if self.bitline_capacitance <= 0:
            raise ConfigurationError("bitline_capacitance must be positive")
        self._cell_device = MosfetModel(
            technology=self.technology,
            width_um=self.technology.min_width_um,
            vth_offset=self.read_vth_penalty,
        )
        self._ruler = InverterChain(technology=self.technology, stages=1)

    # ------------------------------------------------------------------
    # Delay
    # ------------------------------------------------------------------

    def discharge_delay(self, vdd: float) -> float:
        """Time (s) for the selected cell to develop the required swing."""
        swing = self.swing_fraction * vdd
        current = self._cell_device.on_current(vdd)
        if current <= 0:
            raise ModelError(f"cell read current is zero at vdd={vdd}")
        return self.bitline_capacitance * swing / current

    def read_delay(self, vdd: float) -> float:
        """Complete read latency (s): logic overhead + bit-line discharge."""
        overhead = self.fixed_overhead_inverters * self._ruler.stage_delay(vdd)
        return overhead + self.discharge_delay(vdd)

    def read_delay_in_inverters(self, vdd: float) -> float:
        """Read latency expressed in inverter delays — the y-axis of Fig. 5."""
        return self.read_delay(vdd) / self._ruler.stage_delay(vdd)

    def mismatch_ratio(self, vdd: float, reference_vdd: Optional[float] = None) -> float:
        """How much worse the inverter-delay count is at *vdd* vs the reference."""
        if reference_vdd is None:
            reference_vdd = self.technology.vdd_nominal
        return (self.read_delay_in_inverters(vdd)
                / self.read_delay_in_inverters(reference_vdd))

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------

    def precharge_energy(self, vdd: float) -> float:
        """Energy (J) to precharge both bit lines back to Vdd after an access."""
        swing = self.swing_fraction * vdd
        return 2.0 * self.bitline_capacitance * swing * vdd

    def read_energy(self, vdd: float) -> float:
        """Energy (J) of one column read: discharge + sense + restore."""
        sense = GateModel(technology=self.technology, gate_type=GateType.SENSE_AMP)
        return self.precharge_energy(vdd) + sense.transition_energy(vdd)

    def write_energy(self, vdd: float) -> float:
        """Energy (J) of one column write: full-swing drive of both bit lines."""
        driver = GateModel(technology=self.technology,
                           gate_type=GateType.WRITE_DRIVER)
        return (2.0 * self.bitline_capacitance * vdd * vdd
                + driver.transition_energy(vdd))

    def leakage_power(self, vdd: float, cell: Optional[SRAMCell] = None) -> float:
        """Static power (W) of the whole column (all cells leak)."""
        if cell is None:
            cell = SRAMCell(self.technology)
        return self.rows * cell.leakage_power(vdd)


def calibrate_bitline_to_fig5(
    technology: Technology,
    anchor_high: Tuple[float, float] = (1.0, 50.0),
    anchor_low: Tuple[float, float] = (0.19, 158.0),
    rows: int = 64,
    fixed_overhead_inverters: float = 10.0,
    swing_fraction: float = 0.15,
) -> BitlineModel:
    """Fit a :class:`BitlineModel` to the two Fig. 5 anchor points.

    The fit has two degrees of freedom:

    * the effective read-path threshold penalty, which controls the *shape*
      (how fast the inverter-delay count grows as Vdd falls), solved by
      bisection;
    * the bit-line capacitance, which controls the *level* (the count at the
      high-voltage anchor), solved in closed form once the shape is fixed.

    Returns the calibrated model; the FIG5 benchmark asserts that it
    reproduces both anchors to within a few percent and that the curve is
    monotonically increasing as Vdd falls.
    """
    vdd_high, target_high = anchor_high
    vdd_low, target_low = anchor_low
    if vdd_low >= vdd_high:
        raise ConfigurationError("anchor_low must be at a lower voltage")
    if target_low <= target_high:
        raise ConfigurationError("the low-voltage anchor must be slower")
    if target_high <= fixed_overhead_inverters:
        raise ConfigurationError(
            "fixed overhead must be smaller than the high-voltage anchor"
        )

    ruler = InverterChain(technology=technology, stages=1)
    t_inv_high = ruler.stage_delay(vdd_high)
    t_inv_low = ruler.stage_delay(vdd_low)
    bl_high = target_high - fixed_overhead_inverters
    bl_low = target_low - fixed_overhead_inverters
    target_shape = (bl_low * t_inv_low) / (bl_high * t_inv_high)

    def shape(penalty: float) -> float:
        device = MosfetModel(technology=technology,
                             width_um=technology.min_width_um,
                             vth_offset=penalty)
        # Discharge time per unit capacitance, absolute seconds.
        t_low = swing_fraction * vdd_low / device.on_current(vdd_low)
        t_high = swing_fraction * vdd_high / device.on_current(vdd_high)
        return t_low / t_high

    lo, hi = 0.0, 0.35
    if not (shape(lo) <= target_shape <= shape(hi)):
        raise ModelError(
            "Fig. 5 anchors are outside the range the bit-line model can fit"
        )
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if shape(mid) < target_shape:
            lo = mid
        else:
            hi = mid
    penalty = 0.5 * (lo + hi)

    device = MosfetModel(technology=technology,
                         width_um=technology.min_width_um,
                         vth_offset=penalty)
    per_farad_high = swing_fraction * vdd_high / device.on_current(vdd_high)
    capacitance = bl_high * t_inv_high / per_farad_high

    return BitlineModel(
        technology=technology,
        rows=rows,
        swing_fraction=swing_fraction,
        read_vth_penalty=penalty,
        bitline_capacitance=capacitance,
        fixed_overhead_inverters=fixed_overhead_inverters,
    )
