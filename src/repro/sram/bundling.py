"""Smart latency bundling with a replica column (paper reference [8]).

Between the fully completion-detected SI SRAM (every column observed) and
the blind matched-delay SRAM sits the design of reference [8]: *one* column
keeps full completion detection and acts as a live replica whose completion
event times the other columns.  It tracks voltage (unlike a fixed delay
line) because the replica is made of the same cells and bit lines, but it
re-introduces a matching assumption *between columns*, which process
variation can break.

:class:`ReplicaColumnBundling` models that trade-off: latency and energy sit
between the two extremes, and a mismatch budget determines how much margin
the replica needs over the nominal column and therefore where (if anywhere)
it fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.models.technology import Technology
from repro.models.variation import ProcessVariation
from repro.sram.bitline import BitlineModel
from repro.sram.completion import ColumnCompletionDetector
from repro.sram.sram import SpeedIndependentSRAM, SRAMConfig


@dataclass
class BundlingReport:
    """Outcome of a replica-vs-array mismatch analysis at one voltage."""

    vdd: float
    replica_delay: float
    worst_column_delay: float
    margin: float
    failure_probability: float


class ReplicaColumnBundling:
    """Replica-column ("smart latency bundling") SRAM timing model.

    Parameters
    ----------
    technology:
        Process parameters.
    config:
        Array configuration (the replica is one extra column).
    replica_margin:
        Deliberate slow-down applied to the replica column (extra load), as a
        multiplicative factor; the designer's knob against mismatch.
    sigma_delay:
        Relative standard deviation of column-to-column delay mismatch.
    seed:
        Seed for the Monte-Carlo failure estimate.
    """

    def __init__(self, technology: Technology,
                 config: Optional[SRAMConfig] = None,
                 replica_margin: float = 1.2,
                 sigma_delay: float = 0.08,
                 seed: Optional[int] = None) -> None:
        if replica_margin < 1.0:
            raise ConfigurationError("replica_margin must be >= 1")
        if sigma_delay < 0:
            raise ConfigurationError("sigma_delay must be non-negative")
        self.technology = technology
        self.config = config or SRAMConfig()
        self.replica_margin = replica_margin
        self.sigma_delay = sigma_delay
        self._rng = np.random.default_rng(seed)
        self._si = SpeedIndependentSRAM(technology, self.config)
        self.bitline: BitlineModel = self._si.bitline
        self.completion = ColumnCompletionDetector(
            technology=technology, columns=1,
        )

    # ------------------------------------------------------------------

    def replica_delay(self, vdd: float) -> float:
        """Delay (s) of the replica column's completion event at *vdd*."""
        return (self.bitline.discharge_delay(vdd) * self.replica_margin
                + self.completion.detection_delay(vdd))

    def column_delay(self, vdd: float) -> float:
        """Nominal delay (s) of an ordinary (unobserved) column at *vdd*."""
        return self.bitline.discharge_delay(vdd)

    def timing_margin(self, vdd: float) -> float:
        """Replica delay over nominal column delay."""
        return self.replica_delay(vdd) / self.column_delay(vdd)

    def read_latency(self, vdd: float) -> float:
        """Read latency (s): replica-timed, so it tracks voltage."""
        return (self._si.decoder.delay(vdd)
                + self._si.precharge.delay(vdd)
                + self.replica_delay(vdd)
                + self._si.read_buffer.delay(vdd)
                + self._si.precharge.delay(vdd))

    def read_energy(self, vdd: float) -> float:
        """Energy (J) of one read — only one column pays for completion gates."""
        cols = self.config.columns
        dynamic = (self._si.decoder.energy(vdd)
                   + cols * (1.5 * self._si.precharge.energy(vdd)
                             + self.bitline.read_energy(vdd)
                             + self._si.read_buffer.energy(vdd))
                   + self.completion.cycle_energy(vdd))
        leak = (self._si.array_leakage_power(vdd)
                + self._si.peripheral_leakage_power(vdd)
                + self.completion.leakage_power(vdd))
        return dynamic + leak * self.read_latency(vdd)

    # ------------------------------------------------------------------

    def failure_probability(self, vdd: float, samples: int = 2000) -> float:
        """Probability that some column is slower than the replica at *vdd*.

        Monte-Carlo over log-normal column mismatch: the probability that the
        *maximum* of ``columns`` mismatched delays exceeds the replica delay.
        This is the quantity reference [8]'s failure analysis studies.
        """
        if samples < 1:
            raise ConfigurationError("samples must be >= 1")
        replica = self.replica_delay(vdd)
        nominal = self.column_delay(vdd)
        # Mismatch grows as Vdd approaches threshold (delay sensitivity to
        # Vth rises steeply), modelled by inflating sigma below 2*Vth.
        sensitivity = 1.0
        if vdd < 2.0 * self.technology.vth:
            sensitivity = 1.0 + 3.0 * (2.0 * self.technology.vth - vdd)
        sigma = self.sigma_delay * sensitivity
        draws = self._rng.lognormal(mean=0.0, sigma=sigma,
                                    size=(samples, self.config.columns))
        worst = (draws * nominal).max(axis=1)
        return float(np.mean(worst > replica))

    def analyse(self, vdd: float, samples: int = 2000) -> BundlingReport:
        """Full mismatch analysis at one voltage."""
        nominal = self.column_delay(vdd)
        sensitivity = 1.0
        if vdd < 2.0 * self.technology.vth:
            sensitivity = 1.0 + 3.0 * (2.0 * self.technology.vth - vdd)
        worst = nominal * float(np.exp(2.0 * self.sigma_delay * sensitivity))
        return BundlingReport(
            vdd=vdd,
            replica_delay=self.replica_delay(vdd),
            worst_column_delay=worst,
            margin=self.timing_margin(vdd),
            failure_probability=self.failure_probability(vdd, samples=samples),
        )
