"""Read buffer / sensing model.

The SI SRAM of the paper avoids clocked sense amplifiers (which would need a
timing reference — the very thing being eliminated) and instead uses simple
read buffers whose output transition *is* the completion signal for the read.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.models.gate import GateModel, GateType
from repro.models.technology import Technology
from repro.sram.bitline import BitlineModel


@dataclass
class ReadBuffer:
    """Bit-line read buffer for one column.

    Parameters
    ----------
    technology:
        Process parameters.
    bitline:
        The column's bit-line model.
    dual_rail_output:
        When ``True`` (the SI design) the buffer produces a dual-rail output
        pair so downstream completion detection needs no timing assumption;
        the bundled-data baseline uses a single-rail buffer.
    """

    technology: Technology
    bitline: BitlineModel
    dual_rail_output: bool = True

    def __post_init__(self) -> None:
        self._sense = GateModel(technology=self.technology,
                                gate_type=GateType.SENSE_AMP)
        self._buffer = GateModel(technology=self.technology,
                                 gate_type=GateType.BUFFER)

    # ------------------------------------------------------------------

    @property
    def rails_per_bit(self) -> int:
        """Output rails per data bit (2 for dual-rail, 1 for single-rail)."""
        return 2 if self.dual_rail_output else 1

    def delay(self, vdd: float) -> float:
        """Sensing latency (s) once the bit-line swing has developed."""
        base = self._sense.delay(vdd) + self._buffer.delay(vdd)
        if self.dual_rail_output:
            base += self._buffer.delay(vdd)  # complementary rail generation
        return base

    def energy(self, vdd: float) -> float:
        """Energy (J) of one sensing operation."""
        energy = self._sense.transition_energy(vdd)
        energy += self.rails_per_bit * self._buffer.transition_energy(vdd)
        return energy

    def leakage_power(self, vdd: float) -> float:
        """Static power (W) of the sense/read buffer."""
        return (self._sense.leakage_power(vdd)
                + self.rails_per_bit * self._buffer.leakage_power(vdd))
