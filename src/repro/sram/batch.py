"""Vectorised SI SRAM latency kernels over technology batches.

Mirrors the *analytical* interface of
:class:`~repro.sram.sram.SpeedIndependentSRAM` — the closed-form
``read_latency``/``write_latency`` chains, including the Fig. 5 bit-line
calibration — but evaluated elementwise over a
:class:`~repro.models.batch.TechnologyBatch`, so a Monte-Carlo study of
N perturbed technologies costs one numpy pass instead of N model-object
constructions.  The structural constants (decoder depth, tree depths,
drive strengths, load factors) depend only on the array configuration and
are computed once per call; everything voltage/threshold-dependent runs
through the :mod:`repro.models.batch` gate kernels.

All kernels obey the module's elementwise contract (see
:mod:`repro.models.batch`): a one-sample batch reproduces the bits of the
same sample inside any larger batch, which is what the runner's batched
quantities rely on.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.errors import ModelError
from repro.models.batch import (TechnologyBatch, gate_delay,
                                gate_input_capacitance, inverter_stage_delay,
                                on_current)
from repro.models.gate import GateType
from repro.sram.cell import CellType
from repro.sram.sram import SRAMConfig


def calibrated_bitline_params(
    batch: TechnologyBatch,
    anchor_high: Tuple[float, float] = (1.0, 50.0),
    anchor_low: Tuple[float, float] = (0.19, 158.0),
    fixed_overhead_inverters: float = 10.0,
    swing_fraction: float = 0.15,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-sample ``(read_vth_penalty, bitline_capacitance)`` Fig. 5 fit.

    Vectorised :func:`repro.sram.bitline.calibrate_bitline_to_fig5`: the
    same 80-iteration bisection for the shape-controlling threshold
    penalty, run in lockstep across the batch with per-sample brackets,
    then the closed-form capacitance solve.  Samples whose anchors fall
    outside the fittable range raise :class:`~repro.errors.ModelError`,
    like the scalar calibration.
    """
    vdd_high, target_high = anchor_high
    vdd_low, target_low = anchor_low
    t_inv_high = inverter_stage_delay(batch, vdd_high)
    t_inv_low = inverter_stage_delay(batch, vdd_low)
    bl_high = target_high - fixed_overhead_inverters
    bl_low = target_low - fixed_overhead_inverters
    target_shape = (bl_low * t_inv_low) / (bl_high * t_inv_high)
    width = batch.base.min_width_um

    def shape(penalty: np.ndarray) -> np.ndarray:
        # Discharge time per unit capacitance, absolute seconds.
        t_low = (swing_fraction * vdd_low
                 / on_current(batch, vdd_low, width, penalty))
        t_high = (swing_fraction * vdd_high
                  / on_current(batch, vdd_high, width, penalty))
        return t_low / t_high

    lo = np.zeros(batch.size)
    hi = np.full(batch.size, 0.35)
    if np.any(shape(lo) > target_shape) or np.any(shape(hi) < target_shape):
        raise ModelError(
            "Fig. 5 anchors are outside the range the bit-line model can fit"
        )
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        below = shape(mid) < target_shape
        lo = np.where(below, mid, lo)
        hi = np.where(below, hi, mid)
    penalty = 0.5 * (lo + hi)

    per_farad_high = (swing_fraction * vdd_high
                      / on_current(batch, vdd_high, width, penalty))
    capacitance = bl_high * t_inv_high / per_farad_high
    return penalty, capacitance


def default_bitline_params(batch: TechnologyBatch, rows: int,
                           cell_type: CellType = CellType.SIX_T,
                           ) -> Tuple[np.ndarray, np.ndarray]:
    """Uncalibrated ``(penalty, capacitance)`` — the BitlineModel defaults."""
    tech = batch.base
    per_row = (2.0 * tech.wire_cap_per_um
               + 0.5 * tech.unit_inverter_output_cap)
    penalty = np.full(batch.size, cell_type.read_vth_penalty)
    capacitance = np.full(batch.size, rows * per_row)
    return penalty, capacitance


def _decoder_delay(batch: TechnologyBatch, rows: int, vdd) -> np.ndarray:
    """Vectorised :meth:`repro.sram.decoder.AddressDecoder.delay`."""
    address_bits = max(1, math.ceil(math.log2(rows)))
    stage_count = max(1, math.ceil(address_bits / 2)) + 2
    logic = stage_count * gate_delay(batch, vdd, GateType.NAND2)
    wordline_cap = rows * 0.25 * batch.base.unit_inverter_input_cap
    wordline = gate_delay(batch, vdd, GateType.BUFFER,
                          external_load=wordline_cap)
    return logic + wordline


def _precharge_delay(batch: TechnologyBatch, vdd, bitline_capacitance,
                     swing_fraction: float) -> np.ndarray:
    """Vectorised :meth:`repro.sram.precharge.PrechargeUnit.delay` (X4)."""
    restore = gate_delay(batch, vdd, GateType.BUFFER, drive_strength=4.0,
                         external_load=2.0 * bitline_capacitance)
    return (restore * max(swing_fraction, 0.1)
            + gate_delay(batch, vdd, GateType.BUFFER, drive_strength=4.0))


def _discharge_delay(batch: TechnologyBatch, vdd, penalty,
                     bitline_capacitance,
                     swing_fraction: float) -> np.ndarray:
    """Vectorised :meth:`repro.sram.bitline.BitlineModel.discharge_delay`."""
    swing = swing_fraction * vdd
    current = on_current(batch, vdd, batch.base.min_width_um, penalty)
    if np.any(current <= 0):
        raise ModelError(f"cell read current is zero at vdd={vdd}")
    return bitline_capacitance * swing / current


def _tree_depth(leaves: int) -> int:
    return max(1, math.ceil(math.log2(max(2, leaves))))


def _detection_delay(batch: TechnologyBatch, columns: int,
                     segment_size: Optional[int], vdd) -> np.ndarray:
    """Vectorised
    :meth:`repro.sram.completion.ColumnCompletionDetector.detection_delay`.
    """
    or_delay = gate_delay(batch, vdd, GateType.OR2)
    c_delay = gate_delay(batch, vdd, GateType.C_ELEMENT)
    per_column = or_delay + _tree_depth(1) * c_delay
    if segment_size is None:
        merge_depth = _tree_depth(columns)
    else:
        segments = math.ceil(columns / segment_size)
        merge_depth = _tree_depth(min(segment_size, columns))
        merge_depth += _tree_depth(segments) if segments > 1 else 0
    merge = or_delay + merge_depth * c_delay
    return per_column + merge


def _effective_load_factor(segment_size: Optional[int],
                           detection_load_fraction: float = 0.10) -> float:
    if segment_size is None:
        return 1.0 + detection_load_fraction
    reduction = min(1.0, segment_size / 64.0)
    return 1.0 + detection_load_fraction * reduction


def _write_driver_delay(batch: TechnologyBatch, vdd, bitline_capacitance,
                        cell_type: CellType) -> np.ndarray:
    """Vectorised :meth:`repro.sram.write_driver.WriteDriver.write_delay`
    (X8 driver) plus :meth:`repro.sram.cell.SRAMCell.write_time`.
    """
    drive = gate_delay(batch, vdd, GateType.WRITE_DRIVER, drive_strength=8.0,
                       external_load=bitline_capacitance)
    latch_type = (GateType.SRAM_CELL if cell_type is CellType.SIX_T
                  else GateType.SRAM_CELL_8T)
    write_time = 4.0 * gate_delay(batch, vdd, latch_type)
    return drive + write_time


def _read_buffer_delay(batch: TechnologyBatch, vdd) -> np.ndarray:
    """Vectorised :meth:`repro.sram.sense.ReadBuffer.delay` (dual rail)."""
    return (gate_delay(batch, vdd, GateType.SENSE_AMP)
            + 2.0 * gate_delay(batch, vdd, GateType.BUFFER))


def _bitline_params(batch: TechnologyBatch,
                    config: SRAMConfig) -> Tuple[np.ndarray, np.ndarray]:
    if config.calibrate_to_fig5:
        return calibrated_bitline_params(batch)
    return default_bitline_params(batch, config.rows, config.cell_type)


def si_write_latency(batch: TechnologyBatch, config: Optional[SRAMConfig],
                     vdd: float, swing_fraction: float = 0.15) -> np.ndarray:
    """Per-sample SI SRAM analytical write latency (s) at supply *vdd*.

    Vectorised
    :meth:`repro.sram.sram.SpeedIndependentSRAM.write_latency`: decode +
    precharge + completion-loaded bit-line discharge + write drive/cell
    flip + completion detection + final precharge, with the Fig. 5
    bit-line calibration re-solved per perturbed sample when the config
    asks for it.  The energy calibration does not enter the latency chain,
    so ``calibrate_energy`` is ignored here.
    """
    config = config or SRAMConfig()
    penalty, capacitance = _bitline_params(batch, config)
    load = _effective_load_factor(config.completion_segment_size)
    return (_decoder_delay(batch, config.rows, vdd)
            + _precharge_delay(batch, vdd, capacitance, swing_fraction)
            + _discharge_delay(batch, vdd, penalty, capacitance,
                               swing_fraction) * load
            + _write_driver_delay(batch, vdd, capacitance, config.cell_type)
            + _detection_delay(batch, config.columns,
                               config.completion_segment_size, vdd)
            + _precharge_delay(batch, vdd, capacitance, swing_fraction))


def si_read_latency(batch: TechnologyBatch, config: Optional[SRAMConfig],
                    vdd: float, swing_fraction: float = 0.15) -> np.ndarray:
    """Per-sample SI SRAM analytical read latency (s) at supply *vdd*.

    Vectorised :meth:`repro.sram.sram.SpeedIndependentSRAM.read_latency`.
    """
    config = config or SRAMConfig()
    penalty, capacitance = _bitline_params(batch, config)
    load = _effective_load_factor(config.completion_segment_size)
    return (_decoder_delay(batch, config.rows, vdd)
            + _precharge_delay(batch, vdd, capacitance, swing_fraction)
            + _discharge_delay(batch, vdd, penalty, capacitance,
                               swing_fraction) * load
            + _read_buffer_delay(batch, vdd)
            + _detection_delay(batch, config.columns,
                               config.completion_segment_size, vdd)
            + _precharge_delay(batch, vdd, capacitance, swing_fraction))
