"""SRAM storage cells.

The paper's experimental design uses "the standard simple 6T SRAM cell", and
notes that leakage can be reduced "by switching to 8T cells (with two NMOS
transistors in stack)".  :class:`SRAMCell` models the properties the
behavioural simulator needs from a cell:

* the read current it can sink from a bit line (the quantity whose bad
  scaling at low Vdd produces the Fig. 5 mismatch),
* the write time of its cross-coupled pair,
* leakage as a function of Vdd and cell type,
* a data-retention voltage below which the stored value is lost — the
  failure mode an energy-harvester brown-out can trigger.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import ConfigurationError, RetentionError
from repro.models.gate import GateModel, GateType
from repro.models.mosfet import MosfetModel
from repro.models.technology import Technology


class CellType(enum.Enum):
    """Supported storage-cell topologies."""

    SIX_T = "6T"
    EIGHT_T = "8T"

    @property
    def transistors(self) -> int:
        """Transistor count of the cell."""
        return 6 if self is CellType.SIX_T else 8

    @property
    def leakage_factor(self) -> float:
        """Leakage relative to a 6T cell (8T stacks two NMOS → much less)."""
        return 1.0 if self is CellType.SIX_T else 0.35

    @property
    def read_vth_penalty(self) -> float:
        """Extra effective threshold (V) of the read path.

        The 6T read path goes through the access transistor in series with
        the pull-down — an effective threshold penalty relative to a logic
        inverter.  The 8T cell's dedicated read stack adds a little more.
        """
        return 0.10 if self is CellType.SIX_T else 0.12

    @property
    def area_factor(self) -> float:
        """Relative cell area (8T is larger)."""
        return 1.0 if self is CellType.SIX_T else 1.3


class SRAMCell:
    """Behavioural model of one SRAM cell.

    Parameters
    ----------
    technology:
        Process parameters.
    cell_type:
        6T (default, as in the paper's design) or 8T.
    vth_offset:
        Per-cell threshold variation (from Monte-Carlo sampling).
    retention_voltage:
        Supply below which the cross-coupled pair can no longer hold its
        state; reads/writes below it raise
        :class:`~repro.errors.RetentionError` and the stored value is lost.
    """

    def __init__(self, technology: Technology,
                 cell_type: CellType = CellType.SIX_T,
                 vth_offset: float = 0.0,
                 retention_voltage: float = 0.10) -> None:
        if retention_voltage < 0:
            raise ConfigurationError("retention_voltage must be non-negative")
        self.technology = technology
        self.cell_type = cell_type
        self.vth_offset = vth_offset
        self.retention_voltage = retention_voltage
        self._value: Optional[bool] = None  # None = unknown (power-up state)
        self._read_device = MosfetModel(
            technology=technology,
            width_um=technology.min_width_um,
            vth_offset=cell_type.read_vth_penalty + vth_offset,
        )
        self._latch_model = GateModel(
            technology=technology,
            gate_type=(GateType.SRAM_CELL if cell_type is CellType.SIX_T
                       else GateType.SRAM_CELL_8T),
            vth_offset=vth_offset,
        )

    # ------------------------------------------------------------------
    # Stored value
    # ------------------------------------------------------------------

    @property
    def value(self) -> Optional[bool]:
        """Stored bit, or ``None`` if unknown (never written / retention lost)."""
        return self._value

    def write(self, value: bool, vdd: float) -> None:
        """Store *value*; requires the supply to be above retention."""
        self._check_retention(vdd)
        self._value = bool(value)

    def read(self, vdd: float) -> bool:
        """Return the stored bit; requires a known value and adequate supply."""
        self._check_retention(vdd)
        if self._value is None:
            raise RetentionError("cell read before ever being written")
        return self._value

    def power_glitch(self, vdd: float) -> None:
        """Inform the cell the supply dipped to *vdd*; below retention it forgets."""
        if vdd < self.retention_voltage:
            self._value = None

    def _check_retention(self, vdd: float) -> None:
        if vdd < self.retention_voltage:
            self._value = None
            raise RetentionError(
                f"supply {vdd:.3f} V below retention voltage "
                f"{self.retention_voltage:.3f} V"
            )

    # ------------------------------------------------------------------
    # Electrical characteristics
    # ------------------------------------------------------------------

    def read_current(self, vdd: float) -> float:
        """Current (A) the cell sinks from a precharged bit line at *vdd*.

        This is the quantity that scales *worse* than logic as Vdd falls,
        because of the read path's threshold penalty — the physical origin of
        the SRAM/logic mismatch in Fig. 5.
        """
        return self._read_device.on_current(vdd)

    def write_time(self, vdd: float) -> float:
        """Time (s) for the cross-coupled pair to flip at supply *vdd*."""
        return 4.0 * self._latch_model.delay(vdd)

    def leakage_power(self, vdd: float) -> float:
        """Static power (W) of the idle cell at supply *vdd*."""
        return self._latch_model.leakage_power(vdd) * self.cell_type.leakage_factor

    def internal_node_capacitance(self) -> float:
        """Capacitance (F) of one internal storage node."""
        return self._latch_model.parasitic_capacitance
