"""Column completion detection for the SI SRAM.

The defining feature of the paper's SRAM is that the end of every bit-line
transient is *observed* rather than assumed: each column's read buffers feed
a completion detector, and the per-column "done" signals are merged by a
C-element tree into the array-level completion that drives the handshake
controller of Fig. 6.

The paper also proposes an optimisation for pushing operation further into
sub-threshold: "sectioning the completion detection in the column into
smaller segments, say, of 8 bit each... would reduce the loading capacity of
the bit lines" — :class:`ColumnCompletionDetector` exposes that segmentation
as a parameter so the trade-off can be swept (the EXT ablation benchmark).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.models.gate import GateModel, GateType
from repro.models.technology import Technology
from repro.selftimed.completion import CompletionTreeModel


@dataclass
class ColumnCompletionDetector:
    """Delay/energy model of the array-wide completion-detection network.

    Parameters
    ----------
    technology:
        Process parameters.
    columns:
        Number of data columns completion-detected in parallel (16 for the
        paper's 64×16 array).
    segment_size:
        Optional segmentation of each column's detector (see module
        docstring); ``None`` uses one detector per whole column.
    detection_load_fraction:
        Fraction by which the detector's input gates load the bit lines;
        segmentation reduces this loading and therefore the bit-line delay
        itself — the mechanism behind the paper's sub-0.3 V suggestion.
    """

    technology: Technology
    columns: int = 16
    segment_size: Optional[int] = None
    detection_load_fraction: float = 0.10

    def __post_init__(self) -> None:
        if self.columns < 1:
            raise ConfigurationError("columns must be >= 1")
        if self.segment_size is not None and self.segment_size < 1:
            raise ConfigurationError("segment_size must be >= 1 when given")
        if not (0.0 <= self.detection_load_fraction < 1.0):
            raise ConfigurationError(
                "detection_load_fraction must lie in [0, 1)"
            )
        self._per_column = CompletionTreeModel(
            technology=self.technology,
            bits=1,  # one dual-rail read value per column
            segment_size=None,
        )
        self._merge_tree = CompletionTreeModel(
            technology=self.technology,
            bits=self.columns,
            segment_size=self.segment_size,
        )
        self._c_gate = GateModel(technology=self.technology,
                                 gate_type=GateType.C_ELEMENT)

    # ------------------------------------------------------------------

    @property
    def gate_count(self) -> int:
        """Total completion-detection gates across the array."""
        return (self.columns * self._per_column.gate_count
                + self._merge_tree.gate_count)

    def effective_load_factor(self) -> float:
        """Multiplier on bit-line capacitance due to detector loading.

        Segmenting into ``s``-bit chunks reduces the loading proportionally
        (each chunk's detector only hangs on ``s`` of the column's cells).
        """
        if self.segment_size is None:
            return 1.0 + self.detection_load_fraction
        reduction = min(1.0, self.segment_size / 64.0)
        return 1.0 + self.detection_load_fraction * reduction

    def detection_delay(self, vdd: float) -> float:
        """Latency (s) from the last bit settling to array-level "done"."""
        return self._per_column.delay(vdd) + self._merge_tree.delay(vdd)

    def cycle_energy(self, vdd: float) -> float:
        """Energy (J) of one full detect + reset cycle across the array."""
        return (self.columns * self._per_column.energy(vdd)
                + self._merge_tree.energy(vdd))

    def leakage_power(self, vdd: float) -> float:
        """Static power (W) of all completion-detection gates."""
        return self.gate_count * self._c_gate.leakage_power(vdd)

    def minimum_detectable_vdd(self) -> float:
        """Lowest supply at which detection still functions.

        Without segmentation the heavily loaded column detector is the
        limiting factor; segmentation buys roughly the loading reduction in
        voltage headroom.  The model expresses this as the technology's
        functional minimum scaled by the loading factor.
        """
        base = self.technology.vdd_min
        return base * (self.effective_load_factor()
                       / (1.0 + self.detection_load_fraction))

    def segmentation_summary(self) -> dict:
        """Report of the segmentation trade-off (used by the ablation bench)."""
        return {
            "segment_size": self.segment_size,
            "gate_count": self.gate_count,
            "load_factor": self.effective_load_factor(),
            "min_vdd": self.minimum_detectable_vdd(),
        }


#: Names of the scalars :func:`segmentation_metrics` reports (the ABL1
#: plan's quantity set).
SEGMENTATION_METRICS = ("min_detectable_vdd", "detection_delay", "gate_count")


def segmentation_metrics(technology: Technology, columns: float,
                         segment_size: float, vdd: float = 0.3) -> dict:
    """The segmentation trade-off at one completion-detection structure.

    The per-point evaluation of the ABL1 ablation plan.  Axis values
    arrive as floats; ``segment_size <= 0`` encodes the unsegmented
    full-column detector (the plan axis cannot carry ``None``).  Reports
    the minimum detectable supply, the detection delay at *vdd* and the
    gate cost.
    """
    detector = ColumnCompletionDetector(
        technology=technology, columns=int(round(columns)),
        segment_size=None if segment_size <= 0 else int(round(segment_size)))
    return {
        "min_detectable_vdd": detector.minimum_detectable_vdd(),
        "detection_delay": detector.detection_delay(vdd),
        "gate_count": float(detector.gate_count),
    }
