"""The assembled SRAMs: speed-independent (the paper's design) and a
bundled-data baseline.

:class:`SpeedIndependentSRAM` is the behavioural equivalent of the paper's
1-kbit (64×16) UMC-90 nm design [7]: completion-detected timing, handshake
control with read-before-write, functional from ~0.2 V to 1 V, minimum energy
per operation around 0.4 V.  It offers two complementary interfaces:

* **analytical** — ``read_latency(vdd)``, ``write_energy(vdd)``,
  ``energy_model()`` etc., used for voltage sweeps (Fig. 5, the energy table)
  where event-by-event simulation adds nothing;
* **event-driven** — ``read()``/``write()`` on a
  :class:`~repro.sim.simulator.Simulator` with any supply node, used for the
  varying-Vdd demonstration of Fig. 7 and the protocol trace of Fig. 6.

:class:`BundledSRAM` is the conventional alternative the paper argues
against: the same array timed by a worst-case matched delay sized at a
calibration voltage.  It is faster and slightly cheaper at nominal Vdd but
fails (raises :class:`~repro.selftimed.bundled.TimingViolation`) once the
bit-line/logic mismatch eats its margin — the comparison behind Figs. 2 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import AddressError, ConfigurationError, ModelError
from repro.models.energy import EnergyModel
from repro.models.gate import GateModel, GateType
from repro.models.technology import Technology
from repro.models.variation import ProcessVariation
from repro.selftimed.bundled import TimingViolation
from repro.sim.probes import EnergyProbe
from repro.sim.simulator import Simulator
from repro.sram.bitline import BitlineModel, calibrate_bitline_to_fig5
from repro.sram.cell import CellType, SRAMCell
from repro.sram.completion import ColumnCompletionDetector
from repro.sram.controller import OperationRecord, SISRAMController
from repro.sram.decoder import AddressDecoder
from repro.sram.precharge import PrechargeUnit
from repro.sram.sense import ReadBuffer
from repro.sram.write_driver import WriteDriver


@dataclass(frozen=True)
class SRAMConfig:
    """Array configuration.

    The defaults reproduce the paper's 1-kbit 64×16 organisation.

    ``calibrate_energy`` scales the model's dynamic and leakage energy so the
    SI SRAM lands on the paper's published anchor points (5.8 pJ per 16-bit
    write at 1 V, 1.9 pJ at 0.4 V).  The first-order component models get the
    *shape* right but underestimate the absolute switched capacitance of the
    real macro (IO, control network, wiring), which is what the calibration
    absorbs — see DESIGN.md §5.
    """

    rows: int = 64
    columns: int = 16
    cell_type: CellType = CellType.SIX_T
    completion_segment_size: Optional[int] = None
    calibrate_to_fig5: bool = True
    calibrate_energy: bool = True
    energy_anchor_high: tuple = (1.0, 5.8e-12)
    energy_anchor_low: tuple = (0.4, 1.9e-12)

    def __post_init__(self) -> None:
        if self.rows < 2:
            raise ConfigurationError("rows must be >= 2")
        if self.columns < 1:
            raise ConfigurationError("columns must be >= 1")

    @property
    def bits(self) -> int:
        """Total storage capacity in bits."""
        return self.rows * self.columns


class _SRAMBase:
    """Storage array + component models shared by both SRAM variants."""

    def __init__(self, technology: Technology,
                 config: Optional[SRAMConfig] = None,
                 variation: Optional[ProcessVariation] = None,
                 name: str = "sram") -> None:
        self.technology = technology
        self.config = config or SRAMConfig()
        self.name = name
        self._data: List[Optional[int]] = [None] * self.config.rows
        vth_offset = 0.0
        if variation is not None:
            vth_offset = variation.sample().vth_offset
        self.reference_cell = SRAMCell(
            technology, cell_type=self.config.cell_type, vth_offset=vth_offset,
        )
        if self.config.calibrate_to_fig5:
            self.bitline = calibrate_bitline_to_fig5(technology,
                                                     rows=self.config.rows)
        else:
            self.bitline = BitlineModel(technology=technology,
                                        rows=self.config.rows)
        self.decoder = AddressDecoder(technology=technology,
                                      rows=self.config.rows)
        self.precharge = PrechargeUnit(technology=technology,
                                       bitline=self.bitline)
        self.write_driver = WriteDriver(technology=technology,
                                        bitline=self.bitline)
        self.read_buffer = ReadBuffer(technology=technology,
                                      bitline=self.bitline)

    # ------------------------------------------------------------------
    # Storage access (shared)
    # ------------------------------------------------------------------

    def _check_address(self, address: int) -> None:
        if not (0 <= address < self.config.rows):
            raise AddressError(
                f"address {address} outside 0..{self.config.rows - 1}"
            )

    def peek(self, address: int) -> Optional[int]:
        """Direct (zero-time) storage inspection for tests and debugging."""
        self._check_address(address)
        return self._data[address]

    def poke(self, address: int, value: int) -> None:
        """Direct (zero-time) storage modification for tests and debugging."""
        self._check_address(address)
        if value < 0 or value >= (1 << self.config.columns):
            raise ConfigurationError(
                f"value {value} does not fit in {self.config.columns} bits"
            )
        self._data[address] = value

    def _read_row(self, address: int) -> int:
        self._check_address(address)
        value = self._data[address]
        if value is None:
            # Reading an unwritten row returns an unknown-but-stable pattern;
            # the behavioural model uses zero.
            return 0
        return value

    def _write_row(self, address: int, value: int) -> None:
        self._check_address(address)
        self._data[address] = value

    def stored_words(self) -> int:
        """Number of rows holding a known value."""
        return sum(1 for value in self._data if value is not None)

    # ------------------------------------------------------------------
    # Shared leakage model
    # ------------------------------------------------------------------

    def array_leakage_power(self, vdd: float) -> float:
        """Static power (W) of the whole cell array at supply *vdd*."""
        return self.config.bits * self.reference_cell.leakage_power(vdd)

    def peripheral_leakage_power(self, vdd: float) -> float:
        """Static power (W) of decoder, drivers and sensing."""
        return (self.decoder.leakage_power(vdd)
                + self.config.columns * (self.precharge.leakage_power(vdd)
                                         + self.write_driver.leakage_power(vdd)
                                         + self.read_buffer.leakage_power(vdd)))


class SpeedIndependentSRAM(_SRAMBase):
    """The paper's completion-detected, handshake-controlled SRAM."""

    def __init__(self, technology: Technology,
                 config: Optional[SRAMConfig] = None,
                 variation: Optional[ProcessVariation] = None,
                 name: str = "si_sram") -> None:
        super().__init__(technology, config, variation, name)
        self.completion = ColumnCompletionDetector(
            technology=technology,
            columns=self.config.columns,
            segment_size=self.config.completion_segment_size,
        )
        #: Calibration multipliers applied to dynamic and leakage energy.
        self.dynamic_energy_scale = 1.0
        self.leakage_energy_scale = 1.0
        if self.config.calibrate_energy:
            calibrate_si_sram_energy(
                self,
                anchor_high=self.config.energy_anchor_high,
                anchor_low=self.config.energy_anchor_low,
            )

    # ------------------------------------------------------------------
    # Analytical interface
    # ------------------------------------------------------------------

    def minimum_operating_voltage(self) -> float:
        """Lowest supply at which the SI SRAM still completes operations."""
        return max(self.completion.minimum_detectable_vdd(),
                   self.reference_cell.retention_voltage,
                   self.technology.vdd_min)

    def read_latency(self, vdd: float) -> float:
        """Analytical read latency (s) at a steady supply *vdd*."""
        load = self.completion.effective_load_factor()
        return (self.decoder.delay(vdd)
                + self.precharge.delay(vdd)
                + self.bitline.discharge_delay(vdd) * load
                + self.read_buffer.delay(vdd)
                + self.completion.detection_delay(vdd)
                + self.precharge.delay(vdd))

    def write_latency(self, vdd: float) -> float:
        """Analytical write latency (s) — includes the read-before-write."""
        load = self.completion.effective_load_factor()
        return (self.decoder.delay(vdd)
                + self.precharge.delay(vdd)
                + self.bitline.discharge_delay(vdd) * load
                + self.write_driver.write_delay(vdd, self.reference_cell)
                + self.completion.detection_delay(vdd)
                + self.precharge.delay(vdd))

    def _dynamic_read_energy(self, vdd: float) -> float:
        cols = self.config.columns
        return (self.decoder.energy(vdd)
                + cols * (1.5 * self.precharge.energy(vdd)
                          + self.bitline.read_energy(vdd)
                          + self.read_buffer.energy(vdd))
                + self.completion.cycle_energy(vdd))

    def _dynamic_write_energy(self, vdd: float) -> float:
        cols = self.config.columns
        return (self.decoder.energy(vdd)
                + cols * (1.5 * self.precharge.energy(vdd)
                          + self.bitline.read_energy(vdd)      # read-before-write
                          + self.write_driver.energy(vdd))
                + self.completion.cycle_energy(vdd))

    def total_leakage_power(self, vdd: float) -> float:
        """Static power (W) of the whole macro (array, periphery, detection)."""
        return (self.array_leakage_power(vdd)
                + self.peripheral_leakage_power(vdd)
                + self.completion.leakage_power(vdd))

    def read_energy(self, vdd: float) -> float:
        """Total energy (J) of one read at supply *vdd* (dynamic + leakage)."""
        dynamic = self.dynamic_energy_scale * self._dynamic_read_energy(vdd)
        leak = (self.leakage_energy_scale * self.total_leakage_power(vdd)
                * self.read_latency(vdd))
        return dynamic + leak

    def write_energy(self, vdd: float) -> float:
        """Total energy (J) of one 16-bit write at supply *vdd*."""
        dynamic = self.dynamic_energy_scale * self._dynamic_write_energy(vdd)
        leak = (self.leakage_energy_scale * self.total_leakage_power(vdd)
                * self.write_latency(vdd))
        return dynamic + leak

    def energy_model(self, operation: str = "write") -> EnergyModel:
        """Build an :class:`~repro.models.energy.EnergyModel` for sweeps.

        The model exposes the switching/leakage decomposition so the
        minimum-energy-point search (the paper's 0.4 V result) can be run
        with :meth:`~repro.models.energy.EnergyModel.minimum_energy_point`.
        """
        if operation not in ("read", "write"):
            raise ConfigurationError("operation must be 'read' or 'write'")
        vdd_ref = self.technology.vdd_nominal
        if operation == "write":
            dynamic_ref = (self.dynamic_energy_scale
                           * self._dynamic_write_energy(vdd_ref))
            delay_model: Callable[[float], float] = self.write_latency
        else:
            dynamic_ref = (self.dynamic_energy_scale
                           * self._dynamic_read_energy(vdd_ref))
            delay_model = self.read_latency
        # Decompose the reference dynamic energy into an equivalent
        # (transitions × capacitance) pair so EnergyModel can rescale it
        # quadratically with voltage.
        transitions = self.config.columns * 6.0 + 10.0
        cap = dynamic_ref / (0.5 * transitions * vdd_ref * vdd_ref)
        inverter = GateModel(technology=self.technology,
                             gate_type=GateType.INVERTER)
        total_leak_ref = (self.leakage_energy_scale
                          * self.total_leakage_power(vdd_ref))
        leakage_gates = total_leak_ref / inverter.leakage_power(vdd_ref)
        return EnergyModel(
            technology=self.technology,
            transitions_per_op=transitions,
            switched_cap_per_transition=cap,
            leakage_gates=leakage_gates,
            delay_model=delay_model,
        )

    # ------------------------------------------------------------------
    # Event-driven interface
    # ------------------------------------------------------------------

    def attach(self, sim: Simulator, supply,
               energy_probe: Optional[EnergyProbe] = None) -> SISRAMController:
        """Instantiate the Fig. 6 handshake controller on a simulator.

        Returns the controller; subsequent ``controller.read()`` /
        ``controller.write()`` calls run as event sequences against *supply*.
        """
        self.controller = SISRAMController(
            sim=sim, supply=supply, technology=self.technology,
            decoder=self.decoder, bitline=self.bitline,
            precharge=self.precharge, write_driver=self.write_driver,
            read_buffer=self.read_buffer, completion=self.completion,
            reference_cell=self.reference_cell,
            read_row=self._read_row, write_row=self._write_row,
            columns=self.config.columns,
            name=f"{self.name}.ctrl",
            energy_probe=energy_probe,
            energy_scale=self.dynamic_energy_scale,
        )
        return self.controller


class BundledSRAM(_SRAMBase):
    """Conventional matched-delay (bundled) SRAM baseline.

    Timing is provided by an inverter-chain delay line sized at
    ``calibration_vdd`` with ``margin``; because the bit line scales worse
    than the inverters (Fig. 5), the margin shrinks as Vdd falls and the
    memory *fails* below its minimum operating voltage instead of slowing
    down gracefully.
    """

    def __init__(self, technology: Technology,
                 config: Optional[SRAMConfig] = None,
                 margin: float = 1.5,
                 calibration_vdd: Optional[float] = None,
                 variation: Optional[ProcessVariation] = None,
                 name: str = "bundled_sram") -> None:
        super().__init__(technology, config, variation, name)
        if margin < 1.0:
            raise ConfigurationError("margin must be >= 1")
        self.margin = margin
        self.calibration_vdd = calibration_vdd or technology.vdd_nominal
        from repro.models.delay import InverterChain
        ruler = InverterChain(technology=technology, stages=1)
        target = self.bitline.discharge_delay(self.calibration_vdd)
        stages = max(2, round(margin * target
                              / ruler.stage_delay(self.calibration_vdd)))
        self._delay_line = InverterChain(technology=technology, stages=stages)

    # ------------------------------------------------------------------

    def matched_delay(self, vdd: float) -> float:
        """Delay-line output delay at supply *vdd*, in seconds."""
        return self._delay_line.total_delay(vdd)

    def timing_margin(self, vdd: float) -> float:
        """Matched delay over actual bit-line delay; < 1 means data corruption."""
        return self.matched_delay(vdd) / self.bitline.discharge_delay(vdd)

    def is_functional(self, vdd: float) -> bool:
        """Whether the bundling assumption holds at supply *vdd*."""
        return vdd >= self.technology.vdd_min and self.timing_margin(vdd) >= 1.0

    def minimum_operating_voltage(self, resolution: float = 0.005) -> float:
        """Lowest Vdd at which the bundled SRAM still works."""
        vdd = self.calibration_vdd
        lowest = vdd
        while vdd >= self.technology.vdd_min:
            if not self.is_functional(vdd):
                break
            lowest = vdd
            vdd -= resolution
        return lowest

    def _check(self, vdd: float) -> None:
        if not self.is_functional(vdd):
            raise TimingViolation(
                f"{self.name}: matched delay no longer covers the bit line at "
                f"Vdd={vdd:.3f} V (margin={self.timing_margin(vdd):.2f})"
            )

    def read_latency(self, vdd: float, check: bool = True) -> float:
        """Read latency (s); raises :class:`TimingViolation` below the floor."""
        if check:
            self._check(vdd)
        return (self.decoder.delay(vdd) + self.precharge.delay(vdd)
                + self.matched_delay(vdd) + self.read_buffer.delay(vdd))

    def write_latency(self, vdd: float, check: bool = True) -> float:
        """Write latency (s); no read-before-write is needed here."""
        if check:
            self._check(vdd)
        return (self.decoder.delay(vdd) + self.precharge.delay(vdd)
                + self.matched_delay(vdd)
                + self.write_driver.write_delay(vdd, self.reference_cell))

    def read_energy(self, vdd: float, check: bool = True) -> float:
        """Energy (J) of one read; cheaper than the SI SRAM at nominal Vdd."""
        if check:
            self._check(vdd)
        cols = self.config.columns
        dynamic = (self.decoder.energy(vdd)
                   + cols * (1.5 * self.precharge.energy(vdd)
                             + self.bitline.read_energy(vdd)
                             + self.read_buffer.energy(vdd))
                   + 2.0 * self._delay_line.energy(vdd))
        leak = self.array_leakage_power(vdd) + self.peripheral_leakage_power(vdd)
        return dynamic + leak * self.read_latency(vdd, check=False)

    def write_energy(self, vdd: float, check: bool = True) -> float:
        """Energy (J) of one write."""
        if check:
            self._check(vdd)
        cols = self.config.columns
        dynamic = (self.decoder.energy(vdd)
                   + cols * (1.5 * self.precharge.energy(vdd)
                             + self.write_driver.energy(vdd))
                   + 2.0 * self._delay_line.energy(vdd))
        leak = self.array_leakage_power(vdd) + self.peripheral_leakage_power(vdd)
        return dynamic + leak * self.write_latency(vdd, check=False)


def calibrate_si_sram_energy(sram: SpeedIndependentSRAM,
                             anchor_high: tuple = (1.0, 5.8e-12),
                             anchor_low: tuple = (0.4, 1.9e-12)) -> None:
    """Fit the SI SRAM's energy scales to the paper's published anchors.

    The paper reports, for the 1-kbit 90 nm design: "It consumes 5.8 pJ at
    1 V for a write of a 16-bit word and 1.9 pJ at 0.4 V".  The component
    models produce the right *dependence* on Vdd but understate the absolute
    switched capacitance of the full macro, so we solve the 2×2 linear system

    ``s_dyn·D(v) + s_leak·L(v) = E_paper(v)``  at both anchor voltages,

    where ``D`` is the modelled dynamic energy and ``L`` the modelled
    leakage·latency product, and store the two scale factors on the SRAM.
    If the system has no positive solution (possible for exotic anchor
    choices) the dynamic scale is fitted to the high anchor alone and the
    leakage scale to whatever remains at the low anchor, floored at zero.
    """
    v_hi, e_hi = anchor_high
    v_lo, e_lo = anchor_low
    if v_hi <= v_lo:
        raise ConfigurationError("anchor_high must be at the higher voltage")
    if e_hi <= 0 or e_lo <= 0:
        raise ConfigurationError("anchor energies must be positive")
    d_hi = sram._dynamic_write_energy(v_hi)
    d_lo = sram._dynamic_write_energy(v_lo)
    l_hi = sram.total_leakage_power(v_hi) * sram.write_latency(v_hi)
    l_lo = sram.total_leakage_power(v_lo) * sram.write_latency(v_lo)
    determinant = d_hi * l_lo - d_lo * l_hi
    s_dyn = s_leak = None
    if abs(determinant) > 0:
        s_dyn = (e_hi * l_lo - e_lo * l_hi) / determinant
        s_leak = (d_hi * e_lo - d_lo * e_hi) / determinant
    if s_dyn is None or s_dyn <= 0 or s_leak is None or s_leak <= 0:
        s_dyn = e_hi / d_hi
        s_leak = max(0.0, (e_lo - s_dyn * d_lo) / l_lo) if l_lo > 0 else 0.0
    sram.dynamic_energy_scale = float(s_dyn)
    sram.leakage_energy_scale = float(s_leak)


# ---------------------------------------------------------------------------
# Event-driven scenarios (Figs. 6 and 7) and ablation quantities


#: Names of the scalars :func:`operation_metrics` extracts from one
#: event-driven :class:`~repro.sram.controller.OperationRecord`.
OPERATION_METRICS = ("latency", "energy", "phases")


def operation_metrics(record: OperationRecord) -> dict:
    """Scalar summary of one handshake operation, keyed by
    :data:`OPERATION_METRICS` — the per-point quantities of the Fig. 6/7
    experiment plans."""
    return {
        "latency": record.latency,
        "energy": record.energy,
        "phases": float(len(record.phases)),
    }


def run_handshake_protocol(technology: Technology,
                           config: Optional[SRAMConfig] = None,
                           vdd: float = 0.5, address: int = 3,
                           value: int = 0b10110101):
    """Fig. 6 scenario: one write followed by one read, phase by phase.

    Runs the event-driven handshake controller at a constant *vdd* and
    returns ``(sram, write_record, read_record)``.  The read necessarily
    follows the write (it reads the value the write committed), so the two
    operations are one scenario evaluated once, not independent plan
    points; a Fig. 6 plan sweeps the *record index* and extracts
    :func:`operation_metrics` from the memoised scenario.
    """
    from repro.power.supply import ConstantSupply

    sram = SpeedIndependentSRAM(technology, config)
    sim = Simulator()
    controller = sram.attach(sim, ConstantSupply(vdd))
    records: List[OperationRecord] = []
    controller.write(address, value,
                     on_complete=lambda rec, val: records.append(rec))
    sim.run()
    controller.read(address, on_complete=lambda rec, val: records.append(rec))
    sim.run()
    return sram, records[0], records[1]


def run_varying_rail_writes(technology: Technology,
                            config: Optional[SRAMConfig] = None,
                            low_vdd: float = 0.25, high_vdd: float = 1.0,
                            step_time: float = 1e-6,
                            resume_time: float = 1.5e-6,
                            addresses: tuple = (1, 2),
                            values: tuple = (0xA5, 0x5A)):
    """Fig. 7 scenario: two writes under a recovering supply rail.

    The rail starts at *low_vdd* and steps up to *high_vdd* after
    *step_time* (a recovering harvester store, as in the paper's
    waveform); the first write runs entirely on the depleted rail, the
    second entirely on the recovered one.  Returns ``(sram, slow_record,
    fast_record)``; both writes must commit correct data — only the
    latency differs, which is the paper's point.
    """
    from repro.power.supply import PiecewiseSupply

    sram = SpeedIndependentSRAM(technology, config)
    sim = Simulator()
    supply = PiecewiseSupply([(0.0, low_vdd), (step_time, high_vdd)])
    controller = sram.attach(sim, supply)
    records: List[OperationRecord] = []
    controller.write(addresses[0], values[0],
                     on_complete=lambda rec, val: records.append(rec))
    sim.run()
    # Move past the supply step, then issue the second write.
    sim.advance_to(resume_time)
    controller.write(addresses[1], values[1],
                     on_complete=lambda rec, val: records.append(rec))
    sim.run()
    return sram, records[0], records[1]


def cell_tradeoff_metrics(technology: Technology, cell_type: CellType,
                          vdd_leak: float = 1.0,
                          vdd_write: float = 0.4) -> dict:
    """The 6T-versus-8T trade-off at one cell choice (ablation ABL2).

    Builds an uncalibrated array of *cell_type* cells and reports the three
    quantities the paper weighs against each other: array leakage at
    *vdd_leak*, write energy at *vdd_write* and the cell's relative area.
    """
    sram = SpeedIndependentSRAM(
        technology, SRAMConfig(cell_type=cell_type, calibrate_energy=False))
    return {
        "array_leakage": sram.array_leakage_power(vdd_leak),
        "write_energy": sram.write_energy(vdd_write),
        "area_factor": cell_type.area_factor,
    }


def latency_chain_violations(technology: Technology,
                             vdd_low: float, vdd_high: float,
                             config: Optional[SRAMConfig] = None) -> List[str]:
    """Latency-chain-ordering violations of the analytic SI SRAM model.

    The SRAM layer's invariant adapter for
    :mod:`repro.analysis.campaign.invariants`: build one
    :class:`SpeedIndependentSRAM` and check, at the two supplies
    ``vdd_low < vdd_high``, the orderings the latency chain promises:

    * read and write latency, energy and leakage are strictly positive;
    * the chain total is at least as large as its slowest single stage
      (a chained handshake cannot finish before one of its links);
    * the write latency dominates the read latency minus the read buffer
      (the write chain replaces the read buffer with the slower
      read-before-write driver stage) — concretely, both latencies are
      bounded below by the shared decoder + precharge + bitline spine;
    * both latencies are non-increasing in Vdd.

    Returns human-readable violation messages; empty means the model held.
    """
    if not vdd_low < vdd_high:
        raise ConfigurationError("latency_chain_violations needs "
                                 f"vdd_low < vdd_high, got {vdd_low!r} "
                                 f">= {vdd_high!r}")
    if vdd_low < technology.vdd_min:
        raise ConfigurationError(
            f"vdd_low={vdd_low!r} V is below the functional minimum "
            f"{technology.vdd_min!r} V of {technology.name}")
    if config is None:
        # The Fig. 5 bitline calibration probes a fixed sub-0.2 V supply;
        # technologies whose functional minimum sits above that probe
        # (e.g. cmos180) can only be built uncalibrated.
        config = SRAMConfig(calibrate_to_fig5=technology.vdd_min <= 0.19)
    try:
        sram = SpeedIndependentSRAM(technology, config)
    except ModelError as exc:
        # Construction failing for an out-of-envelope technology/config
        # combination is invalid input, not a model violation.
        raise ConfigurationError(
            f"SI SRAM cannot be built for {technology.name} with "
            f"{config!r}: {exc}") from exc
    violations: List[str] = []
    load = sram.completion.effective_load_factor()
    for vdd in (vdd_low, vdd_high):
        read = sram.read_latency(vdd)
        write = sram.write_latency(vdd)
        stages = {
            "decoder": sram.decoder.delay(vdd),
            "precharge": sram.precharge.delay(vdd),
            "bitline": sram.bitline.discharge_delay(vdd) * load,
            "completion": sram.completion.detection_delay(vdd),
        }
        for name, value in (("read latency", read),
                            ("write latency", write),
                            ("read energy", sram.read_energy(vdd)),
                            ("write energy", sram.write_energy(vdd)),
                            ("leakage power",
                             sram.total_leakage_power(vdd))):
            if not value > 0.0:
                violations.append(
                    f"vdd={vdd!r}: {name} is not positive ({value!r})")
        slowest_name = max(stages, key=lambda name: stages[name])
        slowest = stages[slowest_name]
        spine = (stages["decoder"] + 2.0 * stages["precharge"]
                 + stages["bitline"] + stages["completion"])
        for name, total in (("read", read), ("write", write)):
            if total < slowest * (1.0 - 1e-12):
                violations.append(
                    f"vdd={vdd!r}: {name} latency {total!r} s is shorter "
                    f"than its slowest stage ({slowest_name}: {slowest!r} s)")
            if total < spine * (1.0 - 1e-12):
                violations.append(
                    f"vdd={vdd!r}: {name} latency {total!r} s undercuts the "
                    f"shared decoder/precharge/bitline/completion spine "
                    f"({spine!r} s)")
    for name, fn in (("read", sram.read_latency),
                     ("write", sram.write_latency)):
        low, high = fn(vdd_low), fn(vdd_high)
        if low < high * (1.0 - 1e-12):
            violations.append(
                f"{name} latency increased with Vdd: {low!r} s at "
                f"{vdd_low!r} V < {high!r} s at {vdd_high!r} V")
    return violations
