"""Row-address decoder model.

The decoder is part of the read/write path that scales *like logic* (it is
built of ordinary NAND/inverter stages), in contrast to the bit lines which
scale like a starved source follower.  Splitting the two contributions is
what lets the library reproduce the Fig. 5 divergence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import AddressError, ConfigurationError
from repro.models.gate import GateModel, GateType
from repro.models.technology import Technology


@dataclass
class AddressDecoder:
    """A ``rows``-way one-hot decoder with predecoding.

    Parameters
    ----------
    technology:
        Process parameters.
    rows:
        Number of word lines to decode (64 for the paper's 1-kbit array).
    """

    technology: Technology
    rows: int = 64

    def __post_init__(self) -> None:
        if self.rows < 2:
            raise ConfigurationError("rows must be >= 2")
        self._nand = GateModel(technology=self.technology, gate_type=GateType.NAND2)
        self._buffer = GateModel(technology=self.technology, gate_type=GateType.BUFFER)

    # ------------------------------------------------------------------

    @property
    def address_bits(self) -> int:
        """Number of address bits needed."""
        return max(1, math.ceil(math.log2(self.rows)))

    @property
    def stage_count(self) -> int:
        """Logic depth of the decode path (predecode + final NAND + WL buffer)."""
        predecode_levels = max(1, math.ceil(self.address_bits / 2))
        return predecode_levels + 2

    def check_address(self, address: int) -> None:
        """Validate a row address; raises :class:`~repro.errors.AddressError`."""
        if not (0 <= address < self.rows):
            raise AddressError(
                f"address {address} outside the array (0..{self.rows - 1})"
            )

    def delay(self, vdd: float) -> float:
        """Decode latency (s): logic stages plus the word-line RC."""
        logic = self.stage_count * self._nand.delay(vdd)
        wordline_cap = self.rows * 0.25 * self.technology.unit_inverter_input_cap
        wordline = self._buffer.delay(vdd, external_load=wordline_cap)
        return logic + wordline

    def energy(self, vdd: float) -> float:
        """Energy (J) of one decode: predecoders, one-hot line and word line."""
        predecode = self.address_bits * self._nand.transition_energy(vdd)
        onehot = 2.0 * self._nand.transition_energy(vdd)
        wordline_cap = self.rows * 0.25 * self.technology.unit_inverter_input_cap
        wordline = self._buffer.transition_energy(vdd, external_load=wordline_cap)
        return predecode + onehot + wordline

    def leakage_power(self, vdd: float) -> float:
        """Static power (W) of the whole decoder."""
        gate_count = self.rows + 4 * self.address_bits
        return gate_count * self._nand.leakage_power(vdd)
