"""Bit-line precharge unit.

In the handshake-controlled SI SRAM (Fig. 6) the precharge is not timed by a
clock phase: the controller raises a precharge *request* and the precharge
unit acknowledges only when the bit lines have genuinely returned to Vdd
(observed by the column completion detector).  This module provides the
delay/energy characteristics of that phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.models.gate import GateModel, GateType
from repro.models.technology import Technology
from repro.sram.bitline import BitlineModel


@dataclass
class PrechargeUnit:
    """PMOS precharge/equalise devices for one column pair.

    Parameters
    ----------
    technology:
        Process parameters.
    bitline:
        The column's bit-line model (provides the capacitance to restore).
    drive_strength:
        Sizing of the precharge devices relative to minimum.
    """

    technology: Technology
    bitline: BitlineModel
    drive_strength: float = 4.0

    def __post_init__(self) -> None:
        if self.drive_strength <= 0:
            raise ConfigurationError("drive_strength must be positive")
        self._driver = GateModel(
            technology=self.technology,
            gate_type=GateType.BUFFER,
            drive_strength=self.drive_strength,
        )

    # ------------------------------------------------------------------

    def delay(self, vdd: float) -> float:
        """Time (s) to restore both bit lines to Vdd after an access."""
        swing = self.bitline.swing_fraction * vdd
        # The precharge devices must move 2 bit lines by the developed swing.
        restore = self._driver.delay(
            vdd, external_load=2.0 * self.bitline.bitline_capacitance
        )
        # Scale by the fraction of a full swing actually developed.
        return restore * max(self.bitline.swing_fraction, 0.1) + \
            self._driver.delay(vdd)

    def energy(self, vdd: float) -> float:
        """Energy (J) of one precharge phase (charge restored + control)."""
        return (self.bitline.precharge_energy(vdd)
                + self._driver.transition_energy(vdd))

    def leakage_power(self, vdd: float) -> float:
        """Static power (W) of the precharge devices."""
        return self._driver.leakage_power(vdd)
