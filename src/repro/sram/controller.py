"""Handshake-based SI SRAM controller (paper Fig. 6).

The controller sequences every memory operation as a chain of handshakes —
precharge, word line, sense/write-enable — where each phase begins only when
the previous phase has *indicated its own completion*.  Two details from the
paper are modelled explicitly:

* **Read completion** is indicated by the dual-rail read buffers producing a
  valid codeword (column completion detection).
* **Write completion** uses the paper's "interesting and original" trick:
  *reading before writing*.  The cell's current value is first read onto the
  bit lines, then the write driver drives the new value; completion logic
  simply waits until the bit-line state equals the value being written, which
  is a genuine, reference-free indication that the cell has flipped.

Because each phase's duration is computed from the supply voltage *at the
moment the phase starts*, an operation that spans a supply dip simply
stretches (Fig. 7) — it never silently violates timing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigurationError, SupplyCollapseError
from repro.models.technology import Technology
from repro.sim.probes import EnergyProbe
from repro.sim.signals import Signal
from repro.sim.simulator import Simulator
from repro.selftimed.handshake import HandshakeChannel
from repro.sram.bitline import BitlineModel
from repro.sram.cell import SRAMCell
from repro.sram.completion import ColumnCompletionDetector
from repro.sram.decoder import AddressDecoder
from repro.sram.precharge import PrechargeUnit
from repro.sram.sense import ReadBuffer
from repro.sram.write_driver import WriteDriver


class SRAMOperation(enum.Enum):
    """Memory operation types."""

    READ = "read"
    WRITE = "write"


@dataclass
class PhaseRecord:
    """One completed phase of an operation (for protocol-trace benchmarks)."""

    name: str
    start_time: float
    duration: float
    vdd: float


@dataclass
class OperationRecord:
    """Summary of one completed SRAM operation."""

    operation: SRAMOperation
    address: int
    data: Optional[int]
    start_time: float
    end_time: float
    energy: float
    phases: List[PhaseRecord] = field(default_factory=list)
    stall_time: float = 0.0

    @property
    def latency(self) -> float:
        """Total latency in seconds."""
        return self.end_time - self.start_time


class SISRAMController:
    """Event-driven phase sequencer for the speed-independent SRAM.

    The controller does not own the storage array — it is given callbacks to
    read/write a row — so the same sequencer drives both the behavioural
    :class:`~repro.sram.sram.SpeedIndependentSRAM` and unit tests with fake
    storage.

    Parameters
    ----------
    read_row / write_row:
        Callables accessing the storage: ``read_row(address) -> int`` and
        ``write_row(address, value) -> None``.
    retry_interval:
        How long to wait before re-attempting a phase whose supply was below
        the functional minimum.
    """

    def __init__(self, sim: Simulator, supply, technology: Technology,
                 decoder: AddressDecoder, bitline: BitlineModel,
                 precharge: PrechargeUnit, write_driver: WriteDriver,
                 read_buffer: ReadBuffer,
                 completion: ColumnCompletionDetector,
                 reference_cell: SRAMCell,
                 read_row: Callable[[int], int],
                 write_row: Callable[[int, int], None],
                 columns: int,
                 name: str = "sram.ctrl",
                 retry_interval: float = 200e-9,
                 energy_probe: Optional[EnergyProbe] = None,
                 energy_scale: float = 1.0) -> None:
        if retry_interval <= 0:
            raise ConfigurationError("retry_interval must be positive")
        if energy_scale <= 0:
            raise ConfigurationError("energy_scale must be positive")
        self.sim = sim
        self.supply = supply
        self.technology = technology
        self.name = name
        self.decoder = decoder
        self.bitline = bitline
        self.precharge = precharge
        self.write_driver = write_driver
        self.read_buffer = read_buffer
        self.completion = completion
        self.reference_cell = reference_cell
        self._read_row = read_row
        self._write_row = write_row
        self.columns = columns
        self.retry_interval = retry_interval
        self.energy_probe = energy_probe
        self.energy_scale = energy_scale
        self.busy = False
        self.records: List[OperationRecord] = []
        # Observable handshake interface (Fig. 6 structure).
        self.precharge_channel = HandshakeChannel(sim, f"{name}.precharge")
        self.wordline_channel = HandshakeChannel(sim, f"{name}.wordline")
        self.write_enable_channel = HandshakeChannel(sim, f"{name}.write_enable")
        self.done = Signal(f"{name}.done")
        self._last_read_value: Optional[int] = None

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------

    def read(self, address: int,
             on_complete: Optional[Callable[[OperationRecord, int], None]] = None
             ) -> None:
        """Start a read of *address*; *on_complete(record, value)* fires at the end."""
        self._start(SRAMOperation.READ, address, None, on_complete)

    def write(self, address: int, data: int,
              on_complete: Optional[Callable[[OperationRecord, int], None]] = None
              ) -> None:
        """Start a write of *data* to *address*."""
        if data < 0 or data >= (1 << self.columns):
            raise ConfigurationError(
                f"data {data} does not fit in {self.columns} columns"
            )
        self._start(SRAMOperation.WRITE, address, data, on_complete)

    def _start(self, operation: SRAMOperation, address: int,
               data: Optional[int],
               on_complete: Optional[Callable[[OperationRecord, int], None]]) -> None:
        if self.busy:
            raise ConfigurationError(
                f"{self.name}: operation requested while busy (the SI SRAM "
                "has a single port; serialise requests on the handshake)"
            )
        self.decoder.check_address(address)
        self.busy = True
        record = OperationRecord(
            operation=operation, address=address, data=data,
            start_time=self.sim.now, end_time=self.sim.now, energy=0.0,
        )
        # Phase plan: (name, delay_fn, energy_fn) evaluated lazily so each
        # phase sees the supply voltage at its own start time.
        if operation is SRAMOperation.READ:
            phases = self._read_phases()
        else:
            phases = self._write_phases()
        self._run_phase(record, phases, 0, on_complete)

    # ------------------------------------------------------------------
    # Phase plans
    # ------------------------------------------------------------------

    def _read_phases(self) -> List[Tuple[str, Callable[[float], float],
                                         Callable[[float], float]]]:
        load = self.completion.effective_load_factor()
        return [
            ("decode", self.decoder.delay, self.decoder.energy),
            ("precharge", self.precharge.delay,
             lambda v: self.columns * self.precharge.energy(v)),
            ("wordline+bitline",
             lambda v: self.bitline.discharge_delay(v) * load,
             lambda v: self.columns * self.bitline.read_energy(v)),
            ("sense", self.read_buffer.delay,
             lambda v: self.columns * self.read_buffer.energy(v)),
            ("completion", self.completion.detection_delay,
             self.completion.cycle_energy),
            ("precharge-return", self.precharge.delay,
             lambda v: self.columns * self.precharge.energy(v) * 0.5),
        ]

    def _write_phases(self) -> List[Tuple[str, Callable[[float], float],
                                          Callable[[float], float]]]:
        load = self.completion.effective_load_factor()
        return [
            ("decode", self.decoder.delay, self.decoder.energy),
            ("precharge", self.precharge.delay,
             lambda v: self.columns * self.precharge.energy(v)),
            # Read-before-write: make the current contents observable so the
            # write's completion can be detected as bit-line == new value.
            ("read-before-write",
             lambda v: self.bitline.discharge_delay(v) * load,
             lambda v: self.columns * self.bitline.read_energy(v)),
            ("write-drive",
             lambda v: self.write_driver.write_delay(v, self.reference_cell),
             lambda v: self.columns * self.write_driver.energy(v)),
            ("write-completion", self.completion.detection_delay,
             self.completion.cycle_energy),
            ("precharge-return", self.precharge.delay,
             lambda v: self.columns * self.precharge.energy(v) * 0.5),
        ]

    # ------------------------------------------------------------------
    # Phase execution
    # ------------------------------------------------------------------

    def _rail_voltage(self) -> float:
        return self.supply.voltage(self.sim.now)

    def _run_phase(self, record: OperationRecord, phases, index: int,
                   on_complete) -> None:
        if index >= len(phases):
            self._finish(record, on_complete)
            return
        name, delay_fn, energy_fn = phases[index]
        vdd = self._rail_voltage()
        if vdd < self.technology.vdd_min:
            record.stall_time += self.retry_interval
            self.sim.schedule(
                self.retry_interval,
                lambda: self._run_phase(record, phases, index, on_complete),
                label=f"{self.name}.stall",
            )
            return
        duration = delay_fn(vdd)
        self._signal_phase(name, True)
        self.sim.schedule(
            duration,
            lambda: self._end_phase(record, phases, index, duration, vdd,
                                    energy_fn, on_complete),
            label=f"{self.name}.{name}",
        )

    def _end_phase(self, record: OperationRecord, phases, index: int,
                   duration: float, vdd: float, energy_fn, on_complete) -> None:
        name = phases[index][0]
        energy = self.energy_scale * energy_fn(vdd)
        try:
            charge = energy / max(vdd, 1e-9)
            self.supply.draw_charge(charge, self.sim.now)
        except SupplyCollapseError:
            # The supply collapsed mid-phase: wait and repeat this phase.
            record.stall_time += self.retry_interval
            self.sim.schedule(
                self.retry_interval,
                lambda: self._run_phase(record, phases, index, on_complete),
                label=f"{self.name}.stall",
            )
            return
        record.energy += energy
        if self.energy_probe is not None:
            self.energy_probe.record(energy, self.sim.now,
                                     label=f"{self.name}.{name}")
        record.phases.append(PhaseRecord(
            name=name, start_time=self.sim.now - duration,
            duration=duration, vdd=vdd,
        ))
        self._signal_phase(name, False)
        self._run_phase(record, phases, index + 1, on_complete)

    def _signal_phase(self, name: str, start: bool) -> None:
        """Reflect phase activity on the observable handshake channels."""
        channel = None
        if "precharge" in name:
            channel = self.precharge_channel
        elif "wordline" in name or "read" in name:
            channel = self.wordline_channel
        elif "write" in name:
            channel = self.write_enable_channel
        if channel is None:
            return
        if start:
            if not channel.req.value:
                channel.req.set(True, self.sim.now)
        else:
            if channel.req.value and not channel.ack.value:
                channel.ack.set(True, self.sim.now)
            if channel.req.value:
                channel.req.set(False, self.sim.now)
            if channel.ack.value:
                channel.ack.set(False, self.sim.now)

    def _finish(self, record: OperationRecord, on_complete) -> None:
        address = record.address
        if record.operation is SRAMOperation.WRITE:
            assert record.data is not None
            self._write_row(address, record.data)
            value = record.data
        else:
            value = self._read_row(address)
        self._last_read_value = value
        record.end_time = self.sim.now
        self.records.append(record)
        self.busy = False
        self.done.set(not self.done.value, self.sim.now)
        if on_complete is not None:
            on_complete(record, value)

    # ------------------------------------------------------------------

    def last_record(self) -> OperationRecord:
        """The most recently completed operation's record."""
        if not self.records:
            raise ConfigurationError("no operations have completed yet")
        return self.records[-1]
