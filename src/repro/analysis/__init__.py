"""Analysis and reporting helpers.

The paper's evaluation artefacts are curves and in-text numbers (delay
mismatch versus Vdd, energy per operation versus Vdd, count versus sampled
voltage, QoS versus Vdd).  This package provides the generic machinery the
benchmark harness uses to regenerate them:

* :mod:`repro.analysis.metrics` — energy/delay figures of merit (minimum
  energy point, energy-delay product, crossover voltages);
* :mod:`repro.analysis.sweep` — one-dimensional parameter sweeps with named
  series;
* :mod:`repro.analysis.montecarlo` — Monte-Carlo studies over process
  variation;
* :mod:`repro.analysis.report` — plain-text table/series rendering so every
  benchmark prints "the same rows the paper reports".
"""

from repro.analysis.metrics import (
    crossover_voltage,
    energy_delay_product,
    minimum_energy_point,
    ratio_between,
)
from repro.analysis.montecarlo import MonteCarloStudy, MonteCarloSummary
from repro.analysis.report import Table, format_series, format_table
from repro.analysis.sweep import Series, SweepResult, sweep

__all__ = [
    "crossover_voltage",
    "energy_delay_product",
    "minimum_energy_point",
    "ratio_between",
    "MonteCarloStudy",
    "MonteCarloSummary",
    "Table",
    "format_series",
    "format_table",
    "Series",
    "SweepResult",
    "sweep",
]
