"""Analysis and reporting helpers.

The paper's evaluation artefacts are curves and in-text numbers (delay
mismatch versus Vdd, energy per operation versus Vdd, count versus sampled
voltage, QoS versus Vdd).  This package provides the generic machinery the
benchmark harness uses to regenerate them:

* :mod:`repro.analysis.metrics` — energy/delay figures of merit (minimum
  energy point, energy-delay product, crossover voltages);
* :mod:`repro.analysis.sweep` — one-dimensional parameter sweeps with named
  series;
* :mod:`repro.analysis.montecarlo` — Monte-Carlo studies over process
  variation;
* :mod:`repro.analysis.runner` — the parallel experiment engine: declarative
  :class:`~repro.analysis.runner.ExperimentPlan` grids (1-D sweeps, 2-D
  grids, seeded Monte-Carlo batches) executed serially or over a process
  pool with bit-identical results;
* :mod:`repro.analysis.cache` — the persistent, content-keyed store that
  carries finished plan results and Technology rebuilds across processes
  (keyed by plan hash + quantity fingerprints + code-version salt),
  backed by a pluggable :class:`~repro.analysis.cache.CacheStore`
  (a local ``.repro_cache/`` directory, or an object store);
* :mod:`repro.analysis.objstore` — the S3-style object-store backend
  (ETag-conditional puts, paginated listings) plus the in-process fake
  server tests and CI run against;
* :mod:`repro.analysis.distrib` — sharded multi-machine execution over a
  shared cache root (a directory or an object-store bucket URL): plans
  partition into content-addressed shards that fleet workers claim via
  heartbeated leases, execute, publish and merge bit-identically to the
  serial path;
* :mod:`repro.analysis.session` — the front door: a
  :class:`~repro.analysis.session.RunConfig` resolved through one chain
  (kwargs > ``REPRO_*`` env vars > ``repro.toml`` > defaults) and a
  :class:`~repro.analysis.session.Session` facade that owns the
  executor/cache/distrib stack and adds an async
  ``submit()``/``gather()`` path (see also ``python -m repro``);
* :mod:`repro.analysis.serve` — the multi-tenant experiment service
  (``python -m repro serve``): an HTTP tier over one shared Session
  where tenants POST plans (``MODULE:FACTORY`` specs or campaign
  references), a fair-share VTC scheduler orders them so a burst tenant
  cannot starve a steady one, and an admission gate sheds overload with
  429 + retry hints without ever throttling plans in flight — results
  bit-identical to a direct ``Session.run``;
* :mod:`repro.analysis.campaign` — declarative scenario campaigns
  (``campaigns/*.toml`` cross-products compiled to plan batches run
  through the Session) and the seeded invariant fuzzer with its
  byte-for-byte replayable violation corpus
  (``python -m repro campaign``);
* :mod:`repro.analysis.report` — plain-text table/series rendering so every
  benchmark prints "the same rows the paper reports".
"""

from repro.analysis.metrics import (
    crossover_voltage,
    energy_delay_product,
    minimum_energy_point,
    ratio_between,
)
from repro.analysis.montecarlo import (
    MonteCarloStudy,
    MonteCarloSummary,
    run_study,
)
from repro.analysis.report import Table, format_series, format_table
from repro.analysis.sweep import Series, SweepResult, sweep

#: Runner, cache and distrib names re-exported lazily (PEP 562) so
#: ``python -m repro.analysis.runner`` / ``.cache`` / ``.distrib`` do not
#: import their module twice (once via this package, once as ``__main__``),
#: which would trip runpy's double-import warning.
_LAZY_EXPORTS = {
    "Executor": "repro.analysis.runner",
    "ExperimentPlan": "repro.analysis.runner",
    "ExperimentResult": "repro.analysis.runner",
    "RunRecord": "repro.analysis.runner",
    "TechnologyCache": "repro.analysis.runner",
    "CacheStore": "repro.analysis.cache",
    "LocalFSStore": "repro.analysis.cache",
    "ResultCache": "repro.analysis.cache",
    "open_store": "repro.analysis.cache",
    "FakeObjectServer": "repro.analysis.objstore",
    "ObjectStore": "repro.analysis.objstore",
    "DistribBackend": "repro.analysis.distrib",
    "DistribJob": "repro.analysis.distrib",
    "Worker": "repro.analysis.distrib",
    "RunConfig": "repro.analysis.session",
    "RunHandle": "repro.analysis.session",
    "Session": "repro.analysis.session",
    "default_session": "repro.analysis.session",
    "reset_default_session": "repro.analysis.session",
    "AdmissionGate": "repro.analysis.serve",
    "ExperimentServer": "repro.analysis.serve",
    "ExperimentService": "repro.analysis.serve",
    "ServiceClient": "repro.analysis.serve",
    "VTCScheduler": "repro.analysis.serve",
}


def __getattr__(name):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is not None:
        import importlib

        return getattr(importlib.import_module(module_name), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AdmissionGate",
    "ExperimentServer",
    "ExperimentService",
    "ServiceClient",
    "VTCScheduler",
    "crossover_voltage",
    "energy_delay_product",
    "minimum_energy_point",
    "ratio_between",
    "MonteCarloStudy",
    "MonteCarloSummary",
    "run_study",
    "Table",
    "format_series",
    "format_table",
    "CacheStore",
    "DistribBackend",
    "DistribJob",
    "Executor",
    "ExperimentPlan",
    "ExperimentResult",
    "FakeObjectServer",
    "LocalFSStore",
    "ObjectStore",
    "ResultCache",
    "RunConfig",
    "RunHandle",
    "RunRecord",
    "Session",
    "TechnologyCache",
    "Worker",
    "default_session",
    "open_store",
    "reset_default_session",
    "Series",
    "SweepResult",
    "sweep",
]
