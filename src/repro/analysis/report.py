"""Plain-text tables and series for the benchmark harness.

Every benchmark regenerating a paper figure prints its rows through these
helpers so the output reads like the paper's own reporting: a caption, a
header row, aligned numeric columns using engineering notation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.units import eng

Cell = Union[str, float, int]


@dataclass
class Table:
    """A small caption + header + rows text table."""

    caption: str
    headers: List[str]
    rows: List[List[Cell]] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        """Append one row; the cell count must match the header."""
        if len(cells) != len(self.headers):
            raise ConfigurationError(
                f"expected {len(self.headers)} cells, got {len(cells)}")
        self.rows.append(list(cells))

    def render(self, unit_hints: Optional[Sequence[str]] = None) -> str:
        """Render the table as aligned monospace text."""
        return format_table(self.caption, self.headers, self.rows,
                            unit_hints=unit_hints)


def _format_cell(cell: Cell, unit: str = "") -> str:
    if isinstance(cell, str):
        return cell
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, int):
        return str(cell)
    return eng(float(cell), unit)


def format_table(caption: str, headers: Sequence[str],
                 rows: Sequence[Sequence[Cell]],
                 unit_hints: Optional[Sequence[str]] = None) -> str:
    """Format a caption, headers and rows into aligned monospace text."""
    if not headers:
        raise ConfigurationError("a table needs headers")
    units = list(unit_hints) if unit_hints else [""] * len(headers)
    if len(units) != len(headers):
        raise ConfigurationError("unit_hints must match headers")
    text_rows = [[_format_cell(cell, units[i]) for i, cell in enumerate(row)]
                 for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ConfigurationError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [caption]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in text_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float],
                  x_unit: str = "", y_unit: str = "",
                  x_label: str = "x", y_label: str = "y") -> str:
    """Format one (x, y) series as a two-column text table."""
    if len(xs) != len(ys):
        raise ConfigurationError("xs and ys must have the same length")
    rows = [[x, y] for x, y in zip(xs, ys)]
    return format_table(name, [x_label, y_label], rows,
                        unit_hints=[x_unit, y_unit])
