"""The multi-tenant experiment service: scheduler + gate + one Session.

:class:`ExperimentService` is the tier above
:class:`~repro.analysis.session.Session`: where a session serves one
process, the service serves many concurrent *tenants* submitting plans
over HTTP (:mod:`repro.analysis.serve.http`).  It owns exactly one
session, so every admitted plan inherits the whole execution stack —
process pool, batched kernels, shared
:class:`~repro.analysis.runner.TechnologyCache`, persistent
:class:`~repro.analysis.cache.ResultCache`, distrib fleet sharding —
unchanged, and every served result is bit-identical to a direct
``Session.run`` of the same plan (the engine's ordering/seeding
contract; nothing between the wire and the executor touches values).

The flow of one submission::

    POST body ──parse──▶ tickets ──AdmissionGate──▶ scheduler queue
                                        │429              │
                                        ▼                 ▼ (fair order)
                                   refused          dispatcher threads
                                                          │
                                                    session.run(plan)
                                                          │
                                                  PlanRecord: done

* Parsing accepts the ``run MODULE:FACTORY`` wire format (the exact
  spec string ``python -m repro run --plan`` and ``distrib submit``
  take) or a *campaign reference* (``{"campaign": NAME|FILE}``,
  optionally smoke-trimmed / filtered to labelled runs) that expands to
  one ticket per planned run.
* The :class:`~repro.analysis.serve.admission.AdmissionGate` refuses the
  whole submission (HTTP 429 + retry hint) past the queue-depth /
  queued-cost watermark; admitted plans are never throttled mid-flight.
* The :class:`~repro.analysis.serve.scheduler.PlanScheduler` (FIFO
  baseline or the fair-share :class:`VTCScheduler
  <repro.analysis.serve.scheduler.VTCScheduler>`) orders the queue
  across tenants; a fixed pool of dispatcher threads drains it through
  ``session.run``.
* Every plan's lifecycle lives in a :class:`PlanRecord`
  (``queued → running → done | failed``) whose terminal state carries
  the full :class:`~repro.analysis.runner.RunRecord` provenance;
  :meth:`ExperimentService.wait_for` long-polls state transitions for
  the streaming-status endpoint.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.serve.admission import AdmissionGate, OverloadedError
from repro.analysis.serve.scheduler import (
    PlanScheduler,
    PlanTicket,
    estimate_cost,
    make_scheduler,
)
from repro.analysis.session import RunConfig, Session
from repro.errors import ConfigurationError

__all__ = ["DEFAULT_DISPATCHERS", "ExperimentService", "PlanRecord"]

#: Dispatcher threads draining the queue (the *inter*-plan concurrency;
#: intra-plan parallelism belongs to the session's executor/fleet).
DEFAULT_DISPATCHERS = 2

#: Default tenant when a submission names none.
ANONYMOUS_TENANT = "anonymous"

_TERMINAL_STATES = ("done", "failed")


@dataclass
class PlanRecord:
    """Lifecycle of one admitted plan, from POST to terminal state."""

    plan_id: str
    tenant: str
    #: The wire spec that produced this plan (``MODULE:FACTORY`` or a
    #: campaign reference); informational.
    spec: str
    #: Campaign run label (empty for direct plan submissions).
    label: str
    kind: str
    axes: Dict[str, int]
    points: int
    quantities: Tuple[str, ...]
    cost: float
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Global completion sequence number (0-based, terminal states only)
    #: — the observable the fairness checks order by.
    completed_seq: Optional[int] = None
    error: Optional[str] = None
    #: ``RunRecord.as_dict()`` of the finished run.
    provenance: Optional[Dict[str, object]] = None
    #: Per-point values of the finished run (served by ``…/result``).
    values: Optional[Dict[str, List[float]]] = None

    def as_dict(self, with_values: bool = False) -> Dict[str, object]:
        """The JSON the status/result endpoints serve."""
        payload: Dict[str, object] = {
            "id": self.plan_id,
            "tenant": self.tenant,
            "spec": self.spec,
            "label": self.label,
            "kind": self.kind,
            "axes": dict(self.axes),
            "points": self.points,
            "quantities": list(self.quantities),
            "cost": self.cost,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "completed_seq": self.completed_seq,
            "error": self.error,
            "provenance": self.provenance,
        }
        if with_values:
            payload["values"] = self.values
        return payload


class ExperimentService:
    """Admission, fair-share scheduling and execution over one Session.

    Parameters
    ----------
    config:
        The :class:`~repro.analysis.session.RunConfig` the owned session
        is wired from (``None`` = the usual resolution chain); ignored
        when *session* is given.
    session:
        An existing session to execute on (the service then does *not*
        close it).
    scheduler:
        Scheduler name (``"vtc"`` — the default — or ``"fifo"``) or a
        ready :class:`~repro.analysis.serve.scheduler.PlanScheduler`.
    dispatchers:
        Dispatcher threads draining the queue.
    max_queue_depth / max_queued_cost:
        The admission gate's watermarks (``max_queued_cost=None``
        disables the cost watermark).
    start:
        ``False`` leaves the dispatchers unspawned until :meth:`start`
        — submissions queue but nothing executes, which is how the
        selftests stage deterministic multi-tenant backlogs.
    """

    def __init__(self, config: Optional[RunConfig] = None, *,
                 session: Optional[Session] = None,
                 scheduler: "str | PlanScheduler" = "vtc",
                 dispatchers: int = DEFAULT_DISPATCHERS,
                 max_queue_depth: int = 64,
                 max_queued_cost: Optional[float] = 100_000.0,
                 start: bool = True) -> None:
        if dispatchers < 1:
            raise ConfigurationError("dispatchers must be >= 1")
        if session is not None:
            self.session, self._owns_session = session, False
        else:
            self.session = Session(config)
            self._owns_session = True
        if isinstance(scheduler, PlanScheduler):
            self.scheduler = scheduler
        else:
            self.scheduler = make_scheduler(scheduler)
        self.gate = AdmissionGate(max_depth=max_queue_depth,
                                  max_cost=max_queued_cost)
        self.dispatchers = dispatchers
        self.started_at = time.time()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._records: Dict[str, PlanRecord] = {}
        self._tickets: Dict[str, PlanTicket] = {}
        self._next_id = 0
        self._completed = 0
        self._running = 0
        self._stop = False
        self._threads: List[threading.Thread] = []
        if start:
            self.start()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ExperimentService":
        """Spawn the dispatcher threads (idempotent)."""
        with self._lock:
            if self._stop:
                raise ConfigurationError("service is closed")
            missing = self.dispatchers - len(self._threads)
            for index in range(max(0, missing)):
                thread = threading.Thread(
                    target=self._dispatch_loop,
                    name=f"repro-serve-dispatch-{len(self._threads)}",
                    daemon=True)
                self._threads.append(thread)
                thread.start()
        return self

    def close(self) -> None:
        """Finish in-flight plans, stop dispatching, release the session.

        Plans still queued stay ``queued`` (an operator restarting the
        service resubmits them); plans already running complete — the
        no-mid-flight-throttling invariant holds even at shutdown.
        """
        with self._cond:
            self._stop = True
            self._cond.notify_all()
            # Detach the thread list under the lock (start() appends under
            # it), then join outside it — joining while holding the lock
            # would deadlock dispatchers draining their last plan.
            threads, self._threads = self._threads, []
        for thread in threads:
            thread.join(timeout=60)
        if self._owns_session:
            self.session.close()

    def __enter__(self) -> "ExperimentService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission --------------------------------------------------------

    def submit(self, body: Dict[str, object]) -> List[Dict[str, object]]:
        """Admit one wire submission; returns the created plan records.

        *body* is the parsed JSON of ``POST /v1/plans``: a ``tenant``
        plus either ``plan`` (``MODULE:FACTORY``) or ``campaign``
        (bundled name or TOML path, with optional ``smoke`` and ``runs``
        label filter).  Raises
        :class:`~repro.analysis.serve.admission.OverloadedError` when
        the gate refuses (the whole submission — campaign expansion is
        atomic) and :class:`~repro.errors.ConfigurationError` on a
        malformed body.
        """
        tenant, entries = self._parse(body)
        new_cost = sum(cost for _, _, _, _, cost in entries)
        with self._cond:
            if self._stop:
                raise ConfigurationError("service is closed")
            decision = self.gate.decide(
                new_plans=len(entries), new_cost=new_cost,
                depth=self.scheduler.depth(),
                queued_cost=self.scheduler.queued_cost())
            if not decision.admitted:
                raise OverloadedError(decision)
            records = []
            for spec, label, plan, quantities, cost in entries:
                plan_id = f"p{self._next_id:06d}"
                self._next_id += 1
                record = PlanRecord(
                    plan_id=plan_id, tenant=tenant, spec=spec, label=label,
                    kind=plan.kind, axes=plan.describe_axes(),
                    points=plan.point_count, quantities=tuple(quantities),
                    cost=cost)
                self._records[plan_id] = record
                ticket = PlanTicket(plan_id=plan_id, tenant=tenant,
                                    plan=plan, quantities=dict(quantities),
                                    cost=cost)
                self._tickets[plan_id] = ticket
                self.scheduler.enqueue(ticket)
                records.append(record.as_dict())
            self._cond.notify_all()
        return records

    @staticmethod
    def _parse(body) -> Tuple[str, List[Tuple]]:
        """Validate a wire submission into ``(tenant, entries)``.

        Each entry is ``(spec, label, plan, quantities, cost)``.
        """
        if not isinstance(body, dict):
            raise ConfigurationError(
                f"submission must be a JSON object, got {type(body).__name__}")
        tenant = body.get("tenant", ANONYMOUS_TENANT)
        if not isinstance(tenant, str) or not tenant.strip():
            raise ConfigurationError(
                f"tenant must be a non-empty string, got {tenant!r}")
        tenant = tenant.strip()
        plan_spec = body.get("plan")
        campaign_spec = body.get("campaign")
        if (plan_spec is None) == (campaign_spec is None):
            raise ConfigurationError(
                "submission needs exactly one of 'plan' (MODULE:FACTORY) "
                "or 'campaign' (bundled name or TOML path)")
        unknown = sorted(set(body) - {"tenant", "plan", "campaign",
                                      "smoke", "runs"})
        if unknown:
            raise ConfigurationError(
                f"unknown submission key(s): {', '.join(unknown)}")
        entries: List[Tuple] = []
        if plan_spec is not None:
            if not isinstance(plan_spec, str):
                raise ConfigurationError(
                    f"'plan' must be a MODULE:FACTORY string, "
                    f"got {plan_spec!r}")
            from repro.analysis.distrib import _load_plan_factory

            plan, quantities = _load_plan_factory(plan_spec)
            entries.append((plan_spec, "", plan, dict(quantities),
                            estimate_cost(plan, quantities)))
            return tenant, entries
        if not isinstance(campaign_spec, str):
            raise ConfigurationError(
                f"'campaign' must be a bundled name or TOML path, "
                f"got {campaign_spec!r}")
        from repro.analysis.campaign.spec import (
            builtin_campaign_path,
            compile_campaign,
            load_campaign,
        )

        path = campaign_spec
        if not campaign_spec.endswith(".toml"):
            path = builtin_campaign_path(campaign_spec)
        spec = load_campaign(path)
        if body.get("smoke"):
            spec = spec.trimmed()
        compiled = compile_campaign(spec)
        runs = compiled.runs
        labels = body.get("runs")
        if labels is not None:
            if (not isinstance(labels, list)
                    or not all(isinstance(item, str) for item in labels)):
                raise ConfigurationError(
                    f"'runs' must be a list of run labels, got {labels!r}")
            by_label = {run.label: run for run in compiled.runs}
            missing = sorted(set(labels) - set(by_label))
            if missing:
                raise ConfigurationError(
                    f"campaign {campaign_spec!r} has no run(s) "
                    f"{', '.join(missing)}")
            runs = tuple(by_label[label] for label in labels)
        for run in runs:
            entries.append((campaign_spec, run.label, run.plan,
                            dict(run.quantities),
                            estimate_cost(run.plan, run.quantities)))
        return tenant, entries

    # -- dispatch ----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                ticket = None
                while not self._stop:
                    ticket = self.scheduler.pop()
                    if ticket is not None:
                        break
                    self._cond.wait()
                if ticket is None:  # stopping, nothing claimed
                    return
                record = self._records[ticket.plan_id]
                record.state = "running"
                record.started_at = time.time()
                self._running += 1
                self._cond.notify_all()
            try:
                result = self.session.run(ticket.plan, ticket.quantities)
            except Exception as exc:  # a quantity raised: the plan failed
                with self._cond:
                    self._running -= 1
                    record.state = "failed"
                    record.error = f"{type(exc).__name__}: {exc}"
                    record.finished_at = time.time()
                    record.completed_seq = self._completed
                    self._completed += 1
                    self._tickets.pop(ticket.plan_id, None)
                    self._cond.notify_all()
                continue
            provenance = result.provenance
            self.gate.record_completion(ticket.cost,
                                        provenance.wall_time_s)
            with self._cond:
                self._running -= 1
                record.state = "done"
                record.values = result.values
                record.provenance = provenance.as_dict()
                record.finished_at = time.time()
                record.completed_seq = self._completed
                self._completed += 1
                self._tickets.pop(ticket.plan_id, None)
                self._cond.notify_all()

    # -- queries -----------------------------------------------------------

    def record(self, plan_id: str,
               with_values: bool = False) -> Optional[Dict[str, object]]:
        """The record of *plan_id* as served JSON, or ``None``."""
        with self._lock:
            record = self._records.get(plan_id)
            return None if record is None else record.as_dict(with_values)

    def wait_for(self, plan_id: str, known_state: Optional[str] = None,
                 timeout_s: float = 30.0) -> Optional[Dict[str, object]]:
        """Long-poll: block until the plan leaves *known_state*.

        Returns as soon as the record's state differs from
        *known_state* (or is terminal), or after *timeout_s* — always
        with the current record, so a poll loop converges even on
        timeout.  ``known_state=None`` waits for any terminal state.
        """
        deadline = time.monotonic() + max(0.0, timeout_s)
        with self._cond:
            while True:
                record = self._records.get(plan_id)
                if record is None:
                    return None
                if known_state is None:
                    if record.state in _TERMINAL_STATES:
                        return record.as_dict()
                elif record.state != known_state:
                    return record.as_dict()
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._stop:
                    return record.as_dict()
                self._cond.wait(timeout=remaining)

    def status(self) -> Dict[str, object]:
        """The ``GET /v1/status`` payload: queue, tenants, caches, fleet."""
        with self._lock:
            states = {"queued": 0, "running": 0, "done": 0, "failed": 0}
            tenants: Dict[str, Dict[str, int]] = {}
            for record in self._records.values():
                states[record.state] = states.get(record.state, 0) + 1
                entry = tenants.setdefault(record.tenant,
                                           {"submitted": 0, "completed": 0,
                                            "failed": 0})
                entry["submitted"] += 1
                if record.state == "done":
                    entry["completed"] += 1
                elif record.state == "failed":
                    entry["failed"] += 1
            scheduler = self.scheduler.describe()
        cache = self.session.cache
        payload: Dict[str, object] = {
            "uptime_s": time.time() - self.started_at,
            "dispatchers": self.dispatchers,
            "scheduler": scheduler,
            "admission": self.gate.describe(),
            "plans": states,
            "tenants": tenants,
            "config": self.session.config.describe(),
            "technology_cache": {"entries": len(cache),
                                 "hits": cache.hits,
                                 "misses": cache.misses},
        }
        persistent = self.session.persistent
        if persistent is not None:
            try:
                payload["cache"] = persistent.stats()
            except OSError as exc:  # status must not die with the store
                payload["cache"] = {"error": str(exc)}
        distrib = self.session.distrib
        if distrib is not None:
            from repro.analysis.distrib import fleet_queue_stats

            try:
                payload["distrib"] = fleet_queue_stats(distrib.root)
            except OSError as exc:
                payload["distrib"] = {"error": str(exc)}
        return payload
