"""Multi-tenant experiment service: ``python -m repro serve``.

Everything below the :class:`~repro.analysis.session.Session` layer is
pooled, cached, distrib-shardable and bit-identical — but a session
serves one process.  This package is the tier that lets *many callers*
share one stack: a long-running HTTP service where tenants POST
experiment plans, a fair-share scheduler orders them, and an admission
gate sheds load by refusing — never by throttling work in flight.

====================================  ==================================
module                                role
====================================  ==================================
:mod:`~repro.analysis.serve.scheduler`  dispatch order: FIFO baseline +
                                        fair-share ``VTCScheduler``
                                        (per-tenant virtual-time
                                        counters weighted by estimated
                                        point-cost)
:mod:`~repro.analysis.serve.admission`  OIT-style overload gate:
                                        queue-depth / queued-cost
                                        watermarks, 429 + retry hint,
                                        no mid-flight throttling
:mod:`~repro.analysis.serve.service`    ``ExperimentService``: admission
                                        → scheduling → execution on one
                                        shared ``Session``
:mod:`~repro.analysis.serve.http`       the stdlib HTTP server
                                        (``POST /v1/plans``,
                                        ``GET /v1/plans/{id}[/result]``,
                                        ``GET /v1/status``)
:mod:`~repro.analysis.serve.client`     ``ServiceClient`` — the tenant
                                        side of the same wire protocol
====================================  ==================================

The wire format for a plan is the CLI's existing ``MODULE:FACTORY``
spec, so anything ``python -m repro run --plan`` can execute can also be
POSTed; campaign references (``{"campaign": "paper_space", "smoke":
true}``) expand server-side into one plan per planned run.  Results are
bit-identical to a direct ``Session.run`` of the same plan — the
service adds ordering and admission, never arithmetic.

``python -m repro serve --selftest`` (also chained by ``python -m repro
selftest``) pins the subsystem's three invariants end to end over a real
socket: a 50-plan burst tenant cannot starve a steady tenant under the
VTC scheduler, the overload gate refuses new admissions past the
watermark while every admitted plan completes, and every served result
is byte-identical to the direct session run.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.runner import ExperimentPlan

from repro.analysis.serve.admission import (  # noqa: F401 (re-exports)
    AdmissionDecision,
    AdmissionGate,
    OverloadedError,
)
from repro.analysis.serve.client import (  # noqa: F401
    PlanFailed,
    ServiceClient,
    ServiceError,
    ServiceOverloaded,
)
from repro.analysis.serve.http import DEFAULT_PORT, ExperimentServer  # noqa: F401
from repro.analysis.serve.scheduler import (  # noqa: F401
    FIFOScheduler,
    PlanScheduler,
    PlanTicket,
    SCHEDULERS,
    VTCScheduler,
    estimate_cost,
    make_scheduler,
)
from repro.analysis.serve.service import (  # noqa: F401
    ExperimentService,
    PlanRecord,
)

__all__ = [
    "AdmissionDecision",
    "AdmissionGate",
    "DEFAULT_PORT",
    "ExperimentServer",
    "ExperimentService",
    "FIFOScheduler",
    "OverloadedError",
    "PlanFailed",
    "PlanRecord",
    "PlanScheduler",
    "PlanTicket",
    "SCHEDULERS",
    "ServiceClient",
    "ServiceError",
    "ServiceOverloaded",
    "VTCScheduler",
    "demo_plan",
    "estimate_cost",
    "main",
    "make_scheduler",
    "smoke_mc_plan",
    "steady_plan",
]


# ---------------------------------------------------------------------------
# Wire-format demo workloads (MODULE:FACTORY specs used by the selftest,
# the CI smoke script and the docs; all pure, all fast).


def demo_plan() -> Tuple[ExperimentPlan, Dict]:
    """An 8-point gate sweep — the burst tenant's workload::

        {"tenant": "you", "plan": "repro.analysis.serve:demo_plan"}
    """
    from repro.analysis.runner import _selftest_delay, _selftest_energy

    vdds = [0.30 + 0.05 * i for i in range(8)]
    return (ExperimentPlan.sweep("vdd", vdds),
            {"delay": _selftest_delay, "energy": _selftest_energy})


def steady_plan() -> Tuple[ExperimentPlan, Dict]:
    """A 6-point gate sweep with a distinct axis (the steady tenant)."""
    from repro.analysis.runner import _selftest_delay, _selftest_energy

    vdds = [0.32 + 0.06 * i for i in range(6)]
    return (ExperimentPlan.sweep("vdd", vdds),
            {"delay": _selftest_delay, "energy": _selftest_energy})


def smoke_mc_plan() -> Tuple[ExperimentPlan, Dict]:
    """A pinned-seed Monte-Carlo plan (48 perturbed technologies).

    Heavy enough (one technology rebuild per sample) that a burst of
    these keeps a real server's queue visibly backlogged — what the CI
    smoke script needs to observe fair interleaving over the wire.
    """
    from repro.models.technology import get_technology

    return (ExperimentPlan.monte_carlo(48,
                                       technology=get_technology("cmos90"),
                                       seed=20260808),
            {"delay": _smoke_mc_delay})


def _smoke_mc_delay(technology) -> float:
    from repro.models.gate import GateModel

    return GateModel(technology=technology).delay(0.4)


# ---------------------------------------------------------------------------
# Selftest (python -m repro serve --selftest; chained by repro selftest)


def _hermetic_config():
    from repro.analysis.session import RunConfig

    return RunConfig.resolve(environ={}, config_file=False)


def _selftest() -> int:  # noqa: C901 - one linear script of checks
    """Fairness, overload and byte-identity over a real HTTP socket."""
    from repro.analysis.session import Session

    failures = 0

    def check(label: str, ok: bool) -> None:
        nonlocal failures
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
        if not ok:
            failures += 1

    print("serve selftest")

    # -- scheduler contracts (no sockets) ---------------------------------
    def ticket(tenant: str, n: int, cost: float = 1.0) -> PlanTicket:
        plan, quantities = steady_plan()
        return PlanTicket(plan_id=f"{tenant}{n}", tenant=tenant, plan=plan,
                          quantities=quantities, cost=cost)

    fifo = FIFOScheduler()
    for i in range(4):
        fifo.enqueue(ticket("a", i))
    for i in range(2):
        fifo.enqueue(ticket("b", i))
    fifo_order = [fifo.pop().plan_id for _ in range(6)]
    check("FIFO baseline serves strictly in arrival order",
          fifo_order == ["a0", "a1", "a2", "a3", "b0", "b1"])

    vtc = VTCScheduler()
    for i in range(4):
        vtc.enqueue(ticket("a", i))
    for i in range(2):
        vtc.enqueue(ticket("b", i))
    vtc_order = [vtc.pop().plan_id for _ in range(6)]
    check("VTC interleaves a burst with a steady tenant",
          vtc_order == ["a0", "b0", "a1", "b1", "a2", "a3"])
    check("VTC counters charge dispatched cost per tenant",
          vtc.counters == {"a": 4.0, "b": 2.0})

    lifted = VTCScheduler()
    for i in range(5):
        lifted.enqueue(ticket("a", i, cost=10.0))
    lifted.pop(), lifted.pop()  # a's counter: 20
    lifted.enqueue(ticket("b", 0, cost=10.0))
    check("a tenant returning from idle is lifted to the backlog floor",
          lifted.counters["b"] == 20.0
          and [lifted.pop().plan_id for _ in range(2)] == ["a2", "b0"])

    # -- admission gate ----------------------------------------------------
    gate = AdmissionGate(max_depth=4, max_cost=100.0)
    check("gate admits under both watermarks",
          gate.decide(2, 20.0, depth=0, queued_cost=0.0).admitted)
    refused_depth = gate.decide(3, 3.0, depth=2, queued_cost=10.0)
    refused_cost = gate.decide(1, 95.0, depth=0, queued_cost=10.0)
    check("gate refuses past either watermark, with a positive retry hint",
          not refused_depth.admitted and not refused_cost.admitted
          and refused_depth.retry_after_s > 0
          and "watermark" in refused_depth.reason)

    # -- fairness end to end over a real socket ----------------------------
    config = _hermetic_config()
    burst_n, steady_n = 50, 8
    service = ExperimentService(config, scheduler="vtc", dispatchers=1,
                                max_queue_depth=4 * (burst_n + steady_n),
                                max_queued_cost=None, start=False)
    with service, ExperimentServer(service, port=0) as server:
        burst = ServiceClient(server.url)
        steady = ServiceClient(server.url)
        burst_ids = [burst.submit_plan("repro.analysis.serve:demo_plan",
                                       tenant="burst")["id"]
                     for _ in range(burst_n)]
        steady_ids = [steady.submit_plan("repro.analysis.serve:steady_plan",
                                         tenant="steady")["id"]
                      for _ in range(steady_n)]
        check("submissions queue while the service is not started",
              service.status()["plans"]["queued"] == burst_n + steady_n)
        service.start()
        records = {pid: steady.wait(pid, timeout_s=120)
                   for pid in burst_ids + steady_ids}
        check("every admitted plan completes",
              all(record["state"] == "done"
                  for record in records.values()))
        steady_seqs = [records[pid]["completed_seq"] for pid in steady_ids]
        check("steady tenant interleaves by virtual time (no starvation)",
              all(seq <= 3 * (index + 1) + 1
                  for index, seq in enumerate(steady_seqs))
              and max(steady_seqs) < burst_n)
        status = steady.status()
        virtual = status["scheduler"]["virtual_time"]
        check("per-tenant virtual-time counters surface in /v1/status",
              virtual.get("burst", 0) > virtual.get("steady", 0) > 0)

        with Session(config) as direct:
            expect_burst = direct.run(*demo_plan()).values
            expect_steady = direct.run(*steady_plan()).values
        check("served results are byte-identical to direct Session.run",
              all(burst.result(pid)["values"] == expect_burst
                  for pid in burst_ids[:3] + burst_ids[-3:])
              and all(steady.result(pid)["values"] == expect_steady
                      for pid in steady_ids))

    # -- overload: refuse new admissions, finish everything admitted -------
    service = ExperimentService(config, scheduler="vtc", dispatchers=1,
                                max_queue_depth=6, start=False)
    with service, ExperimentServer(service, port=0) as server:
        client = ServiceClient(server.url)
        admitted = [client.submit_plan("repro.analysis.serve:steady_plan",
                                       tenant="burst")["id"]
                    for _ in range(6)]
        overloaded = False
        retry_hint = 0.0
        try:
            client.submit_plan("repro.analysis.serve:steady_plan",
                               tenant="burst")
        except ServiceOverloaded as exc:
            overloaded = True
            retry_hint = exc.retry_after_s
        check("past the watermark, new admissions get 429 + retry hint",
              overloaded and retry_hint > 0)
        service.start()
        finished = [client.wait(pid, timeout_s=60) for pid in admitted]
        check("every in-flight plan completes despite the overload",
              all(record["state"] == "done" for record in finished))
        reopened = client.submit_plan("repro.analysis.serve:steady_plan",
                                      tenant="burst")
        check("the gate reopens once the queue drains",
              client.wait(reopened["id"], timeout_s=60)["state"] == "done")
        check("admission counters record the refusal",
              client.status()["admission"]["rejected"] == 1)

    print("selftest:", "PASS" if failures == 0 else f"{failures} FAILURES")
    return 0 if failures == 0 else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI shim mirroring the sibling analysis modules."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.serve",
        description="Smoke-test the multi-tenant experiment service "
                    "(the full CLI lives at python -m repro serve).")
    parser.add_argument("--selftest", action="store_true",
                        help="run the fairness/overload/identity checks")
    args = parser.parse_args(argv)
    if not args.selftest:
        parser.print_help()
        return 2
    return _selftest()
