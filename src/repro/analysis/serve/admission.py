"""Overload admission control for the experiment service (OIT-style).

The service protects itself at exactly one point: *admission*.  Before a
plan enters the scheduler queue, the gate compares the queue the plan
would join against two watermarks — queue depth (plans waiting) and
queued cost (estimated quantity evaluations waiting,
:func:`~repro.analysis.serve.scheduler.estimate_cost`) — and refuses the
whole submission when either would be exceeded.  A refusal is an HTTP
429 with a ``retry_after_s`` hint derived from the observed drain rate.

What the gate never does is throttle work already admitted: a plan that
entered the queue runs to completion no matter how overloaded the
service becomes afterwards — the OIT exemplar's invariant ("no
mid-interaction throttling").  Dropping half-finished experiments wastes
every point already evaluated and breaks the service's promise that an
admitted plan's result is exactly a direct ``Session.run``; refusing new
work costs the client one retry.

Multi-plan submissions (a campaign reference expanding to N planned
runs) are admitted atomically: all N tickets or a 429 — a half-admitted
campaign would hand the client a result set it never asked for.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError

__all__ = ["AdmissionDecision", "AdmissionGate", "OverloadedError"]

#: Fallback drain estimate (cost units / s) before anything completed.
_BOOTSTRAP_RATE = 1000.0
#: Smoothing of the drain-rate EMA (per completed plan).
_RATE_ALPHA = 0.3
#: Bounds of the retry hint handed to clients.
_MIN_RETRY_S, _MAX_RETRY_S = 0.1, 60.0


class OverloadedError(ConfigurationError):
    """Raised by the service when the gate refuses a submission.

    Carries the decision so the HTTP layer can answer 429 with the
    retry hint in both the ``Retry-After`` header and the JSON body.
    """

    def __init__(self, decision: "AdmissionDecision") -> None:
        super().__init__(decision.reason)
        self.decision = decision


@dataclass(frozen=True)
class AdmissionDecision:
    """One gate verdict: admitted, or refused with a retry hint."""

    admitted: bool
    reason: str = ""
    #: Seconds the client should wait before retrying (refusals only).
    retry_after_s: float = 0.0


class AdmissionGate:
    """Watermark gate over the scheduler queue.

    Parameters
    ----------
    max_depth:
        Plans the queue may hold before new submissions are refused.
    max_cost:
        Estimated queued cost (quantity evaluations) the queue may hold
        before new submissions are refused.  ``None`` disables the cost
        watermark.

    The gate is its own small lock domain: :meth:`record_completion`
    is called from dispatcher threads while :meth:`decide` runs under
    the service's queue lock, and the drain-rate EMA must not require
    the queue lock to update.
    """

    def __init__(self, max_depth: int = 64,
                 max_cost: Optional[float] = 100_000.0) -> None:
        if max_depth < 1:
            raise ConfigurationError("max_depth must be >= 1")
        if max_cost is not None and max_cost <= 0:
            raise ConfigurationError("max_cost must be > 0 (or None)")
        self.max_depth = max_depth
        self.max_cost = max_cost
        self._lock = threading.Lock()
        self._rate = _BOOTSTRAP_RATE  # cost units drained per second
        self.admitted = 0
        self.rejected = 0

    # -- the verdict -------------------------------------------------------

    def decide(self, new_plans: int, new_cost: float,
               depth: int, queued_cost: float) -> AdmissionDecision:
        """Admit *new_plans* tickets of *new_cost* total, or refuse.

        *depth* and *queued_cost* describe the queue the plans would
        join (in-flight plans are not counted — they are beyond the
        gate's reach by design).  The submission is atomic: either every
        ticket fits under both watermarks or none is admitted.
        """
        if depth + new_plans > self.max_depth:
            return self._refuse(
                f"queue depth watermark: {depth} queued + {new_plans} "
                f"submitted > {self.max_depth}", queued_cost)
        if self.max_cost is not None and queued_cost + new_cost > self.max_cost:
            return self._refuse(
                f"queued cost watermark: {queued_cost:g} queued + "
                f"{new_cost:g} submitted > {self.max_cost:g}", queued_cost)
        with self._lock:
            self.admitted += new_plans
        return AdmissionDecision(admitted=True)

    def _refuse(self, reason: str, queued_cost: float) -> AdmissionDecision:
        with self._lock:
            self.rejected += 1
            rate = self._rate
        # How long until the backlog drains below the watermark, by the
        # observed rate — the "come back when there is room" hint.
        retry = min(max(queued_cost / max(rate, 1e-9), _MIN_RETRY_S),
                    _MAX_RETRY_S)
        return AdmissionDecision(admitted=False, reason=reason,
                                 retry_after_s=retry)

    # -- drain-rate feedback ----------------------------------------------

    def record_completion(self, cost: float, wall_time_s: float) -> None:
        """Fold one finished plan into the drain-rate EMA."""
        if wall_time_s <= 0:
            return
        observed = cost / wall_time_s
        with self._lock:
            self._rate += _RATE_ALPHA * (observed - self._rate)

    def describe(self) -> Dict[str, object]:
        """JSON-able gate state for ``GET /v1/status``."""
        with self._lock:
            return {
                "max_depth": self.max_depth,
                "max_cost": self.max_cost,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "drain_rate_cost_per_s": self._rate,
            }
