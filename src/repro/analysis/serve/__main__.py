"""``python -m repro.analysis.serve`` — thin alias of the package CLI."""

import sys

# Under ``python -m`` the package executes as ``__main__`` while imports
# resolve to ``repro.analysis.serve``; dispatch to the canonical copy,
# matching the package's other CLIs.
from repro.analysis.serve import main

if __name__ == "__main__":
    sys.exit(main())
