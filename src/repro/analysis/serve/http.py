"""HTTP front of the experiment service (stdlib ``http.server``).

The same idiom as :class:`~repro.analysis.objstore.FakeObjectServer`: a
:class:`~http.server.ThreadingHTTPServer` with keep-alive, serving JSON
from a daemon thread, nothing beyond the standard library.  Four
endpoints::

    POST /v1/plans               submit plans (MODULE:FACTORY spec or a
                                 campaign reference); 201 with the
                                 created records, 429 + Retry-After when
                                 the admission gate refuses, 400 on a
                                 malformed body
    GET  /v1/plans/{id}          one plan's record; ``?wait=S`` long-
                                 polls until the state changes (pass the
                                 last seen state as ``&state=X``), which
                                 is how clients stream status without
                                 busy-polling
    GET  /v1/plans/{id}/result   200 values + provenance when done, 202
                                 + record while queued/running, 500 +
                                 error when the plan failed
    GET  /v1/status              scheduler queue, per-tenant virtual
                                 time, admission counters, cache and
                                 distrib fleet stats
    GET  /v1/dashboard           the same state as a live, auto-
                                 refreshing HTML page (rendered by
                                 :mod:`repro.analysis.obs.dashboard`,
                                 with the committed bench trajectory
                                 as inline sparklines when the history
                                 file is present)

Request handling threads only ever *enqueue* work and read records —
execution stays on the service's dispatcher threads — so a slow client
cannot hold a dispatch slot.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.analysis.serve.admission import OverloadedError
from repro.analysis.serve.service import ExperimentService
from repro.errors import ConfigurationError

__all__ = ["DEFAULT_PORT", "ExperimentServer"]

#: Default service port (the object store's neighbour).
DEFAULT_PORT = 9210

#: Longest single long-poll a client may request (it re-polls after).
MAX_WAIT_S = 60.0


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes one request against the owning server's service."""

    protocol_version = "HTTP/1.1"
    server_version = "ReproExperimentService/1.0"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # selftests and CI logs stay readable

    @property
    def _service(self) -> ExperimentService:
        return self.server.service  # type: ignore[attr-defined]

    def _reply(self, status: int, payload: Dict[str, object],
               headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _route(self) -> Tuple[str, Dict[str, str]]:
        parsed = urlsplit(self.path)
        query = {name: values[-1] for name, values in
                 parse_qs(parsed.query, keep_blank_values=True).items()}
        return parsed.path.rstrip("/"), query

    # -- verbs -------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler convention)
        path, _ = self._route()
        if path != "/v1/plans":
            self._reply(404, {"error": f"no such endpoint {path!r}"})
            return
        length = int(self.headers.get("Content-Length", "0"))
        raw = self.rfile.read(length) if length else b""
        try:
            body = json.loads(raw) if raw else {}
        except ValueError as exc:
            self._reply(400, {"error": f"body is not valid JSON: {exc}"})
            return
        try:
            records = self._service.submit(body)
        except OverloadedError as exc:
            decision = exc.decision
            self._reply(429, {
                "error": decision.reason,
                "retry_after_s": decision.retry_after_s,
            }, headers={"Retry-After":
                        str(max(1, round(decision.retry_after_s)))})
            return
        except ConfigurationError as exc:
            self._reply(400, {"error": str(exc)})
            return
        self._reply(201, {"plans": records})

    def do_GET(self) -> None:  # noqa: N802
        path, query = self._route()
        if path == "/v1/status":
            self._reply(200, self._service.status())
            return
        if path == "/v1/dashboard":
            self._get_dashboard()
            return
        if path.startswith("/v1/plans/"):
            rest = path[len("/v1/plans/"):]
            plan_id, _, tail = rest.partition("/")
            if tail not in ("", "result"):
                self._reply(404, {"error": f"no such endpoint {path!r}"})
                return
            if tail == "result":
                self._get_result(plan_id)
            else:
                self._get_record(plan_id, query)
            return
        self._reply(404, {"error": f"no such endpoint {path!r}"})

    def _get_record(self, plan_id: str, query: Dict[str, str]) -> None:
        wait_s = 0.0
        if "wait" in query:
            try:
                wait_s = min(max(0.0, float(query["wait"])), MAX_WAIT_S)
            except ValueError:
                self._reply(400, {"error": "wait must be a number"})
                return
        if wait_s > 0:
            record = self._service.wait_for(plan_id,
                                            known_state=query.get("state"),
                                            timeout_s=wait_s)
        else:
            record = self._service.record(plan_id)
        if record is None:
            self._reply(404, {"error": f"no plan {plan_id!r}"})
            return
        self._reply(200, {"plan": record})

    def _get_dashboard(self) -> None:
        """``GET /v1/dashboard`` — the status payload as a live page."""
        from repro.analysis.obs.dashboard import render_dashboard
        from repro.analysis.obs.trajectory import load_history

        history_path = getattr(self.server, "history_path", None)
        trajectory = load_history(history_path) if history_path else None
        page = render_dashboard(service=self._service.status(),
                                trajectory=trajectory or None,
                                title="repro experiment service").encode()
        self.send_response(200)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(page)))
        self.end_headers()
        self.wfile.write(page)

    def _get_result(self, plan_id: str) -> None:
        record = self._service.record(plan_id, with_values=True)
        if record is None:
            self._reply(404, {"error": f"no plan {plan_id!r}"})
            return
        state = record["state"]
        if state == "failed":
            self._reply(500, {"error": record["error"], "plan": record})
            return
        if state != "done":
            record.pop("values", None)
            self._reply(202, {"plan": record})
            return
        self._reply(200, {
            "id": record["id"],
            "values": record["values"],
            "provenance": record["provenance"],
        })


class ExperimentServer:
    """The service bound to a socket, serving from a daemon thread.

    Usable standalone (``python -m repro serve start``) or as a context
    manager in tests::

        with ExperimentServer(service, port=0) as server:
            client = ServiceClient(server.url)
    """

    def __init__(self, service: ExperimentService,
                 host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 history_path: Optional[str] = None) -> None:
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), _ServiceHandler)
        self._httpd.daemon_threads = True
        self._httpd.service = service  # type: ignore[attr-defined]
        # The committed bench trajectory the dashboard plots; None keeps
        # /v1/dashboard alive with the trajectory section marked dark.
        self._httpd.history_path = history_path  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        """``http://host:port`` clients point at."""
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ExperimentServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-serve-http", daemon=True)
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's foreground mode)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=10)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "ExperimentServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
