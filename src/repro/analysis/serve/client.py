"""Client for the experiment service (stdlib ``http.client``).

:class:`ServiceClient` speaks the four ``/v1`` endpoints of
:mod:`repro.analysis.serve.http` over one persistent keep-alive
connection (re-opened transparently when the server idles it out),
guarded by a lock so many submitting threads — the multi-tenant smoke
tests drive one client per tenant from concurrent threads — can share
an instance.

Read-only GETs are retried once on transport failure; a POST is never
replayed (a submission is not idempotent — a replay whose first copy was
committed would enqueue the plan twice and charge the tenant's fair
share twice).

::

    client = ServiceClient("http://127.0.0.1:9210")
    plan = client.submit_plan("repro.analysis.distrib:selftest_plan",
                              tenant="alice")
    record = client.wait(plan["id"])          # long-polls until terminal
    values = client.result(plan["id"])["values"]
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.parse
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["ServiceClient", "ServiceError", "ServiceOverloaded"]


class ServiceError(OSError):
    """The service misbehaved: unreachable, or an unexpected status."""


class ServiceOverloaded(ServiceError):
    """The admission gate refused the submission (HTTP 429)."""

    def __init__(self, reason: str, retry_after_s: float) -> None:
        super().__init__(reason)
        self.retry_after_s = retry_after_s


class PlanFailed(ServiceError):
    """The submitted plan's execution raised (HTTP 500 on ``/result``)."""


class ServiceClient:
    """One tenant-side handle on a running experiment service."""

    def __init__(self, url: str, timeout_s: float = 70.0) -> None:
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("http", "https") or not parsed.netloc \
                or parsed.path.strip("/"):
            raise ConfigurationError(
                f"service URL must be http(s)://host:port, got {url!r}")
        self.url = f"{parsed.scheme}://{parsed.netloc}"
        self.timeout_s = timeout_s
        self._scheme = parsed.scheme
        self._netloc = parsed.netloc
        self._lock = threading.Lock()
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport ---------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        conn_type = (http.client.HTTPSConnection
                     if self._scheme == "https"
                     else http.client.HTTPConnection)
        return conn_type(self._netloc, timeout=self.timeout_s)

    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None) -> Tuple[int, Dict]:
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        with self._lock:
            last_error: Optional[Exception] = None
            for attempt in (0, 1):
                sent = False
                try:
                    if self._conn is None:
                        self._conn = self._connect()
                    self._conn.request(method, path, body=payload,
                                       headers=headers)
                    sent = True
                    response = self._conn.getresponse()
                    data = response.read()
                    break
                except (http.client.HTTPException, OSError) as exc:
                    last_error = exc
                    if self._conn is not None:
                        self._conn.close()
                        self._conn = None
                    # Replaying a GET is safe; a sent POST is not.
                    if attempt or (sent and method != "GET"):
                        raise ServiceError(
                            f"experiment service {self.url} unreachable: "
                            f"{exc}") from exc
            else:  # pragma: no cover - loop always breaks or raises
                raise ServiceError(
                    f"experiment service {self.url} unreachable: "
                    f"{last_error}")
        try:
            parsed = json.loads(data) if data else {}
        except ValueError as exc:
            raise ServiceError(
                f"{method} {path}: malformed JSON response: {exc}") from exc
        return response.status, parsed

    def close(self) -> None:
        """Drop the persistent connection (a new request reopens it)."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- endpoints ---------------------------------------------------------

    def submit(self, body: Dict[str, object]) -> List[Dict[str, object]]:
        """POST a raw submission body; returns the created plan records."""
        status, payload = self._request("POST", "/v1/plans", body=body)
        if status == 429:
            raise ServiceOverloaded(
                str(payload.get("error", "overloaded")),
                float(payload.get("retry_after_s", 1.0)))
        if status == 400:
            raise ConfigurationError(str(payload.get("error",
                                                     "bad submission")))
        if status != 201:
            raise ServiceError(f"POST /v1/plans: unexpected status {status}")
        return list(payload["plans"])

    def submit_plan(self, spec: str, tenant: Optional[str] = None,
                    ) -> Dict[str, object]:
        """Submit one ``MODULE:FACTORY`` plan; returns its record."""
        body: Dict[str, object] = {"plan": spec}
        if tenant is not None:
            body["tenant"] = tenant
        return self.submit(body)[0]

    def submit_campaign(self, campaign: str, tenant: Optional[str] = None,
                        smoke: bool = False,
                        runs: Optional[Sequence[str]] = None,
                        ) -> List[Dict[str, object]]:
        """Submit a campaign reference; returns one record per run."""
        body: Dict[str, object] = {"campaign": campaign}
        if tenant is not None:
            body["tenant"] = tenant
        if smoke:
            body["smoke"] = True
        if runs is not None:
            body["runs"] = list(runs)
        return self.submit(body)

    def plan(self, plan_id: str, wait_s: float = 0.0,
             known_state: Optional[str] = None) -> Dict[str, object]:
        """One plan's record; ``wait_s`` long-polls for a state change."""
        query = {}
        if wait_s > 0:
            query["wait"] = f"{wait_s:g}"
            if known_state is not None:
                query["state"] = known_state
        path = f"/v1/plans/{urllib.parse.quote(plan_id)}"
        if query:
            path += "?" + urllib.parse.urlencode(query)
        status, payload = self._request("GET", path)
        if status == 404:
            raise ConfigurationError(str(payload.get("error",
                                                     f"no plan {plan_id}")))
        if status != 200:
            raise ServiceError(
                f"GET /v1/plans/{plan_id}: unexpected status {status}")
        return dict(payload["plan"])

    def wait(self, plan_id: str,
             timeout_s: Optional[float] = None) -> Dict[str, object]:
        """Long-poll until the plan reaches a terminal state.

        Raises :class:`ServiceError` on timeout; returns the terminal
        record (``done`` or ``failed``) otherwise.
        """
        deadline = (None if timeout_s is None
                    else time.monotonic() + timeout_s)
        record = self.plan(plan_id)
        while record["state"] not in ("done", "failed"):
            remaining = 30.0
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServiceError(
                        f"plan {plan_id} still {record['state']} after "
                        f"{timeout_s:g}s")
            record = self.plan(plan_id, wait_s=min(remaining, 30.0),
                               known_state=str(record["state"]))
        return record

    def result(self, plan_id: str) -> Dict[str, object]:
        """Values + provenance of a finished plan.

        202 (still queued/running) raises :class:`ServiceError`; a
        failed plan raises :class:`PlanFailed` with the server's error.
        """
        path = f"/v1/plans/{urllib.parse.quote(plan_id)}/result"
        status, payload = self._request("GET", path)
        if status == 404:
            raise ConfigurationError(str(payload.get("error",
                                                     f"no plan {plan_id}")))
        if status == 202:
            state = payload.get("plan", {}).get("state", "pending")
            raise ServiceError(f"plan {plan_id} is still {state}; "
                               "wait() for it first")
        if status == 500:
            raise PlanFailed(str(payload.get("error", "plan failed")))
        if status != 200:
            raise ServiceError(
                f"GET {path}: unexpected status {status}")
        return payload

    def status(self) -> Dict[str, object]:
        """The service's ``/v1/status`` payload."""
        status, payload = self._request("GET", "/v1/status")
        if status != 200:
            raise ServiceError(f"GET /v1/status: unexpected status {status}")
        return payload
