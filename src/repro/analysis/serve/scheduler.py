"""Fair-share plan scheduling for the multi-tenant experiment service.

The service admits plans from many tenants into one queue and hands them
to a shared :class:`~repro.analysis.session.Session`.  *Which* queued
plan runs next is this module's only concern, behind one dispatch
interface (:class:`PlanScheduler`) with two implementations:

* :class:`FIFOScheduler` — the baseline: global arrival order,
  tenant-blind.  A tenant that bursts 50 plans makes every other tenant
  wait behind all 50.
* :class:`VTCScheduler` — fair share via per-tenant *virtual-time
  counters*, modeled on the fairserve ``VTCScheduler`` exemplar.  Each
  tenant carries a counter of virtual time consumed, weighted by the
  estimated point-cost of its dispatched plans
  (:func:`estimate_cost`); dispatch always picks the backlogged tenant
  with the *smallest* counter.  A burst tenant's counter races ahead
  after a few dispatches, so a steady tenant's plans interleave instead
  of queuing behind the burst — the no-starvation invariant the service
  selftest pins.

  A tenant arriving with an empty queue has its counter *lifted* to the
  smallest counter among currently backlogged tenants (never lowered):
  idle time earns no banked credit with which to starve everyone later,
  but a newcomer also never starts behind the pack.

Schedulers order work; they never reject it (that is the admission
gate's job, :mod:`repro.analysis.serve.admission`) and never touch plans
already dispatched.  They are deliberately unsynchronized — the owning
:class:`~repro.analysis.serve.service.ExperimentService` serializes
every call under its queue lock — and deterministic: ties break on
``(arrival sequence)`` for FIFO and ``(counter, tenant name, arrival)``
for VTC, so a replay of the same submission order dispatches in the
same order.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Mapping, Optional, Tuple

from repro.analysis.runner import ExperimentPlan
from repro.errors import ConfigurationError

__all__ = [
    "FIFOScheduler",
    "PlanScheduler",
    "PlanTicket",
    "SCHEDULERS",
    "VTCScheduler",
    "estimate_cost",
    "make_scheduler",
]


def estimate_cost(plan: ExperimentPlan,
                  quantities: Mapping[str, Callable]) -> float:
    """Estimated cost of one plan: points × quantities evaluated.

    The unit is "quantity evaluations" — the same proxy the distrib
    layer shards by.  It weights both the virtual-time counters (a
    100-point plan consumes 100× the fair share of a 1-point plan) and
    the admission gate's queued-cost watermark.  Deliberately a static
    estimate: admission must answer before anything executes.
    """
    return float(plan.point_count * max(1, len(quantities)))


@dataclass
class PlanTicket:
    """One admitted plan waiting for (or holding) a dispatch slot."""

    #: Service-assigned id (``p000001`` …), unique per service lifetime.
    plan_id: str
    #: The tenant the fair-share accounting charges this plan to.
    tenant: str
    plan: ExperimentPlan
    quantities: Dict[str, Callable]
    #: :func:`estimate_cost` of the plan, fixed at admission.
    cost: float
    #: Monotonic arrival sequence number (assigned by the scheduler).
    seq: int = field(default=-1, compare=False)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self.quantities)


class PlanScheduler:
    """The dispatch interface the service drives.

    ``enqueue`` accepts an admitted ticket; ``pop`` returns the next
    ticket to execute (``None`` when idle); ``depth``/``queued_cost``
    feed the admission gate's watermarks; ``describe`` feeds
    ``GET /v1/status``.  Implementations must be deterministic given the
    same call sequence and must never drop or reorder a tenant's *own*
    tickets (per-tenant FIFO: a tenant's plans run in its submission
    order — fairness decides *between* tenants, not within one).
    """

    #: Registry name (``scheduler=`` spelling); set by subclasses.
    name = "base"

    def __init__(self) -> None:
        self._seq = itertools.count()

    def enqueue(self, ticket: PlanTicket) -> None:
        raise NotImplementedError

    def pop(self) -> Optional[PlanTicket]:
        raise NotImplementedError

    def depth(self) -> int:
        raise NotImplementedError

    def queued_cost(self) -> float:
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        raise NotImplementedError

    def _stamp(self, ticket: PlanTicket) -> PlanTicket:
        ticket.seq = next(self._seq)
        return ticket


class FIFOScheduler(PlanScheduler):
    """Global arrival order — the tenant-blind baseline."""

    name = "fifo"

    def __init__(self) -> None:
        super().__init__()
        self._queue: Deque[PlanTicket] = deque()

    def enqueue(self, ticket: PlanTicket) -> None:
        self._queue.append(self._stamp(ticket))

    def pop(self) -> Optional[PlanTicket]:
        return self._queue.popleft() if self._queue else None

    def depth(self) -> int:
        return len(self._queue)

    def queued_cost(self) -> float:
        return sum(ticket.cost for ticket in self._queue)

    def describe(self) -> Dict[str, object]:
        tenants: Dict[str, int] = {}
        for ticket in self._queue:
            tenants[ticket.tenant] = tenants.get(ticket.tenant, 0) + 1
        return {
            "scheduler": self.name,
            "depth": self.depth(),
            "queued_cost": self.queued_cost(),
            "queued_by_tenant": tenants,
        }


class VTCScheduler(PlanScheduler):
    """Fair share through per-tenant virtual-time counters.

    ``counters[tenant]`` is the point-cost the scheduler has dispatched
    on that tenant's behalf, ever (monotone, never reset while the
    service lives).  ``pop`` picks the backlogged tenant with the
    smallest counter — ties broken by tenant name, then arrival — pops
    its oldest ticket and charges the ticket's cost to the counter.
    """

    name = "vtc"

    def __init__(self) -> None:
        super().__init__()
        #: tenant -> per-tenant FIFO of waiting tickets.
        self._queues: "OrderedDict[str, Deque[PlanTicket]]" = OrderedDict()
        #: tenant -> virtual time consumed (cost units).
        self.counters: Dict[str, float] = {}
        #: tenant -> plans dispatched (for the status surface).
        self.dispatched: Dict[str, int] = {}

    def enqueue(self, ticket: PlanTicket) -> None:
        tenant = ticket.tenant
        backlog = self._queues.get(tenant)
        if not backlog:
            # The fairserve "counter lift": a tenant returning from idle
            # starts at the floor of the currently backlogged pack —
            # no banked credit from idle time, no head start either.
            floor = min((self.counters[t] for t, q in self._queues.items()
                         if q), default=None)
            current = self.counters.get(tenant, 0.0)
            if floor is not None:
                current = max(current, floor)
            self.counters[tenant] = current
            if backlog is None:
                backlog = self._queues.setdefault(tenant, deque())
        self.counters.setdefault(tenant, 0.0)
        backlog.append(self._stamp(ticket))

    def pop(self) -> Optional[PlanTicket]:
        candidates = [(self.counters[tenant], tenant, queue[0].seq)
                      for tenant, queue in self._queues.items() if queue]
        if not candidates:
            return None
        _, tenant, _ = min(candidates)
        ticket = self._queues[tenant].popleft()
        self.counters[tenant] += ticket.cost
        self.dispatched[tenant] = self.dispatched.get(tenant, 0) + 1
        return ticket

    def depth(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def queued_cost(self) -> float:
        return sum(ticket.cost for queue in self._queues.values()
                   for ticket in queue)

    def describe(self) -> Dict[str, object]:
        return {
            "scheduler": self.name,
            "depth": self.depth(),
            "queued_cost": self.queued_cost(),
            "queued_by_tenant": {tenant: len(queue) for tenant, queue
                                 in self._queues.items() if queue},
            "virtual_time": dict(sorted(self.counters.items())),
            "dispatched": dict(sorted(self.dispatched.items())),
        }


#: scheduler name -> class, the CLI's ``--scheduler`` choices.
SCHEDULERS: Dict[str, type] = {FIFOScheduler.name: FIFOScheduler,
                               VTCScheduler.name: VTCScheduler}


def make_scheduler(name: str) -> PlanScheduler:
    """Instantiate a registered scheduler by name (default spelling)."""
    try:
        return SCHEDULERS[name]()
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; "
            f"choose from {', '.join(sorted(SCHEDULERS))}") from exc
