"""Sharded multi-machine experiment execution over a shared cache root.

The :class:`~repro.analysis.runner.Executor` parallelises one plan across
the cores of one machine; this module parallelises it across a *fleet*.
The coordination substrate is the persistent, content-keyed
:class:`~repro.analysis.cache.ResultCache`: a shared root is all the
machines need to agree on.  The root is a storage-backend spec resolved
by :func:`~repro.analysis.cache.open_store` — a directory (an NFS mount,
a synced directory, or just ``.repro_cache/`` for local fleets), or an
``http://host:port/bucket`` object-store URL
(:mod:`repro.analysis.objstore`) for genuinely shared-nothing fleets
with no common filesystem at all.

The model, end to end:

1. **Partition.**  :func:`submit` splits an
   :class:`~repro.analysis.runner.ExperimentPlan` into contiguous,
   balanced index ranges (:meth:`ExperimentPlan.shard_ranges
   <repro.analysis.runner.ExperimentPlan.shard_ranges>`) and derives one
   content-addressed key per shard from the job's
   :func:`~repro.analysis.cache.result_key` plus the range — the *shard
   key scheme*.  The plan and its quantity callables are pickled into a
   job payload under ``<root>/jobs/<salt>/<job>/``, so distributed
   quantities must be importable (the per-point functions the libraries
   already export); closures fall back to local execution.
2. **Claim.**  Workers — ``python -m repro.analysis.distrib worker --root
   DIR`` — scan the job directory and claim shards through the cache's
   atomic lease files (:meth:`ResultCache.claim_lease
   <repro.analysis.cache.ResultCache.claim_lease>`).  A claimed shard is
   heartbeated from a background thread while it executes; a worker
   *process* that dies mid-shard stops heartbeating, its lease expires
   after its TTL, and a surviving worker steals the lease and re-executes
   the shard.  (A process that is alive but wedged keeps its lease;
   ``status`` names the owner so an operator can kill it.)
3. **Execute + publish.**  A shard runs through the ordinary executor
   (:meth:`Executor.run_shard <repro.analysis.runner.Executor.run_shard>`)
   over *global* point indices — which is what keeps Monte-Carlo seeding
   shard-invariant — and its values land in the result store under the
   shard key, with per-shard provenance (worker id, wall time, cache
   economics) in the payload's ``meta``.
4. **Merge.**  The coordinator (:func:`wait_for_job`, or the ``run`` CLI
   command, or an ``Executor(distrib=DistribBackend(...))``) blocks until
   every shard key is present, concatenates the slices in shard order —
   bit-identical to the serial path, because every executor enumerates
   the same canonical point order — and stores the merged values under
   the *job* key, which is exactly the key a plain
   ``Executor(persistent=...)`` computes: after a distributed run, every
   machine's persistent cache hits.

Duplicated execution (two workers racing a stolen lease) is benign by
construction: shard results are pure functions of the plan, published
atomically under content keys, so the loser's write is byte-identical.

Command line::

    python -m repro.analysis.distrib worker --root ROOT     # join the fleet
    python -m repro.analysis.distrib submit --root ROOT --plan MODULE:FACTORY
    python -m repro.analysis.distrib status --root ROOT [--json]
    python -m repro.analysis.distrib run    --root ROOT --plan MODULE:FACTORY
    python -m repro.analysis.distrib --selftest             # N local workers
    python -m repro.analysis.distrib --selftest --backend obj   # ... over the
                                                  # fake object-store server

``ROOT`` is a shared directory or an object-store bucket URL.
``--selftest`` spins up real worker subprocesses over a temporary root,
checks the fleet merge is bit-identical to the serial executor, kills
a worker mid-lease to prove the reclaim path, and round-trips a batched
Monte-Carlo kernel through the fleet; with ``--backend obj`` the
same fleet coordinates through an in-process fake object-store server —
the workers share nothing but its HTTP endpoint.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import pickle
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.cache import (
    DEFAULT_LEASE_TTL,
    CacheStore,
    ResultCache,
    code_version_salt,
    default_cache_root,
    open_store,
    result_key,
)
from repro.analysis.runner import Executor, ExperimentPlan, batched
from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_POLL_S",
    "DEFAULT_SHARD_SIZE",
    "DistribBackend",
    "DistribJob",
    "DistribTimeout",
    "ShardSpec",
    "UnpicklablePayload",
    "Worker",
    "fleet_queue_stats",
    "job_status",
    "list_jobs",
    "list_workers",
    "merge_job",
    "queue_summary",
    "selftest_plan",
    "shard_key",
    "submit",
    "wait_for_job",
    "worker_id",
]

#: Default points per shard.  Figure plans are small (tens of points) but a
#: point can be an entire event-driven simulation, so shards stay fine-
#: grained enough for a fleet to balance.
DEFAULT_SHARD_SIZE = 4
#: Default coordinator/worker polling interval in seconds.
DEFAULT_POLL_S = 0.2


class UnpicklablePayload(ConfigurationError):
    """The plan or a quantity cannot cross a process boundary.

    Raised by :func:`submit` when pickling the job payload fails —
    typically a quantity closing over local state.  The
    :class:`DistribBackend` catches it and falls back to local execution.
    """


class DistribTimeout(ConfigurationError):
    """A coordinator gave up waiting for outstanding shards."""


def worker_id() -> str:
    """This process's fleet identity: ``hostname:pid``."""
    return f"{socket.gethostname()}:{os.getpid()}"


def shard_key(job_key: str, start: int, stop: int) -> str:
    """Content key of the shard covering plan indices ``[start, stop)``.

    Derived from the job's :func:`~repro.analysis.cache.result_key` (which
    already covers the plan declaration, the quantity fingerprints and the
    code-version salt) plus the index range, so every machine computes the
    same key for the same slice of the same work.
    """
    digest = hashlib.sha256(f"{job_key}:{start}:{stop}".encode())
    return digest.hexdigest()[:32]


# ---------------------------------------------------------------------------
# Jobs


@dataclass(frozen=True)
class ShardSpec:
    """One claimable unit of a job: a contiguous index range and its key."""

    index: int
    start: int
    stop: int
    key: str

    @property
    def points(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class DistribJob:
    """A submitted plan: manifest metadata plus the pickled payload object.

    The manifest (``manifest.json``) is what workers trust: it records the
    precomputed job and shard keys, so key derivation happens exactly once,
    on the submitting machine.  The payload (``payload.pkl``) carries the
    plan and quantity callables; it is written *before* the manifest, so a
    manifest's existence implies a loadable job.  ``root`` is the backend
    spec (directory or bucket URL) the job lives under — everything is
    addressed by object key through the
    :class:`~repro.analysis.cache.CacheStore` interface, never by path.
    """

    root: object  # backend spec: a directory Path/str or a bucket URL
    key: str
    salt: str
    kind: str
    axes: Dict[str, int]
    points: int
    seed: Optional[int]
    names: Tuple[str, ...]
    shard_size: int
    created: float
    shards: Tuple[ShardSpec, ...]

    # -- object keys -------------------------------------------------------

    @property
    def manifest_obj(self) -> str:
        return f"jobs/{self.salt}/{self.key}/manifest.json"

    @property
    def payload_obj(self) -> str:
        return f"jobs/{self.salt}/{self.key}/payload.pkl"

    # -- persistence -------------------------------------------------------

    def save(self, payload: bytes,
             store: Optional[CacheStore] = None) -> None:
        """Write payload then manifest (atomically, in that order)."""
        store = store if store is not None else open_store(self.root)
        store.put_atomic(self.payload_obj, payload)
        manifest = {
            "key": self.key,
            "salt": self.salt,
            "kind": self.kind,
            "axes": dict(self.axes),
            "points": self.points,
            "seed": self.seed,
            "names": list(self.names),
            "shard_size": self.shard_size,
            "created": self.created,
            "shards": [{"index": s.index, "start": s.start,
                        "stop": s.stop, "key": s.key} for s in self.shards],
        }
        store.put_atomic(self.manifest_obj, json.dumps(manifest).encode())

    def load_payload(self, store: Optional[CacheStore] = None,
                     ) -> Tuple[ExperimentPlan, Dict[str, Callable]]:
        """The plan and quantities this job executes."""
        store = store if store is not None else open_store(self.root)
        obj = store.get(self.payload_obj)
        if obj is None:
            raise OSError(f"job {self.key} has no payload under {self.root}")
        plan, quantities = pickle.loads(obj.data)
        return plan, quantities

    @classmethod
    def from_manifest(cls, root, data: bytes) -> Optional["DistribJob"]:
        """Parse one manifest payload; ``None`` if malformed/incomplete."""
        try:
            manifest = json.loads(data)
            shards = tuple(ShardSpec(index=int(s["index"]),
                                     start=int(s["start"]),
                                     stop=int(s["stop"]),
                                     key=str(s["key"]))
                           for s in manifest["shards"])
            return cls(root=root, key=str(manifest["key"]),
                       salt=str(manifest["salt"]),
                       kind=str(manifest["kind"]),
                       axes={str(k): int(v)
                             for k, v in manifest["axes"].items()},
                       points=int(manifest["points"]),
                       seed=(None if manifest["seed"] is None
                             else int(manifest["seed"])),
                       names=tuple(str(n) for n in manifest["names"]),
                       shard_size=int(manifest["shard_size"]),
                       created=float(manifest["created"]),
                       shards=shards)
        except (ValueError, KeyError, TypeError):
            return None

    @classmethod
    def load(cls, root, salt: str, key: str,
             store: Optional[CacheStore] = None) -> Optional["DistribJob"]:
        """The job submitted under ``(salt, key)``, or ``None``."""
        store = store if store is not None else open_store(root)
        obj = store.get(f"jobs/{salt}/{key}/manifest.json")
        if obj is None:
            return None
        return cls.from_manifest(root, obj.data)


def submit(plan: ExperimentPlan, quantities: Mapping[str, Callable], *,
           root=None, shard_size: int = DEFAULT_SHARD_SIZE,
           salt: Optional[str] = None,
           store: Optional[CacheStore] = None) -> DistribJob:
    """Partition *plan* into shards and publish the job under *root*.

    Idempotent: re-submitting an identical ``(plan, quantities)`` pair
    (same content key) returns the already-published job, so many
    machines may race to submit the same work.  Raises
    :class:`UnpicklablePayload` when the payload cannot be pickled.
    """
    if not quantities:
        raise ConfigurationError("at least one quantity is required")
    if root is None:
        root = default_cache_root()
    store = store if store is not None else open_store(root)
    salt = salt or code_version_salt()
    key = result_key(plan, quantities, salt=salt)
    existing = DistribJob.load(root, salt, key, store=store)
    if existing is not None:
        return existing
    try:
        payload = pickle.dumps((plan, dict(quantities)))
    except (pickle.PicklingError, AttributeError, TypeError) as exc:
        raise UnpicklablePayload(
            f"plan payload cannot cross a process boundary: {exc}") from exc
    shards = tuple(
        ShardSpec(index=i, start=start, stop=stop,
                  key=shard_key(key, start, stop))
        for i, (start, stop) in enumerate(plan.shard_ranges(shard_size)))
    job = DistribJob(root=root, key=key, salt=salt, kind=plan.kind,
                     axes=plan.describe_axes(), points=plan.point_count,
                     seed=plan.seed, names=tuple(quantities),
                     shard_size=shard_size, created=time.time(),
                     shards=shards)
    job.save(payload, store=store)
    return job


def list_jobs(root, salt: Optional[str] = None,
              store: Optional[CacheStore] = None,
              manifest_memo: Optional[Dict[str, Optional[DistribJob]]] = None,
              ) -> List[DistribJob]:
    """All submitted jobs under *root* (optionally one code version only).

    *manifest_memo* (manifest object key → parsed job) skips re-fetching
    manifests already seen: manifests are content-keyed and immutable, so
    a polling worker pays one GET per job *lifetime*, not per poll.
    """
    store = store if store is not None else open_store(root)
    jobs: List[DistribJob] = []
    for info in store.list("jobs/"):
        if not info.key.endswith("/manifest.json"):
            continue
        if manifest_memo is not None and info.key in manifest_memo:
            job = manifest_memo[info.key]
        else:
            obj = store.get(info.key)
            if obj is None:  # deleted between listing and fetch
                continue
            job = DistribJob.from_manifest(root, obj.data)
            if manifest_memo is not None:
                manifest_memo[info.key] = job
        if job is not None and (salt is None or job.salt == salt):
            jobs.append(job)
    return sorted(jobs, key=lambda job: (job.created, job.key))


def job_status(job: DistribJob,
               cache: Optional[ResultCache] = None) -> Dict[str, object]:
    """Shard-by-shard state of *job*: done / leased / expired / pending."""
    if cache is None:
        cache = ResultCache(root=job.root, mode="ro", salt=job.salt)
    shards: List[Dict[str, object]] = []
    done = 0
    for shard in job.shards:
        if cache.has_result(shard.key):
            state, owner = "done", None
            meta = cache.load_meta(shard.key)
            if meta is not None:
                owner = meta.get("worker")
            done += 1
        else:
            lease = cache.lease_info(shard.key)
            if lease is None:
                state, owner = "pending", None
            elif lease["expired"]:
                state, owner = "expired", lease["owner"]
            else:
                state, owner = "leased", lease["owner"]
        shards.append({"index": shard.index, "start": shard.start,
                       "stop": shard.stop, "key": shard.key,
                       "state": state, "owner": owner})
    return {
        "key": job.key,
        "salt": job.salt,
        "kind": job.kind,
        "points": job.points,
        "names": list(job.names),
        "created": job.created,
        "done": done,
        "total": len(job.shards),
        "complete": done == len(job.shards),
        "merged": cache.has_result(job.key),
        "shards": shards,
    }


def queue_summary(statuses: Sequence[Dict[str, object]],
                  now: Optional[float] = None) -> Dict[str, object]:
    """Fleet-level queue pressure, aggregated from :func:`job_status` dicts.

    The one signal the experiment service's overload gate and future
    fleet controllers share: ``queue_depth`` counts *claimable* shards
    (``pending`` plus ``expired`` — an expired lease is work waiting for
    a worker again), ``leased`` counts shards actively held, and
    ``oldest_unclaimed_age_s`` is the age of the oldest job that still
    has a claimable shard (``None`` when the queue is empty) — a queue
    that is shallow but *old* means the fleet is missing, not merely
    busy.
    """
    now = time.time() if now is None else now
    depth = 0
    leased = 0
    oldest_created: Optional[float] = None
    for status in statuses:
        claimable = sum(1 for shard in status["shards"]
                        if shard["state"] in ("pending", "expired"))
        leased += sum(1 for shard in status["shards"]
                      if shard["state"] == "leased")
        if claimable:
            depth += claimable
            created = float(status["created"])
            if oldest_created is None or created < oldest_created:
                oldest_created = created
    return {
        "jobs": len(statuses),
        "queue_depth": depth,
        "leased": leased,
        "oldest_unclaimed_age_s": (None if oldest_created is None
                                   else max(0.0, now - oldest_created)),
    }


def fleet_queue_stats(root,
                      store: Optional[CacheStore] = None,
                      ) -> Dict[str, object]:
    """:func:`queue_summary` over every job under *root* (one-call form)."""
    store = store if store is not None else open_store(root)
    return queue_summary([job_status(job)
                          for job in list_jobs(root, store=store)])


# ---------------------------------------------------------------------------
# Workers


def _presence_obj(wid: str) -> str:
    sanitized = wid.replace(":", "-").replace("/", "_")
    return f"workers/{sanitized}.json"


class WorkerListing(List[Dict[str, object]]):
    """The readable worker presences, plus a count of unreadable ones.

    A plain list of worker dicts (fully backward compatible) carrying a
    ``skipped`` attribute: how many presence objects were dropped because
    a concurrent reader observed a torn/partial write or a wrong-typed
    field.  Status surfaces must report the count rather than silently
    understate the fleet.
    """

    def __init__(self) -> None:
        super().__init__()
        self.skipped = 0


def list_workers(root,
                 store: Optional[CacheStore] = None,
                 ) -> WorkerListing:
    """Fleet presence: every worker that announced itself under *root*.

    Ages are clamped to zero: a worker whose clock runs ahead of the
    reader's would otherwise report a negative heartbeat age, and
    presence ages only answer "how long since we heard from it".
    """
    store = store if store is not None else open_store(root)
    workers = WorkerListing()
    now = time.time()
    for info in store.list("workers/"):
        obj = store.get(info.key)
        if obj is None:
            continue
        try:
            data = json.loads(obj.data)
            workers.append({"worker": str(data["worker"]),
                            "heartbeat": float(data["heartbeat"]),
                            "age_s": max(0.0, now - float(data["heartbeat"])),
                            "executed": int(data.get("executed", 0))})
        except (ValueError, KeyError, TypeError):
            # Torn/partial JSON from a non-atomic reader view, or a
            # foreign object under workers/: count it instead of crashing
            # (or silently hiding) the status surfaces.
            workers.skipped += 1
            continue
    return workers


class Worker:
    """One fleet member: scans jobs, claims shards, executes, publishes.

    Parameters
    ----------
    root:
        The shared cache root every fleet member reaches — a mounted
        directory, or an object-store bucket URL for shared-nothing
        fleets.
    lease_ttl:
        Seconds a claimed shard may go without a heartbeat before another
        worker may steal it.  A background thread heartbeats at a third
        of this while the shard executes, so expiry means the worker
        *process* died (killed, crashed, machine lost).  A process that
        is alive but wedged inside a quantity keeps heartbeating and
        keeps its lease — deliberately, because stealing a live worker's
        shard buys duplicated work, not progress; ``status`` names the
        lease owner so an operator can kill the wedged process, at which
        point the normal expiry/steal path completes the shard.
    executor_workers:
        Pool size of the per-shard :class:`Executor` (0 = serial inside
        the worker; the fleet itself is the parallelism).
    propagate_errors:
        Whether a shard whose quantity raises propagates the exception to
        the caller.  ``True`` for a coordinator's in-process worker (a
        quantity that cannot be evaluated is a modelling bug the
        experiment should surface, exactly as in a local run); ``False``
        (the daemon default) logs the failure, remembers the shard as
        poisoned and moves on — one broken submission must not serially
        crash every worker joined to the shared root.
    stall_after_claim:
        Test hook (``worker --stall``): claim one shard, keep heartbeating,
        never execute — emulates a worker wedged mid-shard so the selftest
        can kill it and prove lease reclaim.
    store:
        An explicit :class:`~repro.analysis.cache.CacheStore` instead of
        resolving *root* — how fault-injection tests wrap the backend.
    """

    def __init__(self, root, lease_ttl: float = DEFAULT_LEASE_TTL,
                 poll_s: float = DEFAULT_POLL_S,
                 executor_workers: int = 0,
                 propagate_errors: bool = False,
                 stall_after_claim: bool = False,
                 store: Optional[CacheStore] = None) -> None:
        if lease_ttl <= 0:
            raise ConfigurationError("lease_ttl must be > 0")
        self.root = root
        self.store = store if store is not None else open_store(root)
        self.id = worker_id()
        self.lease_ttl = lease_ttl
        self.poll_s = poll_s
        self.executor_workers = executor_workers
        self.propagate_errors = propagate_errors
        self.stall_after_claim = stall_after_claim
        self.executed = 0
        self._payloads: Dict[str, Tuple[ExperimentPlan,
                                        Dict[str, Callable]]] = {}
        self._manifests: Dict[str, Optional[DistribJob]] = {}
        self._resources: Dict[str, Tuple[ResultCache, Executor]] = {}
        self._skipped_salts: set = set()
        self._poisoned_shards: set = set()
        # Shard keys this worker has observed as published.  Results are
        # exclusive-create immutable, so a positive probe never needs
        # repeating — without this, every poll re-HEADs every completed
        # shard of every job against the shared root.
        self._done_shards: set = set()

    # -- fleet presence ----------------------------------------------------

    def announce(self) -> None:
        """Publish this worker's heartbeat for fleet monitoring/status."""
        self.store.put_atomic(_presence_obj(self.id), json.dumps({
            "worker": self.id, "pid": os.getpid(),
            "heartbeat": time.time(), "executed": self.executed,
        }).encode())

    def retire(self) -> None:
        """Remove this worker's presence object (graceful shutdown)."""
        try:
            self.store.delete(_presence_obj(self.id))
        except OSError:
            pass

    # -- shard execution ---------------------------------------------------

    def run_once(self) -> int:
        """One scan over every job; returns the number of shards executed."""
        executed = 0
        my_salt = code_version_salt()
        for job in list_jobs(self.root, store=self.store,
                             manifest_memo=self._manifests):
            if job.salt != my_salt:
                if job.salt not in self._skipped_salts:
                    self._skipped_salts.add(job.salt)
                    print(f"[{self.id}] skipping job {job.key[:12]}: "
                          f"code-version salt {job.salt} != {my_salt}")
                continue
            executed += self.process_job(job)
        self.executed += executed
        return executed

    def process_job(self, job: DistribJob) -> int:
        """Claim and execute every claimable pending shard of *job*."""
        cache, executor = self._resources_for(job)
        pending = []
        for shard in job.shards:
            if shard.key in self._done_shards:
                continue
            if cache.has_result(shard.key):
                self._done_shards.add(shard.key)
                continue
            pending.append(shard)
        if not pending:
            return 0
        try:
            plan, quantities = self._payload_for(job)
        except (OSError, pickle.UnpicklingError, AttributeError,
                ImportError, EOFError) as exc:
            # E.g. a payload referencing a module this machine does not
            # ship: leave the job to fleet members that can resolve it.
            print(f"[{self.id}] cannot load payload of {job.key[:12]}: {exc}")
            return 0
        executed = 0
        for shard in pending:
            if shard.key in self._poisoned_shards:
                continue
            if not cache.claim_lease(shard.key, self.id, ttl=self.lease_ttl):
                continue
            if self.stall_after_claim:
                self._hold_lease(cache, shard)
                continue
            try:
                try:
                    values, meta = self._execute_shard(
                        executor, plan, quantities, job, shard, cache)
                except Exception as exc:
                    if self.propagate_errors:
                        raise
                    # A quantity that raises is the submitter's bug; a
                    # daemon serving foreign submissions must survive it.
                    # Remember the shard so this worker does not hot-loop
                    # on it (other workers, and a participating
                    # coordinator, still may).
                    self._poisoned_shards.add(shard.key)
                    print(f"[{self.id}] shard {shard.index} of job "
                          f"{job.key[:12]} failed: {exc!r}; skipping",
                          flush=True)
                    continue
                # The publish sits OUTSIDE the poison handler: a storage
                # fault here is transient backend trouble, not a quantity
                # bug — it must propagate (the daemon loop retries next
                # poll), never poison a shard whose values computed fine.
                # if_absent: the loser of a stolen-lease race must never
                # re-publish (and clobber the provenance of) a shard a
                # survivor already landed.  The done-memo is NOT updated
                # here — only an *observed* result (next poll's probe)
                # counts, so a backend that acks a write it then loses
                # cannot trick this worker into abandoning the shard.
                cache.store_result(shard.key, values, meta=meta,
                                   if_absent=True)
                executed += 1
            finally:
                try:
                    cache.release_lease(shard.key, self.id)
                except OSError:
                    pass  # unreleased leases expire on their own TTL
        if executed:
            cache.merge_technologies(executor.cache.snapshot())
        return executed

    def _payload_for(self, job: DistribJob):
        if job.key not in self._payloads:
            self._payloads[job.key] = job.load_payload(self.store)
        return self._payloads[job.key]

    def _resources_for(self, job: DistribJob):
        # One cache handle and one executor per salt, memoised: polling
        # loops call process_job several times a second, and rebuilding
        # them would re-read the pickled technology store on every poll
        # (over NFS or HTTP, for a real fleet).  The shared executor also
        # lets a long-lived worker reuse Technology rebuilds across jobs.
        if job.salt not in self._resources:
            cache = ResultCache(root=self.root, mode="rw", salt=job.salt,
                                store=self.store)
            executor = Executor(workers=self.executor_workers)
            executor.cache.preload(cache.load_technologies())
            self._resources[job.salt] = (cache, executor)
        return self._resources[job.salt]

    def _execute_shard(self, executor: Executor, plan: ExperimentPlan,
                       quantities: Mapping[str, Callable], job: DistribJob,
                       shard: ShardSpec, cache: ResultCache):
        stop_beating = threading.Event()
        interval = max(self.lease_ttl / 3.0, 0.05)

        def beat() -> None:
            while not stop_beating.wait(interval):
                try:
                    if not cache.heartbeat_lease(shard.key, self.id):
                        return  # lease lost (stolen): stop quietly
                except OSError:
                    # A transient store fault is a *missed* beat, not a
                    # lost lease: keep trying — the lease survives as
                    # long as one beat lands per TTL.
                    continue

        heartbeat = threading.Thread(target=beat, daemon=True)
        heartbeat.start()
        hits_before = executor.cache.hits
        misses_before = executor.cache.misses
        started = time.perf_counter()
        try:
            values = executor.run_shard(plan, quantities,
                                        shard.start, shard.stop)
        finally:
            stop_beating.set()
            heartbeat.join()
        meta = {
            "job": job.key,
            "shard": shard.index,
            "start": shard.start,
            "stop": shard.stop,
            "points": shard.points,
            "worker": self.id,
            "wall_time_s": time.perf_counter() - started,
            "cache_hits": executor.cache.hits - hits_before,
            "cache_misses": executor.cache.misses - misses_before,
        }
        return values, meta

    def _hold_lease(self, cache: ResultCache, shard: ShardSpec) -> None:
        """``--stall`` test hook: heartbeat forever, never execute."""
        print(f"[{self.id}] stalling on shard {shard.index} "
              f"({shard.key[:12]})", flush=True)
        while cache.heartbeat_lease(shard.key, self.id):
            time.sleep(max(self.lease_ttl / 3.0, 0.05))

    # -- the daemon loop ---------------------------------------------------

    def run_forever(self, max_idle_s: Optional[float] = None) -> int:
        """Scan-execute-sleep until idle for *max_idle_s* (None = forever)."""
        last_work = time.monotonic()
        # Presence is monitoring data at lease-TTL granularity; announcing
        # on every poll would hammer the shared root (5 writes/s per idle
        # worker at the default poll) for no information gain.
        announce_every = max(self.lease_ttl / 3.0, self.poll_s)
        last_announce: Optional[float] = None
        try:
            while True:
                now = time.monotonic()
                try:
                    if (last_announce is None
                            or now - last_announce >= announce_every):
                        self.announce()
                        last_announce = now
                    if self.run_once() > 0:
                        last_work = time.monotonic()
                        continue
                except OSError as exc:
                    # A transient backend fault (an object-store blip, an
                    # NFS hiccup) must not kill the fleet: log, sleep,
                    # rescan.  Quantity errors are already handled inside
                    # process_job; what reaches here is storage I/O.
                    print(f"[{self.id}] store fault, retrying next poll: "
                          f"{exc}", flush=True)
                if (max_idle_s is not None
                        and time.monotonic() - last_work > max_idle_s):
                    return self.executed
                time.sleep(self.poll_s)
        finally:
            self.retire()


# ---------------------------------------------------------------------------
# Coordination


def merge_job(job: DistribJob, cache: Optional[ResultCache] = None):
    """Concatenate every shard slice of *job* in shard order.

    Returns ``(values, shard_metas)``.  Raises
    :class:`~repro.errors.ConfigurationError` if any shard payload is
    missing or malformed — merging never serves a partial result.
    """
    if cache is None:
        cache = ResultCache(root=job.root, mode="ro", salt=job.salt)
    names = list(job.names)
    values: Dict[str, List[float]] = {name: [] for name in names}
    metas: List[Dict[str, object]] = []
    for shard in job.shards:
        part = cache.load_result(shard.key, names, shard.points)
        if part is None:
            raise ConfigurationError(
                f"shard {shard.index} [{shard.start}, {shard.stop}) of job "
                f"{job.key} is missing or malformed; cannot merge")
        for name in names:
            values[name].extend(part[name])
        meta = cache.load_meta(shard.key) or {}
        metas.append({"shard": shard.index, "start": shard.start,
                      "stop": shard.stop, "points": shard.points,
                      "worker": str(meta.get("worker", "?")),
                      "wall_time_s": float(meta.get("wall_time_s", 0.0)),
                      "cache_hits": int(meta.get("cache_hits", 0)),
                      "cache_misses": int(meta.get("cache_misses", 0))})
    return values, tuple(metas)


def wait_for_job(job: DistribJob, *, participate: bool = True,
                 poll_s: float = DEFAULT_POLL_S,
                 timeout_s: Optional[float] = None,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 executor_workers: int = 0):
    """Block until every shard of *job* has landed, then merge.

    With ``participate=True`` (the default) the coordinator is itself a
    fleet member: it claims and executes whatever shards no worker holds,
    so progress never depends on external workers — a fleet only makes
    the job finish sooner.  Returns ``(values, shard_metas)`` and stores
    the merged values under the job key, so subsequent plain
    ``Executor(persistent=...)`` runs of the same plan hit the cache
    without re-coordination.
    """
    cache = ResultCache(root=job.root, mode="rw", salt=job.salt)
    local = None
    if participate:
        # propagate_errors: a coordinator surfaces quantity bugs to its
        # caller, exactly as a local Executor.run would.
        local = Worker(root=job.root, lease_ttl=lease_ttl, poll_s=poll_s,
                       executor_workers=executor_workers,
                       propagate_errors=True)
    deadline = (None if timeout_s is None
                else time.monotonic() + timeout_s)
    # Results are exclusive-create immutable: once a shard key probes
    # done it stays done, so remember it rather than re-probing every
    # completed shard on every poll (per-poll HEADs against an HTTP
    # backend would otherwise grow with the *finished* part of the job).
    done: set = set()
    while True:
        for shard in job.shards:
            if shard.key not in done and cache.has_result(shard.key):
                done.add(shard.key)
        if len(done) == len(job.shards):
            break
        try:
            if local is not None and local.process_job(job) > 0:
                continue
        except OSError as exc:
            # Same contract as the worker daemon's loop: a transient
            # backend fault (an object-store blip, an NFS hiccup) in a
            # claim or publish is retried next poll, bounded by the
            # deadline — quantity bugs still propagate (they are not
            # OSErrors raised by the store).
            print(f"[coordinator] store fault, retrying next poll: {exc}",
                  flush=True)
        if deadline is not None and time.monotonic() >= deadline:
            status = job_status(job, cache)
            raise DistribTimeout(
                f"job {job.key} timed out with "
                f"{status['done']}/{status['total']} shards done")
        time.sleep(poll_s)
    values, metas = merge_job(job, cache)
    # result_valid, not has_result: a pre-existing corrupt payload under
    # the job key must be overwritten, not preserved.
    if cache.writable and not cache.result_valid(job.key, list(job.names),
                                                 job.points):
        cache.store_result(job.key, values, meta={
            "kind": job.kind,
            "axes": dict(job.axes),
            "points": job.points,
            "seed": job.seed,
            "quantities": list(job.names),
            "distrib": True,
            "workers": sorted({str(m["worker"]) for m in metas}),
        })
    return values, metas


class DistribBackend:
    """The ``Executor(distrib=...)`` hook: partition → fleet → merge.

    Parameters
    ----------
    root:
        Shared cache root — a directory or an object-store bucket URL
        (default: the process's
        :func:`~repro.analysis.cache.default_cache_root`).
    shard_size:
        Points per shard (:data:`DEFAULT_SHARD_SIZE`).
    participate:
        Whether the submitting process also executes unclaimed shards
        (default ``True`` — never block on an empty fleet).
    timeout_s:
        Give up (:class:`DistribTimeout`) after this many seconds;
        ``None`` waits forever.
    """

    def __init__(self, root=None, shard_size: int = DEFAULT_SHARD_SIZE,
                 participate: bool = True,
                 poll_s: float = DEFAULT_POLL_S,
                 timeout_s: Optional[float] = None,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 executor_workers: int = 0) -> None:
        self.root = root if root is not None else default_cache_root()
        self.shard_size = shard_size
        self.participate = participate
        self.poll_s = poll_s
        self.timeout_s = timeout_s
        self.lease_ttl = lease_ttl
        self.executor_workers = executor_workers

    def __cache_fingerprint__(self) -> str:
        # Execution machinery: must not leak into content keys.
        return type(self).__name__

    def execute(self, plan: ExperimentPlan,
                quantities: Mapping[str, Callable]):
        """Distribute one plan; ``None`` when the payload cannot travel."""
        try:
            job = submit(plan, quantities, root=self.root,
                         shard_size=self.shard_size)
        except UnpicklablePayload:
            return None
        return wait_for_job(job, participate=self.participate,
                            poll_s=self.poll_s, timeout_s=self.timeout_s,
                            lease_ttl=self.lease_ttl,
                            executor_workers=self.executor_workers)


# ---------------------------------------------------------------------------
# CLI (python -m repro.analysis.distrib)


def _selftest_delay(vdd: float) -> float:
    # Deliberately slowed so concurrent selftest workers interleave on the
    # shard queue instead of one worker draining it before the second boots.
    time.sleep(0.05)
    from repro.models.gate import GateModel
    from repro.models.technology import get_technology

    return GateModel(technology=get_technology("cmos90")).delay(vdd)


def _selftest_energy(vdd: float) -> float:
    from repro.models.gate import GateModel
    from repro.models.technology import get_technology

    return GateModel(technology=get_technology("cmos90")).transition_energy(vdd)


def selftest_plan() -> Tuple[ExperimentPlan, Dict[str, Callable]]:
    """The demo/selftest job: a 12-point Vdd sweep of two gate quantities.

    Usable as a CLI plan factory::

        python -m repro.analysis.distrib run --root /shared/root \\
            --plan repro.analysis.distrib:selftest_plan
    """
    vdds = [0.25 + 0.05 * i for i in range(12)]
    return (ExperimentPlan.sweep("vdd", vdds),
            {"delay": _selftest_delay, "energy": _selftest_energy})


def _selftest_plan_b() -> Tuple[ExperimentPlan, Dict[str, Callable]]:
    """A second, distinct job key for the kill/reclaim phase."""
    vdds = [0.27 + 0.05 * i for i in range(12)]
    return (ExperimentPlan.sweep("vdd", vdds),
            {"delay": _selftest_delay, "energy": _selftest_energy})


def _selftest_batch_mc_delay(batch):
    from repro.models.batch import gate_delay

    return gate_delay(batch, 0.4)


# Module-level so the pickled job payload can travel to worker processes.
_selftest_batched_mc = batched(_selftest_batch_mc_delay)


def _selftest_plan_c() -> Tuple[ExperimentPlan, Dict[str, Callable]]:
    """A Monte-Carlo job whose quantity is a *batched* kernel."""
    from repro.models.technology import get_technology

    return (ExperimentPlan.monte_carlo(16, technology=get_technology("cmos90"),
                                       seed=11),
            {"delay": _selftest_batched_mc})


def _load_plan_factory(spec: str):
    """Resolve ``MODULE:CALLABLE`` into a ``(plan, quantities)`` pair."""
    module_name, _, attr = spec.partition(":")
    if not module_name or not attr:
        raise ConfigurationError(
            f"--plan needs MODULE:CALLABLE, got {spec!r}")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ConfigurationError(
            f"--plan {spec!r}: cannot import module {module_name!r} "
            f"({exc})") from exc
    try:
        factory = getattr(module, attr)
    except AttributeError as exc:
        raise ConfigurationError(
            f"--plan {spec!r}: module {module_name!r} has no attribute "
            f"{attr!r}") from exc
    try:
        built = factory() if callable(factory) else factory
    except ConfigurationError:
        raise
    except Exception as exc:
        raise ConfigurationError(
            f"--plan {spec!r}: factory raised "
            f"{type(exc).__name__}: {exc}") from exc
    try:
        plan, quantities = built
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"plan factory {spec!r} must return (plan, quantities)") from exc
    return plan, quantities


def _spawn_worker(root, *extra: str):
    """A real worker subprocess over *root*, importing this same package."""
    import subprocess
    import sys

    import repro

    env = dict(os.environ)
    package_parent = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = package_parent + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.analysis.distrib", "worker",
         "--root", str(root), *extra],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _selftest(fleet_size: int = 2, backend: str = "fs") -> int:
    import contextlib
    import signal
    import tempfile

    failures = 0

    def check(label: str, ok: bool) -> None:
        nonlocal failures
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
        if not ok:
            failures += 1

    def wait_until(predicate, timeout_s: float = 30.0) -> bool:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.05)
        return False

    def stop_all(procs) -> None:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except Exception:
                proc.kill()

    print(f"distrib selftest (fleet of {fleet_size}, backend: {backend})")
    with contextlib.ExitStack() as stack:
        if backend == "obj":
            # Shared-nothing: the worker subprocesses reach the root only
            # through this in-process server's HTTP endpoint — no common
            # directory exists at all.
            from repro.analysis.objstore import FakeObjectServer

            server = stack.enter_context(FakeObjectServer())
            tmp = f"{server.url}/distrib-selftest"
        else:
            tmp = stack.enter_context(tempfile.TemporaryDirectory())
        # -- phase 1: a fleet of real workers merges bit-identically ------
        plan, quantities = selftest_plan()
        serial = Executor(workers=0).run(plan, quantities)
        fleet = [_spawn_worker(tmp, "--lease-ttl", "5", "--poll", "0.05",
                               "--max-idle", "60")
                 for _ in range(fleet_size)]
        booted = wait_until(lambda: len(list_workers(tmp)) >= fleet_size)
        check(f"{fleet_size} workers announced themselves", booted)
        job = submit(plan, quantities, root=tmp, shard_size=1)
        check("submit is idempotent",
              submit(plan, quantities, root=tmp, shard_size=1).key == job.key)
        try:
            values, metas = wait_for_job(job, participate=False,
                                         poll_s=0.05, timeout_s=90.0)
        except DistribTimeout:
            stop_all(fleet)
            check("fleet completed the job before the timeout", False)
            print("selftest:", f"{failures} FAILURES")
            return 1
        check("fleet merge is bit-identical to the serial executor",
              values == serial.values)
        check("every shard carries provenance",
              len(metas) == len(job.shards)
              and all(m["worker"] != "?" and m["wall_time_s"] > 0.0
                      for m in metas))
        check(">= 2 distinct workers executed shards",
              len({m["worker"] for m in metas}) >= 2)
        replay = Executor(persistent=ResultCache(root=tmp, mode="ro")).run(
            plan, quantities)
        check("merged job answers the plain persistent cache",
              replay.provenance.executor == "persistent-cache"
              and replay.values == serial.values)
        status = job_status(job)
        check("status reports the job complete and merged",
              status["complete"] and status["merged"])
        stop_all(fleet)

        # -- phase 2: a worker killed mid-lease is reclaimed --------------
        plan_b, quantities_b = _selftest_plan_b()
        serial_b = Executor(workers=0).run(plan_b, quantities_b)
        job_b = submit(plan_b, quantities_b, root=tmp, shard_size=1)
        cache = ResultCache(root=tmp, mode="ro", salt=job_b.salt)
        staller = _spawn_worker(tmp, "--lease-ttl", "1", "--poll", "0.05",
                                "--stall")

        def stalled_lease():
            for shard in job_b.shards:
                info = cache.lease_info(shard.key)
                if info is not None:
                    return shard, info
            return None

        claimed = wait_until(lambda: stalled_lease() is not None)
        check("staller claimed a shard and holds its lease", claimed)
        stalled_shard, stalled_info = stalled_lease() or (None, None)
        if stalled_shard is not None:
            os.kill(staller.pid, signal.SIGKILL)
            staller.wait()
            survivors = [_spawn_worker(tmp, "--lease-ttl", "1",
                                       "--poll", "0.05", "--max-idle", "60")
                         for _ in range(2)]
            try:
                values_b, metas_b = wait_for_job(job_b, participate=False,
                                                 poll_s=0.05, timeout_s=90.0)
            except DistribTimeout:
                stop_all(survivors)
                check("survivors completed the job before the timeout", False)
                print("selftest:", f"{failures} FAILURES")
                return 1
            check("reclaimed merge is bit-identical to the serial executor",
                  values_b == serial_b.values)
            reclaimed = metas_b[stalled_shard.index]
            check("the killed worker's shard was completed by a survivor",
                  reclaimed["worker"] not in ("?", stalled_info["owner"]))
            stop_all(survivors)

        # -- phase 3: a batched Monte-Carlo kernel travels the fleet ------
        plan_c, quantities_c = _selftest_plan_c()
        serial_c = Executor(workers=0, batch=False).run(plan_c, quantities_c)
        job_c = submit(plan_c, quantities_c, root=tmp, shard_size=4)
        try:
            values_c, metas_c = wait_for_job(job_c, participate=True,
                                             poll_s=0.05, timeout_s=90.0)
        except DistribTimeout:
            check("batched Monte-Carlo job completed before the timeout",
                  False)
            print("selftest:", f"{failures} FAILURES")
            return 1
        check("batched Monte-Carlo merge is bit-identical to per-point",
              values_c == serial_c.values)
        check("batched job produced one result per shard",
              len(metas_c) == len(job_c.shards))
    print("selftest:", "PASS" if failures == 0 else f"{failures} FAILURES")
    return 0 if failures == 0 else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Fleet CLI: ``worker`` / ``submit`` / ``status`` / ``run`` /
    ``--selftest``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.distrib",
        description="Sharded multi-machine experiment execution over a "
                    "shared cache root.")
    parser.add_argument("--selftest", action="store_true",
                        help="spin local workers over a temp root and check "
                             "merge identity + lease reclaim")
    parser.add_argument("--fleet", type=int, default=2,
                        help="selftest fleet size (default: 2)")
    parser.add_argument("--backend", choices=("fs", "obj"), default="fs",
                        help="with --selftest: coordinate over a temp "
                             "directory (fs) or an in-process fake "
                             "object-store server (obj)")
    commands = parser.add_subparsers(dest="command")

    def add_root(sub):
        sub.add_argument("--root", required=True,
                         help="the shared cache root: a directory or an "
                              "object-store bucket URL "
                              "(http://host:port/bucket)")

    worker_cmd = commands.add_parser(
        "worker", help="join the fleet: claim, execute and publish shards")
    add_root(worker_cmd)
    worker_cmd.add_argument("--lease-ttl", type=float,
                            default=DEFAULT_LEASE_TTL,
                            help="seconds without a heartbeat before this "
                                 "worker's shard may be stolen")
    worker_cmd.add_argument("--poll", type=float, default=DEFAULT_POLL_S,
                            help="idle scan interval in seconds")
    worker_cmd.add_argument("--executor-workers", type=int, default=0,
                            help="per-shard pool size (0 = serial)")
    worker_cmd.add_argument("--max-idle", type=float, default=None,
                            help="exit after this many idle seconds "
                                 "(default: run forever)")
    worker_cmd.add_argument("--once", action="store_true",
                            help="one scan pass, then exit")
    worker_cmd.add_argument("--stall", action="store_true",
                            help="test hook: claim one shard, heartbeat, "
                                 "never execute")

    submit_cmd = commands.add_parser(
        "submit", help="partition a plan into shards and publish the job")
    add_root(submit_cmd)
    submit_cmd.add_argument("--plan", required=True,
                            help="MODULE:CALLABLE returning "
                                 "(plan, quantities)")
    submit_cmd.add_argument("--shard-size", type=int,
                            default=DEFAULT_SHARD_SIZE,
                            help="points per shard")

    status_cmd = commands.add_parser(
        "status", help="per-job shard states and fleet presence")
    add_root(status_cmd)
    status_cmd.add_argument("--json", action="store_true",
                            help="machine-readable output")

    run_cmd = commands.add_parser(
        "run", help="submit, participate, block until merged")
    add_root(run_cmd)
    run_cmd.add_argument("--plan", required=True,
                         help="MODULE:CALLABLE returning (plan, quantities)")
    run_cmd.add_argument("--shard-size", type=int,
                         default=DEFAULT_SHARD_SIZE,
                         help="points per shard")
    run_cmd.add_argument("--no-participate", action="store_true",
                         help="coordinate only; leave execution to the fleet")
    run_cmd.add_argument("--timeout", type=float, default=None,
                         help="give up after this many seconds")

    args = parser.parse_args(argv)
    if args.selftest:
        return _selftest(max(2, args.fleet), backend=args.backend)
    if args.command is None:
        parser.print_help()
        return 2

    if args.command == "worker":
        worker = Worker(root=args.root, lease_ttl=args.lease_ttl,
                        poll_s=args.poll,
                        executor_workers=args.executor_workers,
                        stall_after_claim=args.stall)
        print(f"worker {worker.id} joining fleet at {args.root}", flush=True)
        if args.once:
            worker.announce()
            executed = worker.run_once()
            worker.retire()
            print(f"worker {worker.id} executed {executed} shard(s)")
            return 0
        executed = worker.run_forever(max_idle_s=args.max_idle)
        print(f"worker {worker.id} idle; executed {executed} shard(s)")
        return 0

    if args.command == "submit":
        plan, quantities = _load_plan_factory(args.plan)
        job = submit(plan, quantities, root=args.root,
                     shard_size=args.shard_size)
        print(f"submitted job {job.key}: {job.points} point(s) in "
              f"{len(job.shards)} shard(s) under {args.root}")
        return 0

    if args.command == "status":
        jobs = [job_status(job) for job in list_jobs(args.root)]
        workers = list_workers(args.root)
        queue = queue_summary(jobs)
        if args.json:
            print(json.dumps({"jobs": jobs, "workers": list(workers),
                              "workers_skipped": workers.skipped,
                              "queue_depth": queue["queue_depth"],
                              "leased": queue["leased"],
                              "oldest_unclaimed_age_s":
                                  queue["oldest_unclaimed_age_s"]},
                             indent=2, sort_keys=True))
            return 0
        if not jobs:
            print("no jobs submitted")
        for status in jobs:
            merged = " merged" if status["merged"] else ""
            print(f"job {status['key'][:16]}… [{status['kind']}] "
                  f"{status['done']}/{status['total']} shard(s) done"
                  f"{merged}")
            for shard in status["shards"]:
                owner = f" by {shard['owner']}" if shard["owner"] else ""
                print(f"  shard {shard['index']:3d} "
                      f"[{shard['start']}, {shard['stop']}): "
                      f"{shard['state']}{owner}")
        if queue["queue_depth"]:
            print(f"queue: {queue['queue_depth']} unclaimed shard(s) "
                  f"({queue['leased']} leased), oldest waiting "
                  f"{queue['oldest_unclaimed_age_s']:.1f}s")
        if workers:
            print("workers:")
            for info in workers:
                print(f"  {info['worker']}: {info['executed']} shard(s), "
                      f"heartbeat {info['age_s']:.1f}s ago")
        if workers.skipped:
            print(f"  ({workers.skipped} unreadable worker presence "
                  "object(s) skipped)")
        return 0

    if args.command == "run":
        plan, quantities = _load_plan_factory(args.plan)
        job = submit(plan, quantities, root=args.root,
                     shard_size=args.shard_size)
        print(f"coordinating job {job.key} "
              f"({len(job.shards)} shard(s))...", flush=True)
        values, metas = wait_for_job(job,
                                     participate=not args.no_participate,
                                     timeout_s=args.timeout)
        workers = sorted({str(m["worker"]) for m in metas})
        print(f"merged {job.points} point(s) of "
              f"{', '.join(job.names)} from {len(metas)} shard(s) "
              f"executed by {len(workers)} worker(s): {', '.join(workers)}")
        return 0

    parser.print_help()
    return 2


if __name__ == "__main__":
    import sys

    # Under ``python -m`` this file executes as ``__main__`` while the
    # package import created a second copy as ``repro.analysis.distrib``;
    # dispatch to that canonical copy so pickled payloads reference
    # importable module paths, never ``__main__``.
    from repro.analysis.distrib import main as _canonical_main

    sys.exit(_canonical_main())
