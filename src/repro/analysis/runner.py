"""Parallel experiment engine: declarative plans over a worker pool.

Every figure the paper reports is a loop over independent points — Vdd
steps, (Vdd, temperature) grid cells or Monte-Carlo samples.  This module
captures that loop once: an :class:`ExperimentPlan` names the axes and
enumerates the point grid, and an :class:`Executor` fans the points out
over a ``multiprocessing`` pool (falling back to a deterministic serial
loop), deduplicates repeated :class:`~repro.models.technology.Technology`
rebuilds through a keyed :class:`TechnologyCache`, streams the values into
the existing :class:`~repro.analysis.sweep.Series` /
:class:`~repro.analysis.montecarlo.MonteCarloSummary` types and records
per-run provenance (seed, axes, wall time) in a :class:`RunRecord`.

Usage, mirroring ``examples/quickstart.py``:

    from repro import get_technology
    from repro.analysis.runner import Executor, ExperimentPlan
    from repro.core.design_styles import SpeedIndependentDesign

    tech = get_technology("cmos90")
    design = SpeedIndependentDesign(tech)
    plan = ExperimentPlan.sweep("vdd", [0.3, 0.5, 0.7, 1.0])
    result = Executor(workers=4).run(
        plan, {"energy": design.energy_per_operation})
    print(result.series("energy").argmin())

Results are reassembled in point order, so a parallel run is bit-identical
to the serial fallback for the same plan and seed.  ``python -m
repro.analysis.runner --selftest`` smoke-tests exactly that equivalence
(plus the persistent-cache round trip).

Quantities that can evaluate a whole shard as numpy arrays can opt into
the *batched* protocol (:func:`batched` / :class:`BatchedQuantity`): when
every requested quantity supports it, the executor evaluates the plan in
one vectorised pass instead of one Python call per point, with Monte-Carlo
sample streams pre-drawn per index so seeding is unchanged.  The derived
per-point path evaluates the same kernel on a one-point batch, so batched
and per-point execution are bit-identical by construction.

Runs can additionally be persisted *between* processes through
:class:`repro.analysis.cache.ResultCache`: construct the executor as
``Executor(persistent=ResultCache(mode="rw"))`` and a plan whose content
key (plan declaration + quantity fingerprints + code-version salt) was
executed before is answered from ``.repro_cache/`` without evaluating a
single point, bit-identically to the original run.
"""

from __future__ import annotations

import itertools
import math
import multiprocessing
import os
import threading
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass, fields as dataclass_fields
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.analysis.cache import ResultCache, callable_fingerprint
from repro.errors import ConfigurationError
from repro.models.batch import TechnologyBatch
from repro.models.technology import Technology
from repro.models.variation import Corner, ProcessVariation

__all__ = [
    "Axis",
    "BatchedQuantity",
    "ExperimentPlan",
    "ExperimentResult",
    "Executor",
    "RunRecord",
    "TechnologyCache",
    "VariationSpec",
    "batched",
    "sample_seed",
]


# ---------------------------------------------------------------------------
# Plans


@dataclass(frozen=True)
class Axis:
    """One named experiment axis and its ordered point values."""

    name: str
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("axis name must not be empty")
        if not self.values:
            raise ConfigurationError(f"axis {self.name!r} has no values")


@dataclass(frozen=True)
class VariationSpec:
    """Process-variation magnitudes for a Monte-Carlo plan."""

    sigma_vth: float = 0.03
    sigma_drive: float = 0.05
    sigma_leak: float = 0.3
    corner: Corner = Corner.TYPICAL

    def key(self) -> Tuple:
        return (self.sigma_vth, self.sigma_drive, self.sigma_leak,
                self.corner.value)


@dataclass(frozen=True)
class ExperimentPlan:
    """A declarative grid of experiment points.

    A plan is pure data — axes, point values and (for Monte-Carlo) the
    seed, base technology and variation magnitudes; execution policy lives
    entirely in the :class:`Executor`.  Build plans through the
    constructors (:meth:`sweep`, :meth:`grid`, :meth:`monte_carlo`) rather
    than directly.  Three kinds are supported:

    * ``"sweep"`` — one axis; quantities are called as ``fn(x)``;
    * ``"grid"`` — two axes, the second varying fastest (row-major);
      quantities are called as ``fn(x, y)``;
    * ``"montecarlo"`` — one synthetic ``sample`` axis; quantities are
      called as ``fn(perturbed_technology)`` where sample *i* is drawn from
      its own RNG stream seeded :func:`sample_seed(seed, i) <sample_seed>`,
      so execution order (and the serial/parallel split) cannot change the
      values.

    :meth:`points` enumerates the coordinate tuples in the one canonical
    order every executor (and the persistent cache) reassembles results
    by; :attr:`shape` and :attr:`point_count` describe the geometry.
    """

    kind: str
    axes: Tuple[Axis, ...]
    seed: Optional[int] = None
    technology: Optional[Technology] = None
    variation: Optional[VariationSpec] = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def sweep(cls, variable: str,
              values: Sequence[float]) -> "ExperimentPlan":
        """A 1-D sweep of *variable* over *values*."""
        if len(values) == 0:
            raise ConfigurationError("sweep values must not be empty")
        return cls(kind="sweep",
                   axes=(Axis(variable, tuple(float(v) for v in values)),))

    @classmethod
    def grid(cls, x_name: str, x_values: Sequence[float],
             y_name: str, y_values: Sequence[float]) -> "ExperimentPlan":
        """A 2-D grid; the second axis varies fastest (row-major order)."""
        if x_name == y_name:
            raise ConfigurationError("grid axes must have distinct names")
        if len(x_values) == 0 or len(y_values) == 0:
            raise ConfigurationError("grid axes must not be empty")
        return cls(kind="grid",
                   axes=(Axis(x_name, tuple(float(v) for v in x_values)),
                         Axis(y_name, tuple(float(v) for v in y_values))))

    @classmethod
    def monte_carlo(cls, samples: int, *, technology: Technology,
                    seed: int = 0, sigma_vth: float = 0.03,
                    sigma_drive: float = 0.05, sigma_leak: float = 0.3,
                    corner: Corner = Corner.TYPICAL) -> "ExperimentPlan":
        """A seeded Monte-Carlo batch of *samples* perturbed technologies."""
        if samples < 1:
            raise ConfigurationError("samples must be >= 1")
        if technology is None:
            raise ConfigurationError("a Monte-Carlo plan needs a technology")
        return cls(kind="montecarlo",
                   axes=(Axis("sample", tuple(range(samples))),),
                   seed=int(seed),
                   technology=technology,
                   variation=VariationSpec(sigma_vth=sigma_vth,
                                           sigma_drive=sigma_drive,
                                           sigma_leak=sigma_leak,
                                           corner=corner))

    # -- geometry ----------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        """Axis lengths, outermost first."""
        return tuple(len(axis.values) for axis in self.axes)

    @property
    def point_count(self) -> int:
        """Total number of points in the grid."""
        count = 1
        for n in self.shape:
            count *= n
        return count

    def points(self) -> List[Tuple[float, ...]]:
        """All coordinate tuples in row-major order (last axis fastest)."""
        return list(itertools.product(*(axis.values for axis in self.axes)))

    def describe_axes(self) -> Dict[str, int]:
        """Axis name → point count, for provenance."""
        return {axis.name: len(axis.values) for axis in self.axes}

    def shard_ranges(self, shard_size: int) -> List[Tuple[int, int]]:
        """Contiguous ``(start, stop)`` index ranges covering the plan.

        The partitioning primitive of the distributed runner
        (:mod:`repro.analysis.distrib`): every shard holds at most
        *shard_size* points, sizes differ by at most one (so a fleet sees
        evenly weighted claims rather than a runt tail shard), and
        concatenating the ranges in order re-enumerates :meth:`points`
        exactly.  Indices are *global*, which is what keeps Monte-Carlo
        seeding shard-invariant: sample ``i`` draws from
        :func:`sample_seed(seed, i) <sample_seed>` no matter which shard —
        or machine — evaluates it.
        """
        if shard_size < 1:
            raise ConfigurationError("shard_size must be >= 1")
        count = self.point_count
        shards = -(-count // shard_size)
        base, extra = divmod(count, shards)
        ranges: List[Tuple[int, int]] = []
        start = 0
        for index in range(shards):
            stop = start + base + (1 if index < extra else 0)
            ranges.append((start, stop))
            start = stop
        return ranges


# ---------------------------------------------------------------------------
# Technology cache


def sample_seed(seed: int, index: int) -> int:
    """The RNG seed of Monte-Carlo sample *index* of a study seeded *seed*.

    Derived through :class:`numpy.random.SeedSequence` over the ``(seed,
    index)`` pair rather than ``seed + index``, so studies with nearby base
    seeds do not share sample streams (``seed + index`` would make seed 1's
    sample *i* identical to seed 0's sample *i + 1*, turning "independent
    replications" over seeds 0, 1, 2, ... into near-copies).
    """
    return int(np.random.SeedSequence((seed, index)).generate_state(1,
                                                                    np.uint64)[0])


def _technology_key(technology: Technology) -> Tuple:
    """A hashable identity for a (frozen, dict-bearing) Technology."""
    parts: List = []
    for field in dataclass_fields(technology):
        value = getattr(technology, field.name)
        if isinstance(value, dict):
            value = tuple(sorted(value.items()))
        parts.append(value)
    return tuple(parts)


class TechnologyCache:
    """Keyed, bounded cache of rebuilt :class:`Technology` objects.

    Rebuilding a technology — a corner shift, a temperature override or a
    Monte-Carlo perturbation — is pure, so identical rebuild requests can
    share one object.  Grid sweeps rebuild the same technology once per
    row and Monte-Carlo studies rebuild the same sample once per quantity;
    both collapse to a single construction here.  The cache is per-process:
    pool workers each hold their own copy, so the hit counters reported in
    provenance describe the coordinating process only.

    Entry bookkeeping is guarded by a lock, so one cache may be shared by
    the concurrent runs of a :class:`repro.analysis.session.Session`;
    builds happen outside the lock (two threads missing the same key both
    build — benign, rebuilds are pure — and the first insert wins).
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ConfigurationError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, Technology]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        _LIVE_CACHES.add(self)

    def __getstate__(self):
        # Pickled closures carry the entries, not the (unpicklable) lock.
        # Snapshot under the lock: a concurrent Session run may be
        # inserting entries, and iterating a mutating OrderedDict raises.
        with self._lock:
            state = self.__dict__.copy()
            state["_entries"] = OrderedDict(self._entries)
        del state["_lock"]
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        _LIVE_CACHES.add(self)

    def fork_guard(self) -> threading.Lock:
        """The entry lock, for callers about to ``fork()``.

        A fork taken while *another* thread holds the lock would hand
        every child a permanently-held lock copy (and possibly a
        mid-mutation entry dict).  Forking under ``with
        cache.fork_guard():`` quiesces the cache for the instant of the
        fork; the children's inherited (held) locks are re-armed by the
        :func:`os.register_at_fork` hook below.
        """
        return self._lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __cache_fingerprint__(self) -> str:
        # Persistent-cache keys must not depend on execution machinery:
        # the hit/miss counters and entry set vary run to run.
        return type(self).__name__

    def snapshot(self) -> Dict[Tuple, Technology]:
        """A copy of the current entries (for persistence between runs)."""
        with self._lock:
            return dict(self._entries)

    def preload(self, entries: Mapping[Tuple, Technology]) -> None:
        """Adopt previously persisted *entries* without touching counters."""
        with self._lock:
            for key, value in entries.items():
                if key not in self._entries:
                    self._entries[key] = value
                    if len(self._entries) > self.max_entries:
                        self._entries.popitem(last=False)

    def _get_or_build(self, key: Tuple,
                      build: Callable[[], Technology]) -> Technology:
        with self._lock:
            if key in self._entries:
                self.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self.misses += 1
        # Build outside the lock: rebuilds are pure, so a concurrent miss
        # on the same key costs a duplicated build, never a wrong entry.
        value = self._get_or_build_locked(key, build())
        return value

    def _get_or_build_locked(self, key: Tuple,
                             built: Technology) -> Technology:
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = built
            if len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            return built

    def scaled(self, base: Technology, **overrides: float) -> Technology:
        """Cached equivalent of ``base.scaled(**overrides)``."""
        key = ("scaled", _technology_key(base),
               tuple(sorted(overrides.items())))
        return self._get_or_build(key, lambda: base.scaled(**overrides))

    def perturbed(self, base: Technology, variation: VariationSpec,
                  stream_seed: int) -> Technology:
        """The Monte-Carlo sample drawn from the stream seeded *stream_seed*.

        The key is the (technology, variation, seed) triple, so evaluating
        several quantities on the same sample perturbs the technology once.
        """
        key = ("perturbed", _technology_key(base), variation.key(),
               stream_seed)

        def build() -> Technology:
            sampler = ProcessVariation(sigma_vth=variation.sigma_vth,
                                       sigma_drive=variation.sigma_drive,
                                       sigma_leak=variation.sigma_leak,
                                       corner=variation.corner,
                                       seed=stream_seed)
            return sampler.apply_to(base)

        return self._get_or_build(key, build)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


#: Every live TechnologyCache, so a fork (the pool's start method) can
#: re-arm the locks its children inherit.  A child forked while a
#: sibling thread held a cache's lock would otherwise deadlock on first
#: cache access — the lock's holder does not exist in the child.
_LIVE_CACHES: "weakref.WeakSet[TechnologyCache]" = weakref.WeakSet()


def _rearm_cache_locks_after_fork() -> None:  # pragma: no cover - in child
    for cache in list(_LIVE_CACHES):
        cache._lock = threading.Lock()


if hasattr(os, "register_at_fork"):  # POSIX; fork is the pool's method
    os.register_at_fork(after_in_child=_rearm_cache_locks_after_fork)


# ---------------------------------------------------------------------------
# Provenance


@dataclass
class RunRecord:
    """Provenance of one executed plan, for regression comparison.

    One record is produced per :meth:`Executor.run` call and answers, after
    the fact, "what exactly ran and how": the plan geometry (``kind``,
    ``axes``, ``points``), the reproducibility inputs (``seed``), which
    execution path evaluated the points (``executor`` is ``"serial"``,
    ``"fork-pool[N]"``, ``"batched[N points]"``, ``"distrib[N shards]"``
    or ``"persistent-cache"``), the wall time, and the
    cache economics — ``cache_hits``/``cache_misses`` count deduplicated
    :class:`Technology` rebuilds in this run, while the ``persistent_*``
    fields count plan points served from / missing in the on-disk store
    (``persistent_mode`` is ``"off"`` when no store was attached).
    """

    kind: str
    axes: Dict[str, int]
    quantities: Tuple[str, ...]
    points: int
    seed: Optional[int]
    executor: str
    workers: int
    wall_time_s: float
    cache_hits: int
    cache_misses: int
    persistent_mode: str = "off"
    persistent_hits: int = 0
    persistent_misses: int = 0
    #: Per-shard provenance of a distributed run (one dict per shard:
    #: worker id, index range, wall time, cache economics); empty for
    #: single-process runs.
    shards: Tuple[Dict[str, object], ...] = ()

    @property
    def shard_workers(self) -> Tuple[str, ...]:
        """Distinct worker ids that contributed shards, in first-seen order."""
        seen: Dict[str, None] = {}
        for shard in self.shards:
            worker = str(shard.get("worker", "?"))
            seen.setdefault(worker, None)
        return tuple(seen)

    def as_dict(self) -> Dict[str, object]:
        """A plain-dict view, convenient for logging or JSON dumps."""
        return {
            "kind": self.kind,
            "axes": dict(self.axes),
            "quantities": list(self.quantities),
            "points": self.points,
            "seed": self.seed,
            "executor": self.executor,
            "workers": self.workers,
            "wall_time_s": self.wall_time_s,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "persistent_mode": self.persistent_mode,
            "persistent_hits": self.persistent_hits,
            "persistent_misses": self.persistent_misses,
            "shards": [dict(shard) for shard in self.shards],
        }


# ---------------------------------------------------------------------------
# Results


@dataclass
class ExperimentResult:
    """Per-point values of every quantity, plus the run's provenance.

    ``values[name]`` lists the quantity over the plan's points in row-major
    order, regardless of which executor produced them.
    """

    plan: ExperimentPlan
    values: Dict[str, List[float]]
    provenance: RunRecord

    @property
    def names(self) -> List[str]:
        """Names of the recorded quantities."""
        return list(self.values)

    def _values_for(self, name: str) -> List[float]:
        try:
            return self.values[name]
        except KeyError as exc:
            raise ConfigurationError(f"unknown quantity {name!r}") from exc

    # -- 1-D views ---------------------------------------------------------

    def series(self, name: str):
        """The quantity as a :class:`Series` (sweep and MC plans only)."""
        from repro.analysis.sweep import Series

        if len(self.plan.axes) != 1:
            raise ConfigurationError(
                "series() needs a one-axis plan; use series_at() for grids")
        xs = self.plan.axes[0].values
        return Series(name=name,
                      points=[(float(x), y)
                              for x, y in zip(xs, self._values_for(name))])

    def to_sweep_result(self):
        """All quantities bundled as a legacy :class:`SweepResult`."""
        from repro.analysis.sweep import SweepResult

        if self.plan.kind not in ("sweep", "montecarlo"):
            raise ConfigurationError(
                "to_sweep_result() needs a one-axis plan")
        axis = self.plan.axes[0]
        return SweepResult(variable=axis.name,
                           xs=[float(x) for x in axis.values],
                           series={name: self.series(name)
                                   for name in self.values})

    # -- 2-D views ---------------------------------------------------------

    def value_grid(self, name: str) -> List[List[float]]:
        """Grid plans: ``grid[i][j]`` is the value at ``(x_i, y_j)``."""
        if self.plan.kind != "grid":
            raise ConfigurationError("value_grid() needs a grid plan")
        n_x, n_y = self.plan.shape
        flat = self._values_for(name)
        return [flat[i * n_y:(i + 1) * n_y] for i in range(n_x)]

    def series_at(self, name: str, **fixed: float):
        """A 1-D cut through a grid, fixing exactly one axis by name.

        ``result.series_at("energy", temperature_k=350.0)`` returns energy
        versus the *other* axis at the fixed axis's sampled value nearest
        350 K.
        """
        from repro.analysis.sweep import Series

        if self.plan.kind != "grid":
            raise ConfigurationError("series_at() needs a grid plan")
        if len(fixed) != 1:
            raise ConfigurationError("fix exactly one axis by name")
        (fixed_name, fixed_value), = fixed.items()
        names = [axis.name for axis in self.plan.axes]
        if fixed_name not in names:
            raise ConfigurationError(
                f"unknown axis {fixed_name!r}; plan axes: {names}")
        fixed_index = names.index(fixed_name)
        free_index = 1 - fixed_index
        fixed_axis = self.plan.axes[fixed_index]
        free_axis = self.plan.axes[free_index]
        nearest = min(range(len(fixed_axis.values)),
                      key=lambda i: (abs(fixed_axis.values[i] - fixed_value),
                                     fixed_axis.values[i]))
        grid = self.value_grid(name)
        if fixed_index == 0:
            column = grid[nearest]
        else:
            column = [row[nearest] for row in grid]
        label = f"{name}@{fixed_name}={fixed_axis.values[nearest]:g}"
        return Series(name=label,
                      points=[(float(x), y)
                              for x, y in zip(free_axis.values, column)])

    # -- Monte-Carlo views -------------------------------------------------

    def summary(self, name: str):
        """The quantity's :class:`MonteCarloSummary` (MC plans only)."""
        from repro.analysis.montecarlo import MonteCarloSummary

        if self.plan.kind != "montecarlo":
            raise ConfigurationError("summary() needs a Monte-Carlo plan")
        return MonteCarloSummary(samples=list(self._values_for(name)))

    # -- generic -----------------------------------------------------------

    def argmin(self, name: str) -> Tuple[Tuple[float, ...], float]:
        """``(coords, value)`` of the smallest value (first hit on ties).

        A NaN value raises :class:`ConfigurationError` — ``min()`` over
        NaNs would silently return an arbitrary point.
        """
        flat = self._values_for(name)
        points = self.plan.points()
        for index, value in enumerate(flat):
            if math.isnan(value):
                raise ConfigurationError(
                    f"quantity {name!r} is NaN at point {points[index]!r}; "
                    "a quantity that produced NaN is a modelling bug")
        best = min(range(len(flat)), key=lambda i: flat[i])
        return tuple(float(c) for c in points[best]), flat[best]


# ---------------------------------------------------------------------------
# Batched quantities


class BatchedQuantity:
    """A quantity that can evaluate a whole batch of plan points at once.

    Wraps a *batch kernel* ``batch_fn(*axis_arrays) -> array``:

    * sweep plans call it with one float array (the axis values of the
      shard's points);
    * grid plans call it with two float arrays (the per-point ``x`` and
      ``y`` coordinates, row-major order);
    * Monte-Carlo plans call it with one
      :class:`~repro.models.batch.TechnologyBatch` holding the per-sample
      perturbed parameters, pre-drawn from the exact per-index
      :func:`sample_seed` streams the scalar path uses.

    The kernel must be elementwise — sample ``i`` of the output may depend
    only on sample ``i`` of the inputs — and return a 1-D float array of
    the batch length.

    Instances are also plain per-point callables: unless an explicit
    ``point_fn`` is given, ``fn(x)`` / ``fn(x, y)`` /
    ``fn(perturbed_technology)`` lifts the coordinates into a one-point
    batch and evaluates the same kernel, which makes batched and
    point-by-point execution bit-identical *by construction*.  Pass
    ``point_fn`` only when a hand-written scalar path is genuinely needed;
    equivalence with the kernel is then the author's responsibility.
    """

    def __init__(self, batch_fn: Callable,
                 point_fn: Optional[Callable] = None) -> None:
        if not callable(batch_fn):
            raise ConfigurationError("batch_fn must be callable")
        if point_fn is not None and not callable(point_fn):
            raise ConfigurationError("point_fn must be callable when given")
        self.batch_fn = batch_fn
        self.point_fn = point_fn
        self.__name__ = getattr(batch_fn, "__name__", "batched_quantity")

    @staticmethod
    def _lift(coord) -> object:
        if isinstance(coord, Technology):
            return TechnologyBatch.of(coord)
        return np.asarray([float(coord)], dtype=float)

    def __call__(self, *coords):
        if self.point_fn is not None:
            return self.point_fn(*coords)
        out = np.asarray(self.batch_fn(*(self._lift(c) for c in coords)),
                         dtype=float)
        if out.shape != (1,):
            raise ConfigurationError(
                f"batch kernel returned shape {out.shape} for a "
                "one-point batch; kernels must return one value per point")
        return float(out[0])

    def batch(self, *axis_arrays) -> np.ndarray:
        """Evaluate the kernel over whole axis arrays (the batched path)."""
        return np.asarray(self.batch_fn(*axis_arrays), dtype=float)

    def __cache_fingerprint__(self) -> str:
        # Content-address by the wrapped callables, not by this wrapper
        # instance: two BatchedQuantity objects around the same kernel must
        # share persistent-cache entries (and differ from the bare kernel).
        parts = ["batched", callable_fingerprint(self.batch_fn)]
        if self.point_fn is not None:
            parts.append(callable_fingerprint(self.point_fn))
        return "(" + "|".join(parts) + ")"


def batched(batch_fn: Optional[Callable] = None, *,
            point: Optional[Callable] = None):
    """Declare a batch-capable quantity; usable as decorator or factory.

    ``batched(kernel)`` (or ``@batched`` above the kernel) wraps an
    elementwise array kernel as a :class:`BatchedQuantity`; the optional
    ``point=`` argument supplies an explicit scalar path instead of the
    derived one-point-batch evaluation.
    """
    def wrap(fn: Callable) -> BatchedQuantity:
        return BatchedQuantity(fn, point_fn=point)

    if batch_fn is None:
        return wrap
    return wrap(batch_fn)


def _supports_batch(quantity: Callable) -> bool:
    """Whether *quantity* implements the batched protocol.

    The protocol is structural — any callable exposing a callable
    ``batch`` attribute qualifies, not just :class:`BatchedQuantity` —
    so quantity authors can bring their own wrapper types.
    """
    return callable(getattr(quantity, "batch", None))


# ---------------------------------------------------------------------------
# Execution


class _Payload:
    """Everything one point evaluation needs; inherited by forked workers."""

    def __init__(self, plan: ExperimentPlan,
                 functions: Sequence[Callable],
                 cache: TechnologyCache) -> None:
        self.plan = plan
        self.functions = list(functions)
        self.cache = cache
        self.points = plan.points()

    def evaluate(self, index: int) -> Tuple[float, ...]:
        if self.plan.kind == "montecarlo":
            assert self.plan.seed is not None
            assert self.plan.technology is not None
            assert self.plan.variation is not None
            perturbed = self.cache.perturbed(self.plan.technology,
                                             self.plan.variation,
                                             sample_seed(self.plan.seed,
                                                         index))
            return tuple(float(fn(perturbed)) for fn in self.functions)
        coords = self.points[index]
        return tuple(float(fn(*coords)) for fn in self.functions)


#: Payload of the in-flight parallel run; forked workers inherit it, so the
#: quantities may be closures/lambdas that could never cross a pickle
#: boundary.  Only the point *indices* travel through the pool's queues.
#: Guarded by ``_POOL_CLAIM``: one pool run at a time per process, so a
#: concurrent run from another thread can never fork workers that inherit
#: the wrong plan's payload (those runs take the serial path instead).
_ACTIVE_PAYLOAD: Optional[_Payload] = None
_POOL_CLAIM = threading.Lock()


def _pool_worker(index: int) -> Tuple[float, ...]:
    assert _ACTIVE_PAYLOAD is not None, "worker started without a payload"
    return _ACTIVE_PAYLOAD.evaluate(index)


class Executor:
    """Runs an :class:`ExperimentPlan` over a worker pool or serially.

    Parameters
    ----------
    workers:
        Number of pool processes.  ``0`` or ``1`` selects the serial path;
        the pool also falls back to serial when the platform cannot fork.
        Both paths enumerate points in the same order and reassemble by
        index, so results are bit-identical.
    cache:
        Shared :class:`TechnologyCache`; a private one is created if omitted.
    chunk_size:
        Points per pool task; defaults to ``points // (4 * workers)``.
    persistent:
        Optional :class:`repro.analysis.cache.ResultCache`.  When attached
        (and not in ``"off"`` mode), :meth:`run` first looks the plan up in
        the on-disk store and, on a hit, returns the persisted per-point
        values without evaluating anything; in ``"rw"`` mode computed runs
        are stored afterwards.  The technology cache's entries are
        persisted alongside so later processes skip the rebuilds too —
        like the cache's hit counters, this covers the coordinating
        process only: rebuilds that happened inside pool workers stay in
        the workers' copies and are not captured.
    distrib:
        Optional :class:`repro.analysis.distrib.DistribBackend`.  When
        attached, a plan whose payload can cross a pickle boundary is
        partitioned into content-addressed shards over the backend's
        shared root, executed by whichever fleet workers claim them (the
        coordinator participates by default, so progress never depends on
        external workers), and merged bit-identically to the serial path;
        the :class:`RunRecord` then reports the ``"distrib[N shards]"``
        executor plus per-shard provenance.  Plans whose quantities cannot
        be pickled (closures over local state) fall back to the local
        pool/serial paths.
    batch:
        Whether to use the vectorised path when *every* requested quantity
        supports the batched protocol (see :func:`batched`); ``False``
        forces point-by-point evaluation, which is bit-identical and only
        useful for comparison and tests.  Mixed quantity sets (some
        batched, some not) always evaluate point by point, so one result
        never mixes the two paths.
    """

    def __init__(self, workers: int = 0,
                 cache: Optional[TechnologyCache] = None,
                 chunk_size: Optional[int] = None,
                 persistent: Optional[ResultCache] = None,
                 distrib: Optional[object] = None,
                 batch: bool = True) -> None:
        if workers < 0:
            raise ConfigurationError("workers must be >= 0")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        self.workers = workers
        self.cache = cache if cache is not None else TechnologyCache()
        self.chunk_size = chunk_size
        if persistent is not None and not persistent.enabled:
            persistent = None
        self.persistent = persistent
        self.distrib = distrib
        self.batch = batch
        if self.persistent is not None:
            self.cache.preload(self.persistent.load_technologies())

    def __cache_fingerprint__(self) -> str:
        # An executor captured in a quantity closure must not leak its
        # volatile state (cache counters, pool size) into content keys.
        return type(self).__name__

    # ------------------------------------------------------------------

    def run(self, plan: ExperimentPlan,
            quantities: Mapping[str, Callable]) -> ExperimentResult:
        """Evaluate every quantity at every plan point.

        ``quantities`` maps series names to callables taking the point
        coordinates (sweep: ``fn(x)``, grid: ``fn(x, y)``) or, for
        Monte-Carlo plans, the perturbed technology.  Exceptions are not
        swallowed: a quantity that cannot be evaluated is a modelling bug
        the experiment should surface, exactly as in the legacy loops.

        With a ``persistent`` cache attached, a plan whose content key is
        already stored returns the persisted values without calling any
        quantity (the :class:`RunRecord` then reports the
        ``"persistent-cache"`` executor and ``persistent_hits ==
        points``); quantities must therefore be pure functions of the plan
        point — see :mod:`repro.analysis.cache` for the keying contract.
        """
        if not quantities:
            raise ConfigurationError("at least one quantity is required")
        names = tuple(quantities)
        count = plan.point_count
        hits_before = self.cache.hits
        misses_before = self.cache.misses
        started = time.perf_counter()
        persistent_hits = persistent_misses = 0
        key = None
        cached_values = None
        if self.persistent is not None:
            key = self.persistent.result_key(plan, quantities)
            cached_values = self.persistent.load_result(key, names, count)
        shard_records: Tuple[Dict[str, object], ...] = ()
        if cached_values is not None:
            values = cached_values
            mode = "persistent-cache"
            persistent_hits = count
        else:
            if self.persistent is not None:
                persistent_misses = count
            values = None
            mode = "serial"
            if self.distrib is not None:
                distributed = self.distrib.execute(plan, quantities)
                if distributed is not None:
                    values, shard_records = distributed
                    mode = f"distrib[{len(shard_records)} shards]"
            if values is None:
                values, mode = self._local_values(plan, quantities, names)
            store_needed = (self.persistent is not None
                            and self.persistent.writable)
            if store_needed and shard_records:
                # The distrib coordinator already stored the merge under
                # this very key when its root is the persistent cache's
                # root, with the fleet's provenance meta a re-store would
                # clobber.  Skip only if that entry is well-formed — a
                # pre-existing *corrupt* payload must still be healed.
                store_needed = not self.persistent.result_valid(
                    key, names, count)
            if store_needed:
                self.persistent.store_result(key, values, meta={
                    "kind": plan.kind,
                    "axes": plan.describe_axes(),
                    "points": count,
                    "seed": plan.seed,
                    "quantities": list(names),
                })
                self.persistent.merge_technologies(self.cache.snapshot())
        provenance = RunRecord(
            kind=plan.kind,
            axes=plan.describe_axes(),
            quantities=names,
            points=count,
            seed=plan.seed,
            executor=mode,
            workers=self.workers,
            wall_time_s=time.perf_counter() - started,
            # Deltas, not the shared cache's lifetime counters: an executor
            # (and its cache) outlives many runs, and each RunRecord
            # describes exactly one of them.
            cache_hits=self.cache.hits - hits_before,
            cache_misses=self.cache.misses - misses_before,
            persistent_mode=(self.persistent.mode if self.persistent is not None
                             else "off"),
            persistent_hits=persistent_hits,
            persistent_misses=persistent_misses,
            shards=shard_records,
        )
        return ExperimentResult(plan=plan, values=values,
                                provenance=provenance)

    def run_shard(self, plan: ExperimentPlan,
                  quantities: Mapping[str, Callable],
                  start: int, stop: int) -> Dict[str, List[float]]:
        """Evaluate every quantity at plan points ``start <= index < stop``.

        The shard primitive of :mod:`repro.analysis.distrib`: indices are
        *global* plan indices, so a Monte-Carlo sample keeps its own seed
        stream no matter which shard (or machine) evaluates it, and
        concatenating the slices of :meth:`ExperimentPlan.shard_ranges` in
        order is bit-identical to a :meth:`run` over the whole plan.
        """
        if not quantities:
            raise ConfigurationError("at least one quantity is required")
        if not 0 <= start <= stop <= plan.point_count:
            raise ConfigurationError(
                f"shard [{start}, {stop}) outside plan of "
                f"{plan.point_count} points")
        names = tuple(quantities)
        values, _ = self._local_values(plan, quantities, names,
                                       indices=range(start, stop))
        return values

    def _local_values(self, plan: ExperimentPlan,
                      quantities: Mapping[str, Callable],
                      names: Tuple[str, ...],
                      indices: Optional[range] = None,
                      ) -> Tuple[Dict[str, List[float]], str]:
        """Evaluate *indices* (default: all points) in this process tree."""
        if indices is None:
            indices = range(plan.point_count)
        functions = [quantities[name] for name in names]
        if self.batch and all(_supports_batch(fn) for fn in functions):
            return (self._batched_values(plan, names, functions, indices),
                    f"batched[{len(indices)} points]")
        payload = _Payload(plan, functions, self.cache)
        values: Dict[str, List[float]] = {name: [] for name in names}
        mode = "serial"
        rows: Iterable[Tuple[float, ...]]
        if (self.workers >= 2
                and "fork" in multiprocessing.get_all_start_methods()
                and _POOL_CLAIM.acquire(blocking=False)):
            # The claim is released by _parallel_rows once the pool is
            # done.
            rows = self._parallel_rows(payload, indices)
            mode = f"fork-pool[{self.workers}]"
        else:
            rows = (payload.evaluate(i) for i in indices)
        for row in rows:
            for name, value in zip(names, row):
                values[name].append(value)
        return values, mode

    def _batched_values(self, plan: ExperimentPlan, names: Tuple[str, ...],
                        functions: Sequence[Callable],
                        indices: range) -> Dict[str, List[float]]:
        """One vectorised pass over *indices* for batch-capable quantities."""
        idx = list(indices)
        if not idx:
            return {name: [] for name in names}
        if plan.kind == "montecarlo":
            args: Tuple = (self._predrawn_batch(plan, idx),)
        elif plan.kind == "grid":
            points = plan.points()
            args = (np.asarray([points[i][0] for i in idx], dtype=float),
                    np.asarray([points[i][1] for i in idx], dtype=float))
        else:
            axis = plan.axes[0].values
            args = (np.asarray([axis[i] for i in idx], dtype=float),)
        values: Dict[str, List[float]] = {}
        for name, fn in zip(names, functions):
            out = np.asarray(fn.batch(*args), dtype=float)
            if out.shape != (len(idx),):
                raise ConfigurationError(
                    f"batch kernel for quantity {name!r} returned shape "
                    f"{out.shape}, expected ({len(idx)},)")
            values[name] = [float(v) for v in out]
        return values

    def _predrawn_batch(self, plan: ExperimentPlan,
                        idx: Sequence[int]) -> TechnologyBatch:
        """Per-sample variation draws for *idx*, as a technology batch.

        Replicates :meth:`repro.models.variation.ProcessVariation.sample`
        draw for draw — one ``default_rng(sample_seed(seed, i))`` stream
        per global index ``i``, same draw order, same clamping — so sample
        assignment is identical to the scalar path no matter how the plan
        is sharded.
        """
        assert plan.seed is not None
        assert plan.technology is not None
        assert plan.variation is not None
        spec = plan.variation
        mismatch = spec.corner.mismatch_factor
        offsets = np.empty(len(idx))
        deratings = np.empty(len(idx))
        factors = np.empty(len(idx))
        for j, i in enumerate(idx):
            rng = np.random.default_rng(sample_seed(plan.seed, i))
            offsets[j] = float(rng.normal(spec.corner.vth_shift,
                                          spec.sigma_vth * mismatch))
            deratings[j] = max(0.2, float(rng.normal(spec.corner.drive_factor,
                                                     spec.sigma_drive
                                                     * mismatch)))
            factors[j] = float(rng.lognormal(mean=0.0, sigma=spec.sigma_leak))
        return TechnologyBatch.from_samples(plan.technology, offsets,
                                            deratings, factors)

    def _parallel_rows(self, payload: _Payload,
                       indices: range) -> Iterable[Tuple[float, ...]]:
        """Pool evaluation; the caller must hold ``_POOL_CLAIM``."""
        global _ACTIVE_PAYLOAD
        context = multiprocessing.get_context("fork")
        chunk = self.chunk_size or max(1, len(indices) // (4 * self.workers))
        try:
            _ACTIVE_PAYLOAD = payload
            # Fork the workers with the shared technology cache quiesced:
            # a concurrent Session run mutating it at the fork instant
            # would hand the children a held lock / torn entry dict.
            with payload.cache.fork_guard():
                pool = context.Pool(processes=self.workers)
            with pool:
                # imap preserves submission order, so the reassembled rows
                # match the serial enumeration exactly.
                for row in pool.imap(_pool_worker, indices,
                                     chunksize=chunk):
                    yield row
        finally:
            _ACTIVE_PAYLOAD = None
            _POOL_CLAIM.release()


# ---------------------------------------------------------------------------
# Self-test entry point (python -m repro.analysis.runner --selftest)


def _selftest_delay(vdd: float) -> float:
    from repro.models.gate import GateModel
    from repro.models.technology import get_technology

    return GateModel(technology=get_technology("cmos90")).delay(vdd)


def _selftest_energy(vdd: float) -> float:
    from repro.models.gate import GateModel
    from repro.models.technology import get_technology

    return GateModel(technology=get_technology("cmos90")).transition_energy(vdd)


def _selftest_grid_energy(vdd: float, temperature_k: float) -> float:
    from repro.models.gate import GateModel
    from repro.models.technology import get_technology

    base = get_technology("cmos90")
    warm = _SELFTEST_CACHE.scaled(base, temperature_k=temperature_k)
    return GateModel(technology=warm).transition_energy(vdd)


def _selftest_mc_delay(technology: Technology) -> float:
    from repro.models.gate import GateModel

    return GateModel(technology=technology).delay(0.4)


def _selftest_batch_delay(vdds: np.ndarray) -> np.ndarray:
    from repro.models.batch import gate_delay
    from repro.models.technology import get_technology

    return gate_delay(TechnologyBatch.of(get_technology("cmos90")), vdds)


def _selftest_batch_mc_delay(batch: TechnologyBatch) -> np.ndarray:
    from repro.models.batch import gate_delay

    return gate_delay(batch, 0.4)


_selftest_batched_delay = batched(_selftest_batch_delay)
_selftest_batched_mc = batched(_selftest_batch_mc_delay)


_SELFTEST_CACHE = TechnologyCache()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI used by CI to smoke-test the pool and the persistent cache
    without the benchmark suite."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.runner",
        description="Smoke-test the parallel experiment engine.")
    parser.add_argument("--selftest", action="store_true",
                        help="run the serial-vs-parallel equivalence checks")
    parser.add_argument("--workers", type=int, default=2,
                        help="pool size for the parallel side (default: 2)")
    args = parser.parse_args(argv)
    if not args.selftest:
        parser.print_help()
        return 2
    if args.workers < 2:
        parser.error("--selftest needs --workers >= 2 to exercise the pool")

    from repro.models.technology import get_technology

    failures = 0

    def check(label: str, ok: bool) -> None:
        nonlocal failures
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
        if not ok:
            failures += 1

    vdds = [0.25 + 0.05 * i for i in range(12)]
    quantities = {"delay": _selftest_delay, "energy": _selftest_energy}

    print(f"runner selftest (workers={args.workers})")
    plan = ExperimentPlan.sweep("vdd", vdds)
    serial = Executor(workers=0).run(plan, quantities)
    pooled = Executor(workers=args.workers).run(plan, quantities)
    check("1-D sweep: serial == parallel (bit-identical)",
          serial.values == pooled.values)
    check("1-D sweep: parallel executor engaged",
          pooled.provenance.executor.startswith("fork-pool")
          or "fork" not in multiprocessing.get_all_start_methods())

    grid = ExperimentPlan.grid("vdd", vdds[:6], "temperature_k",
                               [250.0, 300.0, 350.0])
    serial_g = Executor(workers=0).run(grid,
                                       {"energy": _selftest_grid_energy})
    pooled_g = Executor(workers=args.workers).run(
        grid, {"energy": _selftest_grid_energy})
    rows = serial_g.value_grid("energy")
    check("2-D grid: shape matches the plan",
          len(rows) == 6 and all(len(row) == 3 for row in rows))
    check("2-D grid: serial == parallel (bit-identical)",
          serial_g.values == pooled_g.values)

    mc = ExperimentPlan.monte_carlo(24, technology=get_technology("cmos90"),
                                    seed=7)
    serial_mc = Executor(workers=0).run(mc, {"delay": _selftest_mc_delay})
    pooled_mc = Executor(workers=args.workers).run(
        mc, {"delay": _selftest_mc_delay})
    check("Monte-Carlo: serial == parallel for a fixed seed",
          serial_mc.values == pooled_mc.values)
    check("Monte-Carlo: samples spread",
          serial_mc.summary("delay").relative_spread > 0.0)

    batched_sweep = Executor(workers=0).run(
        plan, {"delay": _selftest_batched_delay})
    point_sweep = Executor(workers=0, batch=False).run(
        plan, {"delay": _selftest_batched_delay})
    check("batched sweep: vectorised executor engaged",
          batched_sweep.provenance.executor.startswith("batched["))
    check("batched sweep: batched == per-point (bit-identical)",
          batched_sweep.values == point_sweep.values)
    mc_batched = Executor(workers=0).run(mc, {"delay": _selftest_batched_mc})
    mc_point = Executor(workers=0, batch=False).run(
        mc, {"delay": _selftest_batched_mc})
    check("batched Monte-Carlo: batched == per-point (bit-identical)",
          mc_batched.values == mc_point.values)
    shard = Executor(workers=0).run_shard(mc, {"delay": _selftest_batched_mc},
                                          5, 13)
    check("batched Monte-Carlo: shard slice matches the full run",
          shard["delay"] == mc_batched.values["delay"][5:13])
    mixed = Executor(workers=0).run(
        plan, {"delay": _selftest_batched_delay,
               "energy": _selftest_energy})
    check("mixed quantity set falls back to per-point",
          mixed.provenance.executor == "serial"
          and mixed.values["energy"] == serial.values["energy"])

    for record in (pooled.provenance, pooled_g.provenance,
                   pooled_mc.provenance):
        check(f"provenance recorded ({record.kind})",
              record.points > 0 and record.wall_time_s >= 0.0)

    # Persistent cache round trip: a second executor over the same store
    # must serve the identical values without evaluating a point, and a
    # read-only store must never create a file.
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        first = Executor(persistent=ResultCache(root=tmp, mode="rw")).run(
            plan, quantities)
        second = Executor(persistent=ResultCache(root=tmp, mode="rw")).run(
            plan, quantities)
        check("persistent cache: first run computes",
              first.provenance.persistent_hits == 0
              and first.provenance.persistent_misses == len(vdds))
        check("persistent cache: second run hits every point",
              second.provenance.executor == "persistent-cache"
              and second.provenance.persistent_hits == len(vdds))
        check("persistent cache: round trip is bit-identical",
              second.values == first.values == serial.values)
        readonly = ResultCache(root=tmp, mode="ro")
        ro_result = Executor(persistent=readonly).run(
            ExperimentPlan.sweep("vdd", vdds[:3]), quantities)
        check("persistent cache: ro mode computes a miss without writing",
              ro_result.provenance.persistent_hits == 0
              and readonly.writes == 0
              and ro_result.values["delay"] == serial.values["delay"][:3])

    print("selftest:", "PASS" if failures == 0 else f"{failures} FAILURES")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    import sys

    # Under ``python -m`` this file executes as ``__main__`` while the
    # package import created a second copy as ``repro.analysis.runner``;
    # dispatch to that canonical copy so the pool payload and the worker
    # function live in one module.
    from repro.analysis.runner import main as _canonical_main

    sys.exit(_canonical_main())
