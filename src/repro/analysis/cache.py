"""Persistent, content-keyed experiment cache (``.repro_cache/``).

The in-memory :class:`~repro.analysis.runner.TechnologyCache` deduplicates
work *within* one process; this module persists finished work *between*
processes and runs.  Two stores live under one cache root (by default
``.repro_cache/`` in the working directory, overridable through the
``REPRO_CACHE_DIR`` environment variable):

* **results** — the complete per-point value lists of an executed
  :class:`~repro.analysis.runner.ExperimentPlan`, keyed by a content hash
  of the plan (kind, axes, seed, variation, technology), the quantity
  names and a best-effort fingerprint of each quantity callable;
* **technologies** — the entries of the executor's keyed
  :class:`~repro.analysis.runner.TechnologyCache`, so corner shifts,
  temperature overrides and Monte-Carlo perturbations built in a previous
  run are not rebuilt in the next one.

Every key is namespaced by a **code-version salt**: a hash over the source
of the whole ``repro`` package.  Any edit to any module under ``repro``
changes the salt, which atomically invalidates every cached result — the
cache can return stale values only if the code that produced them is
byte-identical to the code asking for them.

The fingerprinting of quantity callables is *best effort*: it hashes the
function's compiled code, its closure contents and (for bound methods)
the instance state through :func:`stable_repr`.  The documented contract
is therefore the same one the runner already imposes: quantities must be
pure functions of the plan point and of code/state reachable from the
callable.  Objects that are pure execution machinery can opt out of
fingerprint recursion by defining ``__cache_fingerprint__()``.

Because every entry is content-keyed, the store doubles as the
coordination substrate for sharded multi-machine execution
(:mod:`repro.analysis.distrib`): workers claim disjoint shards through
the **lease** primitives (:meth:`ResultCache.claim_lease` /
:meth:`~ResultCache.heartbeat_lease` / :meth:`~ResultCache.release_lease`),
publish shard results with :meth:`~ResultCache.store_result` under shard
keys, and coordinators merge by key.  A lease records its owner, its TTL
and a heartbeat timestamp; a lease whose heartbeat is older than its TTL
is *expired* and may be atomically stolen, so a killed worker's shard is
reclaimed by a survivor.

Inspect or reset the store from the command line::

    python -m repro.analysis.cache --stats           # human-readable
    python -m repro.analysis.cache --stats --json    # machine-readable
    python -m repro.analysis.cache --clear           # everything
    python -m repro.analysis.cache --clear --stale   # old code versions only
    python -m repro.analysis.cache --selftest        # store + lease smoke test

Selection of the cache at run time is a one-argument affair: pass
``Executor(persistent=ResultCache(mode="rw"))``, or for the benchmark
suite ``pytest benchmarks --runner-cache rw``.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import json
import os
import pickle
import time
import types
import uuid
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_MODES",
    "DEFAULT_LEASE_TTL",
    "ResultCache",
    "callable_fingerprint",
    "code_version_salt",
    "default_cache_root",
    "result_key",
    "stable_repr",
]

#: Environment variable that overrides the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Directory created in the working directory when the variable is unset.
DEFAULT_DIRNAME = ".repro_cache"
#: Accepted cache modes: ``off`` (inert), ``rw`` (read and write),
#: ``ro`` (read only — never creates or modifies any file).
CACHE_MODES = ("off", "rw", "ro")
#: Seconds a lease may go without a heartbeat before it is expired and
#: stealable by another worker.
DEFAULT_LEASE_TTL = 30.0

_RECURSION_DEPTH = 4


def default_cache_root() -> Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``./.repro_cache``."""
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_DIRNAME)


@functools.lru_cache(maxsize=None)
def _salt_of_package_dir(package_dir: str) -> str:
    digest = hashlib.sha256()
    for path in sorted(Path(package_dir).rglob("*.py")):
        digest.update(str(path.relative_to(package_dir)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def code_version_salt() -> str:
    """A hash over the source of every module in the ``repro`` package.

    Used to namespace all persisted entries: editing any library source file
    yields a different salt, so results computed by older code are never
    served to newer code (they linger on disk until ``--clear --stale``).
    """
    import repro

    return _salt_of_package_dir(str(Path(repro.__file__).resolve().parent))


# ---------------------------------------------------------------------------
# Content fingerprinting


def stable_repr(value, depth: int = _RECURSION_DEPTH,
                _seen: Optional[set] = None) -> str:
    """A process-independent textual identity for *value*.

    Unlike ``repr()``, the result never embeds object addresses: scalars
    render exactly (``repr`` of a float round-trips), containers, enums and
    dataclasses recurse field by field, callables delegate to
    :func:`callable_fingerprint`, and any other object renders as its type
    name plus (depth permitting) its sorted ``__dict__``.  Objects that
    define ``__cache_fingerprint__()`` render as whatever that returns —
    the opt-out used by execution machinery such as the executor itself,
    whose counters must not leak into content keys.
    """
    if _seen is None:
        _seen = set()
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    marker = id(value)
    if marker in _seen:
        return f"<cycle:{type(value).__name__}>"
    _seen.add(marker)
    try:
        custom = getattr(value, "__cache_fingerprint__", None)
        if custom is not None:
            return str(custom())
        if isinstance(value, types.ModuleType):
            return f"<module:{value.__name__}>"
        if isinstance(value, enum.Enum):
            return f"{type(value).__name__}.{value.name}"
        if isinstance(value, (tuple, list)):
            inner = ",".join(stable_repr(v, depth, _seen) for v in value)
            return f"[{inner}]"
        if isinstance(value, (dict,)):
            items = sorted((stable_repr(k, depth, _seen),
                            stable_repr(v, depth, _seen))
                           for k, v in value.items())
            return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            fields = ",".join(
                f"{f.name}={stable_repr(getattr(value, f.name), depth, _seen)}"
                for f in dataclasses.fields(value))
            return f"{type(value).__name__}({fields})"
        if callable(value):
            return callable_fingerprint(value, depth, _seen)
        attrs = getattr(value, "__dict__", None)
        if attrs and depth > 0:
            inner = ",".join(
                f"{name}={stable_repr(attr, depth - 1, _seen)}"
                for name, attr in sorted(attrs.items()))
            return f"{type(value).__name__}<{inner}>"
        return f"<{type(value).__name__}>"
    finally:
        _seen.discard(marker)


def _referenced_global_names(code) -> List[str]:
    """All global names a code object (or its nested lambdas) may read."""
    names = set(code.co_names)
    for const in code.co_consts:
        if hasattr(const, "co_code"):
            names.update(_referenced_global_names(const))
    return sorted(names)


def _code_hash(code) -> str:
    digest = hashlib.sha256(code.co_code)
    for const in code.co_consts:
        if hasattr(const, "co_code"):  # nested lambda/def
            digest.update(_code_hash(const).encode())
        else:
            digest.update(repr(const).encode())
    digest.update(repr(code.co_names).encode())
    digest.update(repr(code.co_varnames).encode())
    return digest.hexdigest()[:16]


def callable_fingerprint(fn: Callable, depth: int = _RECURSION_DEPTH,
                         _seen: Optional[set] = None) -> str:
    """A content identity for a quantity callable.

    Plain functions and lambdas hash their compiled code plus their
    default arguments, the contents of their closure cells *and* every
    module-level global they reference (benchmark constants like sweep
    periods live outside the ``repro`` package, so the code-version salt
    alone would not see them change); bound methods add the instance
    state; partials add the frozen arguments.  Two callables with the same
    name but different bodies, defaults (the ``lambda x, metric=metric:``
    binding idiom), closures, referenced constants or instance parameters
    therefore key different cache entries.
    """
    if _seen is None:
        _seen = set()
    if isinstance(fn, functools.partial):
        return ("partial(" + callable_fingerprint(fn.func, depth, _seen)
                + "," + stable_repr(fn.args, depth, _seen)
                + "," + stable_repr(fn.keywords, depth, _seen) + ")")
    parts: List[str] = [getattr(fn, "__module__", "?") or "?",
                        getattr(fn, "__qualname__", type(fn).__name__)]
    bound_self = getattr(fn, "__self__", None)
    if bound_self is not None:
        parts.append(stable_repr(bound_self, depth - 1, _seen))
        fn = fn.__func__
    code = getattr(fn, "__code__", None)
    if code is not None:
        parts.append(_code_hash(code))
        defaults = getattr(fn, "__defaults__", None)
        if defaults:
            parts.append("defaults=" + stable_repr(defaults, depth - 1,
                                                   _seen))
        kwdefaults = getattr(fn, "__kwdefaults__", None)
        if kwdefaults:
            parts.append("kwdefaults=" + stable_repr(kwdefaults, depth - 1,
                                                     _seen))
        module_globals = getattr(fn, "__globals__", None)
        if module_globals is not None:
            for name in _referenced_global_names(code):
                # Builtins and attribute names fail this membership test;
                # what remains are the module-level constants, helpers and
                # classes the function actually reads.
                if name in module_globals:
                    parts.append(name + "=" + stable_repr(
                        module_globals[name], depth - 1, _seen))
    closure = getattr(fn, "__closure__", None)
    if closure:
        for cell in closure:
            try:
                contents = cell.cell_contents
            except ValueError:  # empty cell
                parts.append("<empty-cell>")
            else:
                parts.append(stable_repr(contents, depth - 1, _seen))
    return "fn(" + "|".join(parts) + ")"


def result_key(plan, quantities: Mapping[str, Callable],
               salt: Optional[str] = None) -> str:
    """The content key of one ``(plan, quantities)`` execution.

    The key covers the plan's full declaration (kind, axes and their exact
    point values, seed, variation spec, base technology), the quantity
    names in evaluation order, the fingerprint of each quantity callable
    and the code-version salt.  Identical keys therefore mean "the same
    code would evaluate the same functions at the same points".
    """
    digest = hashlib.sha256()
    digest.update((salt or code_version_salt()).encode())
    digest.update(stable_repr(plan).encode())
    for name, fn in quantities.items():
        digest.update(name.encode())
        digest.update(b"\0")
        digest.update(callable_fingerprint(fn).encode())
        digest.update(b"\0")
    return digest.hexdigest()[:32]


# ---------------------------------------------------------------------------
# The on-disk store


class ResultCache:
    """Persistent store of executed-plan results and Technology rebuilds.

    Parameters
    ----------
    root:
        Cache directory; defaults to :func:`default_cache_root`.
    mode:
        ``"rw"`` reads and writes, ``"ro"`` only reads (guaranteed never to
        create or modify a file), ``"off"`` is inert — an ``off`` cache can
        be passed anywhere a cache is accepted and behaves like ``None``.
    salt:
        Code-version namespace; defaults to :func:`code_version_salt`.
        Tests inject fixed salts to exercise invalidation.

    Layout on disk::

        <root>/results/<salt>/<key>.json   one executed plan (or shard) each
        <root>/technology/<salt>.pkl       pickled TechnologyCache entries
        <root>/leases/<salt>/<key>.json    one live shard claim each

    Result payloads are JSON with floats serialised via ``repr`` round-trip,
    so a cache hit reproduces the computed values bit for bit.
    """

    def __init__(self, root=None, mode: str = "rw",
                 salt: Optional[str] = None) -> None:
        if mode not in CACHE_MODES:
            raise ConfigurationError(
                f"unknown cache mode {mode!r}; choose from {CACHE_MODES}")
        self.root = Path(root) if root is not None else default_cache_root()
        self.mode = mode
        self.salt = salt if salt is not None else code_version_salt()
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def __cache_fingerprint__(self) -> str:
        return type(self).__name__

    # -- mode predicates ---------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether the cache participates at all (``rw`` or ``ro``)."""
        return self.mode != "off"

    @property
    def writable(self) -> bool:
        """Whether stores are permitted (``rw`` only)."""
        return self.mode == "rw"

    # -- paths -------------------------------------------------------------

    def _results_dir(self, salt: Optional[str] = None) -> Path:
        return self.root / "results" / (salt or self.salt)

    def _technology_file(self, salt: Optional[str] = None) -> Path:
        return self.root / "technology" / f"{salt or self.salt}.pkl"

    def _result_file(self, key: str) -> Path:
        return self._results_dir() / f"{key}.json"

    def _lease_file(self, key: str) -> Path:
        return self.root / "leases" / self.salt / f"{key}.json"

    # -- result payloads ---------------------------------------------------

    def result_key(self, plan, quantities: Mapping[str, Callable]) -> str:
        """Content key of ``(plan, quantities)`` under this cache's salt."""
        return result_key(plan, quantities, salt=self.salt)

    def _read_values(self, key: str, names: Sequence[str],
                     points: int) -> Optional[Dict[str, List[float]]]:
        """Parse *key*'s payload; ``None`` unless it carries exactly
        *names*, each with *points* values.  No counter updates."""
        try:
            payload = json.loads(self._result_file(key).read_text())
            values = payload["values"]
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if (sorted(values) != sorted(names)
                or any(len(values[name]) != points for name in names)):
            return None
        return {name: [float(v) for v in values[name]] for name in names}

    def load_result(self, key: str,
                    names: Sequence[str],
                    points: int) -> Optional[Dict[str, List[float]]]:
        """The stored per-point values for *key*, or ``None`` on a miss.

        A payload that does not carry exactly *names*, each with *points*
        values, is treated as a miss rather than served partially.
        """
        if not self.enabled:
            return None
        values = self._read_values(key, names, points)
        if values is None:
            self.misses += 1
            return None
        self.hits += 1
        return values

    def result_valid(self, key: str, names: Sequence[str],
                     points: int) -> bool:
        """Whether a well-formed payload for *key* exists.

        An integrity probe, not a cache access: unlike
        :meth:`load_result` it never touches the session hit/miss
        counters, so heal checks (store only over a missing-or-corrupt
        entry) do not skew the stats that ``--stats --json`` exposes to
        fleet monitoring.
        """
        return self.enabled and self._read_values(key, names,
                                                  points) is not None

    def load_meta(self, key: str) -> Optional[Dict[str, object]]:
        """The ``meta`` mapping stored with *key*, or ``None`` on a miss.

        Shard results carry their provenance (worker id, wall time, cache
        hits) here; the coordinator folds it into the merged
        :class:`~repro.analysis.runner.RunRecord`.
        """
        if not self.enabled:
            return None
        try:
            payload = json.loads(self._result_file(key).read_text())
            meta = payload["meta"]
        except (OSError, ValueError, KeyError, TypeError):
            return None
        return meta if isinstance(meta, dict) else None

    def has_result(self, key: str) -> bool:
        """Whether a payload for *key* exists (without counting a hit)."""
        return self.enabled and self._result_file(key).is_file()

    def store_result(self, key: str, values: Mapping[str, Sequence[float]],
                     meta: Optional[Mapping[str, object]] = None) -> bool:
        """Persist one executed plan's values; no-op unless ``rw``."""
        if not self.writable:
            return False
        payload = {
            "values": {name: list(vals) for name, vals in values.items()},
            "meta": dict(meta or {}),
            "created": time.time(),
        }
        target = self._result_file(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write_bytes(target, json.dumps(payload).encode())
        self.writes += 1
        return True

    # -- technology entries ------------------------------------------------

    def load_technologies(self) -> Dict[Tuple, object]:
        """All persisted Technology rebuilds of this code version."""
        if not self.enabled:
            return {}
        try:
            with open(self._technology_file(), "rb") as handle:
                entries = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return {}
        return entries if isinstance(entries, dict) else {}

    def merge_technologies(self, entries: Mapping[Tuple, object]) -> int:
        """Union *entries* into the persisted set; returns entries added.

        No-op unless ``rw``.  Read-modify-write, so concurrent runs lose at
        worst each other's newest entries, never corrupt the file.
        """
        if not self.writable or not entries:
            return 0
        stored = self.load_technologies()
        added = 0
        for key, value in entries.items():
            if key not in stored:
                stored[key] = value
                added += 1
        if added:
            target = self._technology_file()
            target.parent.mkdir(parents=True, exist_ok=True)
            self._atomic_write_bytes(target, pickle.dumps(stored))
            self.writes += 1
        return added

    # -- shard leases ------------------------------------------------------
    #
    # The distributed runner's mutual-exclusion primitive.  A lease file
    # names its owner, its TTL and the owner's last heartbeat; creation is
    # atomic (a fully-written temporary hard-linked onto the target), so
    # exactly one worker claims an unleased key and no reader ever sees a
    # half-written lease.  A lease whose heartbeat is older than its TTL
    # is *expired*: any worker may steal it by atomically replacing the
    # file and then re-reading it to confirm the replacement won any
    # concurrent steal race.  The race window is benign — shard results
    # are content-keyed and published atomically, so a doubly-executed
    # shard costs duplicated work, never a wrong or torn result.  Expiry
    # compares the reader's wall clock with the writer's heartbeat
    # timestamp, so fleet machines need loosely synchronised clocks (skew
    # well under the TTL); excess skew likewise degrades only to
    # duplicated work.

    def lease_info(self, key: str) -> Optional[Dict[str, object]]:
        """The live lease on *key* (owner/heartbeat/ttl/expired) or ``None``.

        An unreadable or field-incomplete lease file reports as an expired
        lease owned by ``"?"`` so a healthy worker can steal and repair it.
        """
        path = self._lease_file(key)
        try:
            raw = path.read_text()
        except OSError:
            return None
        try:
            info = json.loads(raw)
            owner = str(info["owner"])
            heartbeat = float(info["heartbeat"])
            ttl = float(info["ttl"])
        except (ValueError, KeyError, TypeError):
            return {"owner": "?", "heartbeat": 0.0, "ttl": 0.0,
                    "expired": True}
        return {"owner": owner, "heartbeat": heartbeat, "ttl": ttl,
                "expired": time.time() - heartbeat > ttl}

    def claim_lease(self, key: str, owner: str,
                    ttl: float = DEFAULT_LEASE_TTL) -> bool:
        """Atomically claim *key* for *owner*; only expired leases are stolen.

        Returns ``True`` when *owner* holds the lease afterwards — a fresh
        claim, a re-claim of its own live lease, or a confirmed steal of an
        expired one.  ``False`` means another worker holds a live lease (or
        the cache is not writable).
        """
        if not self.writable:
            return False
        if ttl <= 0:
            raise ConfigurationError("lease ttl must be > 0")
        # Read fast-path: while another worker holds a live lease — the
        # common case for every contended shard on every poll — deciding
        # costs one read, no staging writes against the shared root.
        info = self.lease_info(key)
        if info is not None and not info["expired"]:
            return info["owner"] == owner
        now = time.time()
        payload = json.dumps({"owner": owner, "ttl": ttl,
                              "heartbeat": now, "claimed": now}).encode()
        target = self._lease_file(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        # Create-with-content must be one atomic step: an O_EXCL create
        # followed by a separate write would expose a momentarily empty
        # lease file, which a concurrent claimer would read as corrupt
        # (hence expired) and steal.  Hard-linking a fully written
        # temporary onto the target gives exclusive creation *with* the
        # payload already in place.  The staging name must be unique
        # across the whole fleet — a pid alone collides between machines
        # sharing the root.
        staging = target.with_name(target.name
                                   + f".claim{uuid.uuid4().hex[:16]}")
        staging.write_bytes(payload)
        try:
            try:
                os.link(staging, target)
                return True
            except FileExistsError:
                pass
            info = self.lease_info(key)
            if info is None:
                # Released between the failed create and the read: retry
                # the exclusive create once rather than silently
                # overwriting a lease someone else may be claiming.
                try:
                    os.link(staging, target)
                    return True
                except FileExistsError:
                    return False
            if not info["expired"]:
                return info["owner"] == owner
            self._atomic_write_bytes(target, payload)
            confirmed = self.lease_info(key)
            return confirmed is not None and confirmed["owner"] == owner
        finally:
            try:
                staging.unlink()
            except OSError:
                pass

    def heartbeat_lease(self, key: str, owner: str) -> bool:
        """Refresh *owner*'s lease on *key*; ``False`` if no longer held."""
        if not self.writable:
            return False
        info = self.lease_info(key)
        if info is None or info["owner"] != owner:
            return False
        payload = json.dumps({"owner": owner, "ttl": info["ttl"],
                              "heartbeat": time.time()}).encode()
        self._atomic_write_bytes(self._lease_file(key), payload)
        return True

    def release_lease(self, key: str, owner: str) -> bool:
        """Drop *owner*'s lease on *key*; ``False`` if not held by *owner*."""
        if not self.writable:
            return False
        info = self.lease_info(key)
        if info is None or info["owner"] != owner:
            return False
        try:
            self._lease_file(key).unlink()
        except OSError:
            return False
        return True

    # -- maintenance -------------------------------------------------------

    @staticmethod
    def _atomic_write_bytes(target: Path, payload: bytes) -> None:
        tmp = target.with_name(target.name + f".tmp{os.getpid()}")
        tmp.write_bytes(payload)
        os.replace(tmp, target)

    def stats(self) -> Dict[str, object]:
        """Per-salt entry counts and sizes, plus this session's counters."""
        salts: Dict[str, Dict[str, object]] = {}
        results_root = self.root / "results"
        if results_root.is_dir():
            for directory in sorted(results_root.iterdir()):
                if not directory.is_dir():
                    continue
                files = list(directory.glob("*.json"))
                salts.setdefault(directory.name, {}).update(
                    results=len(files),
                    result_bytes=sum(f.stat().st_size for f in files))
        leases_root = self.root / "leases"
        if leases_root.is_dir():
            for directory in sorted(leases_root.iterdir()):
                if not directory.is_dir():
                    continue
                salts.setdefault(directory.name, {})["leases"] = len(
                    list(directory.glob("*.json")))
        tech_root = self.root / "technology"
        if tech_root.is_dir():
            for path in sorted(tech_root.glob("*.pkl")):
                entry = salts.setdefault(path.stem, {})
                try:
                    with open(path, "rb") as handle:
                        entry["technologies"] = len(pickle.load(handle))
                except (OSError, pickle.UnpicklingError, EOFError):
                    entry["technologies"] = 0
                entry["technology_bytes"] = path.stat().st_size
        return {
            "root": str(self.root),
            "mode": self.mode,
            "current_salt": self.salt,
            "salts": salts,
            "session": {"hits": self.hits, "misses": self.misses,
                        "writes": self.writes},
        }

    def clear(self, stale_only: bool = False) -> int:
        """Delete cached files; with *stale_only*, keep the current salt.

        Covers results, leases, distrib job manifests/payloads and (on a
        full clear) worker presence files — a cleared root must not leave
        job directories behind, or a still-running fleet would rescan
        them, see every shard missing and re-execute the whole job
        unprompted.  Returns the number of files removed.  Permitted in
        any mode — a deliberate maintenance action, unlike the implicit
        writes ``ro`` forbids.
        """
        removed = 0
        specs = (
            ("results", "*/*.json", lambda p: p.parent.name),
            ("leases", "*/*.json", lambda p: p.parent.name),
            ("jobs", "*/*/*", lambda p: p.parent.parent.name),
            ("technology", "*.pkl", lambda p: p.stem),
        )
        for subdir, pattern, owner_of in specs:
            base = self.root / subdir
            if not base.is_dir():
                continue
            for path in base.glob(pattern):
                if not path.is_file():
                    continue
                if stale_only and owner_of(path) == self.salt:
                    continue
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            # Prune emptied directories bottom-up (jobs nest two deep).
            # A live fleet may repopulate a directory between the emptiness
            # check and the rmdir; skip it, exactly like the unlinks above.
            for directory in sorted((d for d in base.rglob("*")
                                     if d.is_dir()), reverse=True):
                try:
                    if not any(directory.iterdir()):
                        directory.rmdir()
                except OSError:
                    pass
        workers = self.root / "workers"
        if not stale_only and workers.is_dir():
            # Presence files are salt-less heartbeats; a stale-only clear
            # keeps the live fleet's announcements.
            for path in workers.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


# ---------------------------------------------------------------------------
# CLI (python -m repro.analysis.cache)


def _selftest() -> int:
    """Store round trip + lease protocol smoke test over a temporary root."""
    import tempfile

    failures = 0

    def check(label: str, ok: bool) -> None:
        nonlocal failures
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
        if not ok:
            failures += 1

    print("cache selftest")
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultCache(root=tmp, mode="rw", salt="selftest")
        values = {"q": [0.1 + 0.2, 1e-300, -0.0, 3.14159]}
        store.store_result("key", values, meta={"worker": "me"})
        check("result round trip is bit-identical",
              store.load_result("key", ["q"], 4) == values)
        check("meta round trip", store.load_meta("key") == {"worker": "me"})
        check("has_result sees the payload",
              store.has_result("key") and not store.has_result("other"))

        check("fresh lease claim succeeds",
              store.claim_lease("shard", "worker-a", ttl=30.0))
        check("live lease is exclusive",
              not store.claim_lease("shard", "worker-b", ttl=30.0))
        check("owner re-claims its own live lease",
              store.claim_lease("shard", "worker-a", ttl=30.0))
        check("heartbeat refreshes only the owner",
              store.heartbeat_lease("shard", "worker-a")
              and not store.heartbeat_lease("shard", "worker-b"))
        check("release frees the key",
              store.release_lease("shard", "worker-a")
              and store.lease_info("shard") is None)
        store.claim_lease("dead", "worker-a", ttl=0.05)
        time.sleep(0.1)
        check("expired lease is stolen by a survivor",
              store.claim_lease("dead", "worker-b", ttl=30.0))
        info = store.lease_info("dead")
        check("stolen lease names the new owner",
              info is not None and info["owner"] == "worker-b")

        readonly = ResultCache(root=tmp, mode="ro", salt="selftest")
        check("ro cache cannot claim a lease",
              not readonly.claim_lease("ro-shard", "worker-c"))
        stats = store.stats()
        check("stats report the selftest salt",
              "selftest" in stats["salts"]
              and stats["salts"]["selftest"].get("results") == 1)
    print("selftest:", "PASS" if failures == 0 else f"{failures} FAILURES")
    return 0 if failures == 0 else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Inspect (``--stats [--json]``), reset (``--clear [--stale]``) or
    smoke-test (``--selftest``) the store."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.cache",
        description="Inspect or clear the persistent experiment cache.")
    parser.add_argument("--root", default=None,
                        help="cache directory (default: $REPRO_CACHE_DIR "
                             "or ./.repro_cache)")
    parser.add_argument("--stats", action="store_true",
                        help="print per-code-version entry counts and sizes")
    parser.add_argument("--json", action="store_true",
                        help="with --stats: emit machine-readable JSON")
    parser.add_argument("--clear", action="store_true",
                        help="delete cached entries")
    parser.add_argument("--stale", action="store_true",
                        help="with --clear: only entries of old code versions")
    parser.add_argument("--selftest", action="store_true",
                        help="run the store/lease round-trip checks")
    args = parser.parse_args(argv)
    if args.selftest:
        return _selftest()
    if not (args.stats or args.clear):
        parser.print_help()
        return 2
    cache = ResultCache(root=args.root, mode="ro")
    if args.clear:
        removed = cache.clear(stale_only=args.stale)
        scope = "stale" if args.stale else "all"
        print(f"cleared {removed} cached file(s) ({scope}) under {cache.root}")
    if args.stats:
        stats = cache.stats()
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
            return 0
        print(f"cache root    : {stats['root']}")
        print(f"current salt  : {stats['current_salt']}")
        if not stats["salts"]:
            print("(empty)")
        for salt, entry in stats["salts"].items():
            tag = "  <- current" if salt == stats["current_salt"] else ""
            print(f"  {salt}: {entry.get('results', 0)} result(s), "
                  f"{entry.get('result_bytes', 0)} B, "
                  f"{entry.get('technologies', 0)} technolog(ies), "
                  f"{entry.get('technology_bytes', 0)} B, "
                  f"{entry.get('leases', 0)} lease(s){tag}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
