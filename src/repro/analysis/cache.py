"""Persistent, content-keyed experiment cache (``.repro_cache/``).

The in-memory :class:`~repro.analysis.runner.TechnologyCache` deduplicates
work *within* one process; this module persists finished work *between*
processes and runs.  Two stores live under one cache root (by default
``.repro_cache/`` in the working directory, overridable through the
``REPRO_CACHE_DIR`` environment variable):

* **results** — the complete per-point value lists of an executed
  :class:`~repro.analysis.runner.ExperimentPlan`, keyed by a content hash
  of the plan (kind, axes, seed, variation, technology), the quantity
  names and a best-effort fingerprint of each quantity callable;
* **technologies** — the entries of the executor's keyed
  :class:`~repro.analysis.runner.TechnologyCache`, so corner shifts,
  temperature overrides and Monte-Carlo perturbations built in a previous
  run are not rebuilt in the next one.

Every key is namespaced by a **code-version salt**: a hash over the source
of the whole ``repro`` package.  Any edit to any module under ``repro``
changes the salt, which atomically invalidates every cached result — the
cache can return stale values only if the code that produced them is
byte-identical to the code asking for them.

The fingerprinting of quantity callables is *best effort*: it hashes the
function's compiled code, its closure contents and (for bound methods)
the instance state through :func:`stable_repr`.  The documented contract
is therefore the same one the runner already imposes: quantities must be
pure functions of the plan point and of code/state reachable from the
callable.  Objects that are pure execution machinery can opt out of
fingerprint recursion by defining ``__cache_fingerprint__()``.

Because every entry is content-keyed, the store doubles as the
coordination substrate for sharded multi-machine execution
(:mod:`repro.analysis.distrib`): workers claim disjoint shards through
the **lease** primitives (:meth:`ResultCache.claim_lease` /
:meth:`~ResultCache.heartbeat_lease` / :meth:`~ResultCache.release_lease`),
publish shard results with :meth:`~ResultCache.store_result` under shard
keys, and coordinators merge by key.  A lease records its owner, its TTL
and a heartbeat timestamp; a lease whose heartbeat is older than its TTL
is *expired* and may be atomically stolen, so a killed worker's shard is
reclaimed by a survivor.

All I/O goes through a pluggable **storage backend** (:class:`CacheStore`):
:class:`LocalFSStore` keeps today's ``.repro_cache/`` directory layout
byte for byte, and :class:`repro.analysis.objstore.ObjectStore` speaks a
minimal S3-style HTTP API (bucket/key, ETag-conditional puts, pagination)
so a distrib fleet can span machines **without a shared filesystem**.
The backend is chosen by the *root* spec: a directory path selects the
filesystem store, an ``http(s)://host:port/bucket`` URL the object store
(``$REPRO_CACHE_DIR`` accepts either).

Inspect or reset the store from the command line::

    python -m repro.analysis.cache --stats           # human-readable
    python -m repro.analysis.cache --stats --json    # machine-readable
    python -m repro.analysis.cache --clear           # everything
    python -m repro.analysis.cache --clear --stale   # old code versions only
    python -m repro.analysis.cache --selftest        # store + lease smoke test
    python -m repro.analysis.cache --selftest --backend obj   # same, over the
                                                     # fake object-store server

Selection of the cache at run time is a one-argument affair: pass
``Executor(persistent=ResultCache(mode="rw"))``, or for the benchmark
suite ``pytest benchmarks --runner-cache rw`` (add
``--runner-cache-backend obj:URL`` to aim it at an object store).
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import json
import os
import pickle
import re
import time
import types
import uuid
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_MODES",
    "DEFAULT_LEASE_TTL",
    "CacheStore",
    "LocalFSStore",
    "ObjectInfo",
    "ResultCache",
    "StoredObject",
    "callable_fingerprint",
    "code_version_salt",
    "default_cache_root",
    "object_etag",
    "open_store",
    "result_key",
    "stable_repr",
]

#: Environment variable that overrides the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Directory created in the working directory when the variable is unset.
DEFAULT_DIRNAME = ".repro_cache"
#: Accepted cache modes: ``off`` (inert), ``rw`` (read and write),
#: ``ro`` (read only — never creates or modifies any file).
CACHE_MODES = ("off", "rw", "ro")
#: Seconds a lease may go without a heartbeat before it is expired and
#: stealable by another worker.
DEFAULT_LEASE_TTL = 30.0

_RECURSION_DEPTH = 4


def default_cache_root():
    """The cache root spec: ``$REPRO_CACHE_DIR`` or ``./.repro_cache``.

    A directory :class:`~pathlib.Path` normally; the environment variable
    may instead name an object-store bucket URL
    (``http://host:port/bucket``), which is returned as a string for
    :func:`open_store` to resolve.
    """
    value = os.environ.get(CACHE_DIR_ENV)
    if value and value.startswith(("http://", "https://")):
        return value
    return Path(value or DEFAULT_DIRNAME)


@functools.lru_cache(maxsize=None)
def _salt_of_package_dir(package_dir: str) -> str:
    digest = hashlib.sha256()
    for path in sorted(Path(package_dir).rglob("*.py")):
        digest.update(str(path.relative_to(package_dir)).encode())
        digest.update(b"\0")
        # repro: allow[R2] -- code-version salt hashes source files, not store bytes
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def code_version_salt() -> str:
    """A hash over the source of every module in the ``repro`` package.

    Used to namespace all persisted entries: editing any library source file
    yields a different salt, so results computed by older code are never
    served to newer code (they linger on disk until ``--clear --stale``).
    """
    import repro

    return _salt_of_package_dir(str(Path(repro.__file__).resolve().parent))


# ---------------------------------------------------------------------------
# Content fingerprinting


def stable_repr(value, depth: int = _RECURSION_DEPTH,
                _seen: Optional[set] = None) -> str:
    """A process-independent textual identity for *value*.

    Unlike ``repr()``, the result never embeds object addresses: scalars
    render exactly (``repr`` of a float round-trips), containers, enums and
    dataclasses recurse field by field, callables delegate to
    :func:`callable_fingerprint`, and any other object renders as its type
    name plus (depth permitting) its sorted ``__dict__``.  Objects that
    define ``__cache_fingerprint__()`` render as whatever that returns —
    the opt-out used by execution machinery such as the executor itself,
    whose counters must not leak into content keys.
    """
    if _seen is None:
        _seen = set()
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    marker = id(value)
    if marker in _seen:
        return f"<cycle:{type(value).__name__}>"
    _seen.add(marker)
    try:
        custom = getattr(value, "__cache_fingerprint__", None)
        if custom is not None:
            return str(custom())
        if isinstance(value, types.ModuleType):
            return f"<module:{value.__name__}>"
        if isinstance(value, enum.Enum):
            return f"{type(value).__name__}.{value.name}"
        if isinstance(value, (tuple, list)):
            inner = ",".join(stable_repr(v, depth, _seen) for v in value)
            return f"[{inner}]"
        if isinstance(value, (dict,)):
            items = sorted((stable_repr(k, depth, _seen),
                            stable_repr(v, depth, _seen))
                           for k, v in value.items())
            return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            fields = ",".join(
                f"{f.name}={stable_repr(getattr(value, f.name), depth, _seen)}"
                for f in dataclasses.fields(value))
            return f"{type(value).__name__}({fields})"
        if callable(value):
            return callable_fingerprint(value, depth, _seen)
        attrs = getattr(value, "__dict__", None)
        if attrs and depth > 0:
            inner = ",".join(
                f"{name}={stable_repr(attr, depth - 1, _seen)}"
                for name, attr in sorted(attrs.items()))
            return f"{type(value).__name__}<{inner}>"
        return f"<{type(value).__name__}>"
    finally:
        _seen.discard(marker)


def _referenced_global_names(code) -> List[str]:
    """All global names a code object (or its nested lambdas) may read."""
    names = set(code.co_names)
    for const in code.co_consts:
        if hasattr(const, "co_code"):
            names.update(_referenced_global_names(const))
    return sorted(names)


def _code_hash(code) -> str:
    digest = hashlib.sha256(code.co_code)
    for const in code.co_consts:
        if hasattr(const, "co_code"):  # nested lambda/def
            digest.update(_code_hash(const).encode())
        else:
            digest.update(repr(const).encode())
    digest.update(repr(code.co_names).encode())
    digest.update(repr(code.co_varnames).encode())
    return digest.hexdigest()[:16]


def callable_fingerprint(fn: Callable, depth: int = _RECURSION_DEPTH,
                         _seen: Optional[set] = None) -> str:
    """A content identity for a quantity callable.

    Plain functions and lambdas hash their compiled code plus their
    default arguments, the contents of their closure cells *and* every
    module-level global they reference (benchmark constants like sweep
    periods live outside the ``repro`` package, so the code-version salt
    alone would not see them change); bound methods add the instance
    state; partials add the frozen arguments.  Two callables with the same
    name but different bodies, defaults (the ``lambda x, metric=metric:``
    binding idiom), closures, referenced constants or instance parameters
    therefore key different cache entries.
    """
    if _seen is None:
        _seen = set()
    custom = getattr(fn, "__cache_fingerprint__", None)
    if custom is not None:
        # Wrapper types (e.g. the runner's BatchedQuantity) define their
        # identity in terms of what they wrap; without this, every
        # instance of such a class would fingerprint identically by
        # class name and alias unrelated quantities to one key.
        return str(custom())
    if isinstance(fn, functools.partial):
        return ("partial(" + callable_fingerprint(fn.func, depth, _seen)
                + "," + stable_repr(fn.args, depth, _seen)
                + "," + stable_repr(fn.keywords, depth, _seen) + ")")
    parts: List[str] = [getattr(fn, "__module__", "?") or "?",
                        getattr(fn, "__qualname__", type(fn).__name__)]
    bound_self = getattr(fn, "__self__", None)
    if bound_self is not None:
        parts.append(stable_repr(bound_self, depth - 1, _seen))
        fn = fn.__func__
    code = getattr(fn, "__code__", None)
    if code is not None:
        parts.append(_code_hash(code))
        defaults = getattr(fn, "__defaults__", None)
        if defaults:
            parts.append("defaults=" + stable_repr(defaults, depth - 1,
                                                   _seen))
        kwdefaults = getattr(fn, "__kwdefaults__", None)
        if kwdefaults:
            parts.append("kwdefaults=" + stable_repr(kwdefaults, depth - 1,
                                                     _seen))
        module_globals = getattr(fn, "__globals__", None)
        if module_globals is not None:
            for name in _referenced_global_names(code):
                # Builtins and attribute names fail this membership test;
                # what remains are the module-level constants, helpers and
                # classes the function actually reads.
                if name in module_globals:
                    parts.append(name + "=" + stable_repr(
                        module_globals[name], depth - 1, _seen))
    closure = getattr(fn, "__closure__", None)
    if closure:
        for cell in closure:
            try:
                contents = cell.cell_contents
            except ValueError:  # empty cell
                parts.append("<empty-cell>")
            else:
                parts.append(stable_repr(contents, depth - 1, _seen))
    return "fn(" + "|".join(parts) + ")"


def result_key(plan, quantities: Mapping[str, Callable],
               salt: Optional[str] = None) -> str:
    """The content key of one ``(plan, quantities)`` execution.

    The key covers the plan's full declaration (kind, axes and their exact
    point values, seed, variation spec, base technology), the quantity
    names in evaluation order, the fingerprint of each quantity callable
    and the code-version salt.  Identical keys therefore mean "the same
    code would evaluate the same functions at the same points".
    """
    digest = hashlib.sha256()
    digest.update((salt or code_version_salt()).encode())
    digest.update(stable_repr(plan).encode())
    for name, fn in quantities.items():
        digest.update(name.encode())
        digest.update(b"\0")
        digest.update(callable_fingerprint(fn).encode())
        digest.update(b"\0")
    return digest.hexdigest()[:32]


# ---------------------------------------------------------------------------
# Storage backends
#
# Every persisted entry — results, leases, technology pickles, distrib job
# manifests/payloads, worker presence — is one *object* under a
# slash-separated string key ("results/<salt>/<key>.json").  The
# :class:`CacheStore` interface is the complete I/O surface of the cache
# and of the distributed runner built on it; anything satisfying it (a
# local directory, an S3-style bucket, a fault-injecting test wrapper)
# can back a :class:`ResultCache`.


def object_etag(data: bytes) -> str:
    """The ETag identifying the exact byte content *data*.

    Hex MD5, matching what S3 computes for single-part puts, so a
    filesystem store and a real object store agree on conditional-write
    semantics.
    """
    return hashlib.md5(data).hexdigest()


@dataclasses.dataclass(frozen=True)
class StoredObject:
    """One fetched object: its payload plus the ETag of those bytes."""

    data: bytes
    etag: str


@dataclasses.dataclass(frozen=True)
class ObjectInfo:
    """Listing/stat metadata of one stored object.

    ``etag`` may be ``None`` when the backend cannot report it without a
    full read (the filesystem store's listings); conditional writes always
    go through :meth:`CacheStore.get`, which does return one.
    """

    key: str
    size: int
    etag: Optional[str] = None


class CacheStore:
    """Abstract storage backend: atomic, conditionally-writable objects.

    The contract every implementation must honour (it is exactly what the
    lease protocol's correctness rests on):

    * :meth:`put_atomic` is all-or-nothing — no reader ever observes a
      half-written object;
    * :meth:`put_if_absent` creates an object *with its payload in one
      atomic step* iff no object exists under the key — exactly one of
      any number of concurrent creators wins;
    * :meth:`put_if_match` (the conditional-write primitive) replaces an
      object only if it still carries *etag* — at most one of any number
      of concurrent replacers against the same ETag wins, which is what
      makes stealing an expired lease race-free;
    * :meth:`list` returns every object whose key starts with *prefix*
      (paginating internally as needed), never in-flight staging files;
    * keys are opaque ``/``-separated strings; implementations must not
      interpret them beyond hierarchy.

    Methods returning ETags return ``None`` on a failed precondition, so
    callers can chain a successful write into a later conditional write.
    """

    def get(self, key: str) -> Optional[StoredObject]:
        """The object under *key* with its ETag, or ``None``."""
        raise NotImplementedError

    def put_atomic(self, key: str, data: bytes) -> str:
        """Store *data* under *key* unconditionally; returns the new ETag."""
        raise NotImplementedError

    def put_if_absent(self, key: str, data: bytes) -> Optional[str]:
        """Create *key* iff absent; the new ETag, or ``None`` if it exists."""
        raise NotImplementedError

    def put_if_match(self, key: str, data: bytes,
                     etag: str) -> Optional[str]:
        """Replace *key* iff it still carries *etag*; ``None`` otherwise."""
        raise NotImplementedError

    def list(self, prefix: str = "") -> List[ObjectInfo]:
        """Every stored object whose key starts with *prefix*, sorted."""
        raise NotImplementedError

    def delete(self, key: str) -> bool:
        """Remove *key*; whether an object was actually removed."""
        raise NotImplementedError

    def stat(self, key: str) -> Optional[ObjectInfo]:
        """Existence/size probe for *key* without fetching the payload."""
        raise NotImplementedError

    def describe(self) -> str:
        """A human-readable root spec (directory path or bucket URL)."""
        raise NotImplementedError

    def prune(self) -> None:
        """Reclaim backend housekeeping debris (empty directories).

        A maintenance hook — called from :meth:`ResultCache.clear`, never
        from hot paths: pruning a just-emptied directory races a
        concurrent writer re-creating it, which is acceptable in an
        explicit maintenance action but not on every lease release.
        Backends with flat namespaces need nothing; the default is a
        no-op.
        """


#: In-flight staging files the filesystem store writes next to its
#: targets; they must never surface in listings.
_STAGING_RE = re.compile(r"\.(tmp\d+|claim[0-9a-f]+)$")


class LocalFSStore(CacheStore):
    """The filesystem backend: one file per object under a root directory.

    Byte-for-byte compatible with every pre-backend ``.repro_cache/``
    root — the key *is* the relative path, payload formats are untouched,
    so existing caches stay readable and new entries stay readable to old
    code.  Atomicity comes from POSIX rename/link semantics:
    ``put_atomic`` renames a fully-written temporary over the target,
    ``put_if_absent`` hard-links one onto the target (exclusive creation
    *with* the payload already in place).  ``put_if_match`` has no true
    filesystem compare-and-swap; it verifies the precondition, replaces
    atomically, then re-reads to confirm its bytes won any concurrent
    race — the residual window is the one the lease protocol documents as
    benign (duplicated work, never a torn or wrong result).
    """

    def __init__(self, root) -> None:
        self.root = Path(root)

    def describe(self) -> str:
        return str(self.root)

    def _path(self, key: str) -> Path:
        if not key or key.startswith(("/", "../")) or "/../" in key:
            raise ConfigurationError(f"invalid object key {key!r}")
        return self.root / key

    @staticmethod
    def _atomic_write(target: Path, data: bytes) -> None:
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(target.name + f".tmp{os.getpid()}")
        tmp.write_bytes(data)
        os.replace(tmp, target)

    def get(self, key: str) -> Optional[StoredObject]:
        try:
            data = self._path(key).read_bytes()
        except OSError:
            return None
        return StoredObject(data=data, etag=object_etag(data))

    def put_atomic(self, key: str, data: bytes) -> str:
        self._atomic_write(self._path(key), data)
        return object_etag(data)

    def put_if_absent(self, key: str, data: bytes) -> Optional[str]:
        target = self._path(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        # Exclusive-create must carry the payload in the same atomic step:
        # an O_EXCL create followed by a separate write would expose a
        # momentarily empty object, which a concurrent lease claimer would
        # read as corrupt (hence expired) and steal.  The staging name
        # must be unique across the whole fleet — a pid alone collides
        # between machines sharing the root.
        staging = target.with_name(target.name
                                   + f".claim{uuid.uuid4().hex[:16]}")
        staging.write_bytes(data)
        try:
            try:
                os.link(staging, target)
            except FileExistsError:
                return None
            return object_etag(data)
        finally:
            try:
                staging.unlink()
            except OSError:
                pass

    def put_if_match(self, key: str, data: bytes,
                     etag: str) -> Optional[str]:
        current = self.get(key)
        if current is None or current.etag != etag:
            return None
        self._atomic_write(self._path(key), data)
        confirmed = self.get(key)
        if confirmed is None or confirmed.data != data:
            return None  # a concurrent replacer won the rename race
        return confirmed.etag

    def list(self, prefix: str = "") -> List[ObjectInfo]:
        # Key prefixes in practice are directory-style ("results/",
        # "leases/<salt>/"); start the walk at the deepest directory the
        # prefix pins down rather than scanning the whole root.
        base = self.root
        head, _, _ = prefix.rpartition("/")
        if head:
            base = self.root / head
        if not base.is_dir():
            return []
        found: List[ObjectInfo] = []
        for path in sorted(base.rglob("*")):
            if not path.is_file():
                continue
            key = path.relative_to(self.root).as_posix()
            if not key.startswith(prefix) or _STAGING_RE.search(key):
                continue
            found.append(ObjectInfo(key=key, size=path.stat().st_size))
        return found

    def delete(self, key: str) -> bool:
        # No directory pruning here: delete sits on hot paths (every
        # lease release), and pruning a just-emptied directory would race
        # a concurrent claimer between its mkdir and its staging write —
        # crashing the claimer with FileNotFoundError.  Empty directories
        # are reclaimed by :meth:`prune` during explicit maintenance.
        try:
            self._path(key).unlink()
        except OSError:
            return False
        return True

    def prune(self) -> None:
        """Remove emptied directories bottom-up (maintenance only).

        A concurrent writer may repopulate a directory between the
        emptiness check and the rmdir; the failed rmdir is silently
        skipped, exactly like a failed unlink in :meth:`delete`.
        """
        if not self.root.is_dir():
            return
        for directory in sorted((d for d in self.root.rglob("*")
                                 if d.is_dir()), reverse=True):
            try:
                if not any(directory.iterdir()):
                    directory.rmdir()
            except OSError:
                pass

    def stat(self, key: str) -> Optional[ObjectInfo]:
        try:
            size = self._path(key).stat().st_size
        except OSError:
            return None
        return ObjectInfo(key=key, size=size)


def open_store(spec=None) -> CacheStore:
    """Resolve a root *spec* into a :class:`CacheStore`.

    ``None`` selects :func:`default_cache_root`; an existing
    :class:`CacheStore` passes through; an ``http(s)://host:port/bucket``
    URL opens an :class:`repro.analysis.objstore.ObjectStore`; anything
    else is a directory for :class:`LocalFSStore`.
    """
    if spec is None:
        spec = default_cache_root()
    if isinstance(spec, CacheStore):
        return spec
    if isinstance(spec, str) and spec.startswith(("http://", "https://")):
        from repro.analysis.objstore import ObjectStore

        return ObjectStore(spec)
    return LocalFSStore(spec)


# ---------------------------------------------------------------------------
# The store


class ResultCache:
    """Persistent store of executed-plan results and Technology rebuilds.

    Parameters
    ----------
    root:
        Backend spec — a cache directory, or an object-store bucket URL
        (``http://host:port/bucket``); defaults to
        :func:`default_cache_root`.  Resolved through :func:`open_store`.
    mode:
        ``"rw"`` reads and writes, ``"ro"`` only reads (guaranteed never to
        create or modify an object), ``"off"`` is inert — an ``off`` cache
        can be passed anywhere a cache is accepted and behaves like
        ``None``.
    salt:
        Code-version namespace; defaults to :func:`code_version_salt`.
        Tests inject fixed salts to exercise invalidation.
    store:
        An explicit :class:`CacheStore` to use instead of resolving
        *root* — how the distributed runner shares one backend handle
        across salts, and how tests inject fault-wrapped stores.

    Object layout (identical relative keys on every backend; for the
    filesystem store the key is literally the path under *root*)::

        results/<salt>/<key>.json   one executed plan (or shard) each
        technology/<salt>.pkl       pickled TechnologyCache entries
        leases/<salt>/<key>.json    one live shard claim each

    Result payloads are JSON with floats serialised via ``repr`` round-trip,
    so a cache hit reproduces the computed values bit for bit.
    """

    def __init__(self, root=None, mode: str = "rw",
                 salt: Optional[str] = None,
                 store: Optional[CacheStore] = None) -> None:
        if mode not in CACHE_MODES:
            raise ConfigurationError(
                f"unknown cache mode {mode!r}; choose from {CACHE_MODES}")
        self.store = store if store is not None else open_store(root)
        self.root = root if root is not None else self.store.describe()
        self.mode = mode
        self.salt = salt if salt is not None else code_version_salt()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        # Lease-expiry observations: key -> (last heartbeat value seen,
        # monotonic clock when that value was first seen, whether this
        # reader has ever witnessed the heartbeat advance).  See
        # _lease_state for the skew-tolerant expiry rules built on it.
        self._lease_seen: Dict[str, Tuple[float, float, bool]] = {}

    def __cache_fingerprint__(self) -> str:
        return type(self).__name__

    # -- mode predicates ---------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether the cache participates at all (``rw`` or ``ro``)."""
        return self.mode != "off"

    @property
    def writable(self) -> bool:
        """Whether stores are permitted (``rw`` only)."""
        return self.mode == "rw"

    # -- object keys -------------------------------------------------------

    def _get(self, key: str) -> Optional[StoredObject]:
        """``store.get`` degraded to a miss on transient backend faults.

        Read paths keep the filesystem backend's historical contract —
        an unreadable entry is a miss, recomputed and healed — on every
        backend: one HTTP blip must degrade a cache lookup, never abort
        the run.  Writes stay loud (the worker daemon's retry loop
        handles them).
        """
        try:
            return self.store.get(key)
        except OSError:
            return None

    def _stat(self, key: str) -> Optional[ObjectInfo]:
        """``store.stat`` with the same degrade-to-miss contract."""
        try:
            return self.store.stat(key)
        except OSError:
            return None

    def _result_obj(self, key: str) -> str:
        return f"results/{self.salt}/{key}.json"

    def _technology_obj(self, salt: Optional[str] = None) -> str:
        return f"technology/{salt or self.salt}.pkl"

    def _lease_obj(self, key: str) -> str:
        return f"leases/{self.salt}/{key}.json"

    # -- result payloads ---------------------------------------------------

    def result_key(self, plan, quantities: Mapping[str, Callable]) -> str:
        """Content key of ``(plan, quantities)`` under this cache's salt."""
        return result_key(plan, quantities, salt=self.salt)

    def _read_values(self, key: str, names: Sequence[str],
                     points: int) -> Optional[Dict[str, List[float]]]:
        """Parse *key*'s payload; ``None`` unless it carries exactly
        *names*, each with *points* values.  No counter updates."""
        obj = self._get(self._result_obj(key))
        if obj is None:
            return None
        try:
            payload = json.loads(obj.data)
            values = payload["values"]
        except (ValueError, KeyError, TypeError):
            return None
        if (sorted(values) != sorted(names)
                or any(len(values[name]) != points for name in names)):
            return None
        return {name: [float(v) for v in values[name]] for name in names}

    def load_result(self, key: str,
                    names: Sequence[str],
                    points: int) -> Optional[Dict[str, List[float]]]:
        """The stored per-point values for *key*, or ``None`` on a miss.

        A payload that does not carry exactly *names*, each with *points*
        values, is treated as a miss rather than served partially.
        """
        if not self.enabled:
            return None
        values = self._read_values(key, names, points)
        if values is None:
            self.misses += 1
            return None
        self.hits += 1
        return values

    def result_valid(self, key: str, names: Sequence[str],
                     points: int) -> bool:
        """Whether a well-formed payload for *key* exists.

        An integrity probe, not a cache access: unlike
        :meth:`load_result` it never touches the session hit/miss
        counters, so heal checks (store only over a missing-or-corrupt
        entry) do not skew the stats that ``--stats --json`` exposes to
        fleet monitoring.
        """
        return self.enabled and self._read_values(key, names,
                                                  points) is not None

    def load_meta(self, key: str) -> Optional[Dict[str, object]]:
        """The ``meta`` mapping stored with *key*, or ``None`` on a miss.

        Shard results carry their provenance (worker id, wall time, cache
        hits) here; the coordinator folds it into the merged
        :class:`~repro.analysis.runner.RunRecord`.
        """
        if not self.enabled:
            return None
        obj = self._get(self._result_obj(key))
        if obj is None:
            return None
        try:
            meta = json.loads(obj.data)["meta"]
        except (ValueError, KeyError, TypeError):
            return None
        return meta if isinstance(meta, dict) else None

    def has_result(self, key: str) -> bool:
        """Whether a payload for *key* exists (without counting a hit)."""
        return self.enabled and self._stat(self._result_obj(key)) \
            is not None

    def store_result(self, key: str, values: Mapping[str, Sequence[float]],
                     meta: Optional[Mapping[str, object]] = None,
                     if_absent: bool = False) -> bool:
        """Persist one executed plan's values; no-op unless ``rw``.

        With *if_absent*, the write is an atomic exclusive create and
        ``False`` means an entry already existed — how fleet workers
        publish shard results so the loser of a stolen-lease race can
        never re-publish (and clobber the provenance of) a shard a
        survivor already landed.
        """
        if not self.writable:
            return False
        payload = json.dumps({
            "values": {name: list(vals) for name, vals in values.items()},
            "meta": dict(meta or {}),
            "created": time.time(),
        }).encode()
        target = self._result_obj(key)
        if if_absent:
            if self.store.put_if_absent(target, payload) is None:
                return False
        else:
            self.store.put_atomic(target, payload)
        self.writes += 1
        return True

    # -- technology entries ------------------------------------------------

    def load_technologies(self) -> Dict[Tuple, object]:
        """All persisted Technology rebuilds of this code version."""
        if not self.enabled:
            return {}
        obj = self._get(self._technology_obj())
        if obj is None:
            return {}
        try:
            entries = pickle.loads(obj.data)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ValueError, TypeError):
            return {}
        return entries if isinstance(entries, dict) else {}

    def merge_technologies(self, entries: Mapping[Tuple, object]) -> int:
        """Union *entries* into the persisted set; returns entries added.

        No-op unless ``rw``.  Read-modify-write, so concurrent runs lose at
        worst each other's newest entries, never corrupt the object.
        """
        if not self.writable or not entries:
            return 0
        stored = self.load_technologies()
        added = 0
        for key, value in entries.items():
            if key not in stored:
                stored[key] = value
                added += 1
        if added:
            self.store.put_atomic(self._technology_obj(),
                                  pickle.dumps(stored))
            self.writes += 1
        return added

    # -- shard leases ------------------------------------------------------
    #
    # The distributed runner's mutual-exclusion primitive, built entirely
    # on the store's conditional writes.  A lease object names its owner,
    # its TTL and the owner's last heartbeat; creation goes through
    # ``put_if_absent`` (exclusive, with the payload in place), so exactly
    # one worker claims an unleased key and no reader ever sees a
    # half-written lease.  A lease whose heartbeat is older than its TTL
    # is *expired*: any worker may steal it with a ``put_if_match``
    # conditioned on the exact bytes it read, so at most one concurrent
    # stealer wins.  On a backend whose conditional put is approximate
    # (the filesystem store's replace-and-confirm), the residual race is
    # benign — shard results are content-keyed and published atomically,
    # so a doubly-executed shard costs duplicated work, never a wrong or
    # torn result.  Expiry does not trust wall clocks across machines:
    # each reader also tracks, per lease, how long the heartbeat value has
    # gone *unchanged on the store* (by its own monotonic clock), and a
    # lease whose heartbeat advanced since the reader last looked is never
    # expired — the owner is demonstrably alive no matter what the clocks
    # say — and once a reader has witnessed an advance, only staleness
    # (never wall-clock age) expires that lease.  Wall-clock age still
    # triggers expiry before the first witnessed advance (a single-reader
    # process needs no second look to reap a long-dead lease), so the
    # tolerated skew is: a writer clock *ahead* of the reader by any
    # amount is handled exactly after one poll interval, and a writer
    # clock *behind* the reader by more than the TTL can cost a premature
    # steal only until the reader first sees its heartbeat move —
    # degrading, as always, to duplicated work, never a torn result.

    def _lease_state(self, key: str):
        """``(info, etag)`` of the lease on *key*; ``(None, None)`` if
        unleased.  The etag feeds the steal's conditional write."""
        obj = self._get(self._lease_obj(key))
        if obj is None:
            self._lease_seen.pop(key, None)
            return None, None
        try:
            info = json.loads(obj.data)
            owner = str(info["owner"])
            heartbeat = float(info["heartbeat"])
            ttl = float(info["ttl"])
        except (ValueError, KeyError, TypeError):
            # Corrupt or field-incomplete: report as an expired lease
            # owned by "?" so a healthy worker can steal and repair it.
            return ({"owner": "?", "heartbeat": 0.0, "ttl": 0.0,
                     "expired": True}, obj.etag)
        now_mono = time.monotonic()
        # repro: allow[R3] -- documented pre-first-advance fallback only
        wall_age = time.time() - heartbeat
        seen = self._lease_seen.get(key)
        if seen is not None and seen[0] == heartbeat:
            # Unchanged since the last look.  A heartbeat this reader has
            # ever witnessed advancing belongs to a demonstrably live
            # owner whose clock may sit anywhere — only the unchanged-on-
            # store stopwatch may expire it.  One never seen advancing
            # also expires by wall-clock age, so a single-reader process
            # reaps a long-dead lease without a second look.
            stale_for = now_mono - seen[1]
            age = stale_for if seen[2] else max(wall_age, stale_for)
            expired = age > ttl
        else:
            # First observation, or the heartbeat moved since the last
            # one: (re)start the staleness stopwatch.  A moving heartbeat
            # proves a live owner regardless of clock skew.
            advanced = seen is not None
            if len(self._lease_seen) >= 8192:
                # Bounded bookkeeping; forgetting observations only delays
                # staleness-based expiry by one extra poll interval.
                self._lease_seen.clear()
            self._lease_seen[key] = (heartbeat, now_mono, advanced)
            expired = (not advanced) and wall_age > ttl
        return ({"owner": owner, "heartbeat": heartbeat, "ttl": ttl,
                 "expired": expired}, obj.etag)

    def lease_info(self, key: str) -> Optional[Dict[str, object]]:
        """The live lease on *key* (owner/heartbeat/ttl/expired) or
        ``None``."""
        info, _ = self._lease_state(key)
        return info

    def claim_lease(self, key: str, owner: str,
                    ttl: float = DEFAULT_LEASE_TTL) -> bool:
        """Atomically claim *key* for *owner*; only expired leases are stolen.

        Returns ``True`` when *owner* holds the lease afterwards — a fresh
        claim, a re-claim of its own live lease, or a confirmed steal of an
        expired one.  ``False`` means another worker holds a live lease (or
        the cache is not writable).
        """
        if not self.writable:
            return False
        if ttl <= 0:
            raise ConfigurationError("lease ttl must be > 0")
        # Read fast-path: while another worker holds a live lease — the
        # common case for every contended shard on every poll — deciding
        # costs one read, no writes against the shared root.
        info, etag = self._lease_state(key)
        if info is not None and not info["expired"]:
            return info["owner"] == owner
        # repro: allow[R3] -- advisory payload timestamp; expiry is monotonic
        now = time.time()
        payload = json.dumps({"owner": owner, "ttl": ttl,
                              "heartbeat": now, "claimed": now}).encode()
        target = self._lease_obj(key)
        if info is None:
            if self.store.put_if_absent(target, payload) is not None:
                return True
            info, etag = self._lease_state(key)
            if info is None:
                # Claimed and released between the failed create and the
                # re-read: retry the exclusive create once rather than
                # overwriting a lease someone else may be claiming.
                return self.store.put_if_absent(target, payload) is not None
            if not info["expired"]:
                return info["owner"] == owner
        # Expired (or corrupt): steal with a write conditioned on the
        # exact bytes read above, so of any number of concurrent stealers
        # at most one — the one whose precondition still held — wins.
        return self.store.put_if_match(target, payload, etag) is not None

    def heartbeat_lease(self, key: str, owner: str) -> bool:
        """Refresh *owner*'s lease on *key*; ``False`` if no longer held.

        The refresh is conditioned on the lease bytes just read, so an
        owner whose lease was stolen between read and write (it expired,
        a survivor took it) can never resurrect it — the conditional put
        fails and the owner learns it lost the lease.
        """
        if not self.writable:
            return False
        info, etag = self._lease_state(key)
        if info is None or info["owner"] != owner:
            return False
        payload = json.dumps({"owner": owner, "ttl": info["ttl"],
                              # repro: allow[R3] -- advisory payload timestamp
                              "heartbeat": time.time()}).encode()
        return self.store.put_if_match(self._lease_obj(key), payload,
                                       etag) is not None

    def release_lease(self, key: str, owner: str) -> bool:
        """Drop *owner*'s lease on *key*; ``False`` if not held by *owner*."""
        if not self.writable:
            return False
        info, _ = self._lease_state(key)
        if info is None or info["owner"] != owner:
            return False
        return self.store.delete(self._lease_obj(key))

    # -- maintenance -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Per-salt entry counts and sizes, plus this session's counters."""
        salts: Dict[str, Dict[str, object]] = {}
        for info in self.store.list("results/"):
            parts = info.key.split("/")
            if len(parts) != 3 or not parts[2].endswith(".json"):
                continue
            entry = salts.setdefault(parts[1], {})
            entry["results"] = entry.get("results", 0) + 1
            entry["result_bytes"] = entry.get("result_bytes", 0) + info.size
        for info in self.store.list("leases/"):
            parts = info.key.split("/")
            if len(parts) != 3 or not parts[2].endswith(".json"):
                continue
            entry = salts.setdefault(parts[1], {})
            entry["leases"] = entry.get("leases", 0) + 1
        for info in self.store.list("technology/"):
            parts = info.key.split("/")
            if len(parts) != 2 or not parts[1].endswith(".pkl"):
                continue
            entry = salts.setdefault(parts[1][:-len(".pkl")], {})
            obj = self._get(info.key)
            try:
                entry["technologies"] = (0 if obj is None
                                         else len(pickle.loads(obj.data)))
            except (pickle.UnpicklingError, EOFError, AttributeError,
                    ValueError, TypeError):
                entry["technologies"] = 0
            entry["technology_bytes"] = info.size
        return {
            "root": str(self.root),
            "mode": self.mode,
            "current_salt": self.salt,
            "salts": dict(sorted(salts.items())),
            "session": {"hits": self.hits, "misses": self.misses,
                        "writes": self.writes},
        }

    def clear(self, stale_only: bool = False) -> int:
        """Delete cached objects; with *stale_only*, keep the current salt.

        Covers results, leases, distrib job manifests/payloads and (on a
        full clear) worker presence objects — a cleared root must not
        leave job entries behind, or a still-running fleet would rescan
        them, see every shard missing and re-execute the whole job
        unprompted.  Returns the number of objects removed.  Permitted in
        any mode — a deliberate maintenance action, unlike the implicit
        writes ``ro`` forbids.
        """
        removed = 0
        # (prefix, index of the salt segment in the key's path parts)
        specs = (("results/", 1), ("leases/", 1), ("jobs/", 1),
                 ("technology/", None))
        for prefix, salt_part in specs:
            for info in self.store.list(prefix):
                parts = info.key.split("/")
                if salt_part is None:  # technology/<salt>.pkl
                    owner = parts[-1].rsplit(".", 1)[0]
                elif len(parts) > salt_part:
                    owner = parts[salt_part]
                else:
                    continue
                if stale_only and owner == self.salt:
                    continue
                if self.store.delete(info.key):
                    removed += 1
        if not stale_only:
            # Presence objects are salt-less heartbeats; a stale-only
            # clear keeps the live fleet's announcements.
            for info in self.store.list("workers/"):
                if self.store.delete(info.key):
                    removed += 1
        self.store.prune()
        return removed


# ---------------------------------------------------------------------------
# CLI (python -m repro.analysis.cache)


def _selftest(backend: str = "fs") -> int:
    """Store round trip + lease protocol smoke test over a temporary root.

    ``backend="obj"`` runs the identical checks against an in-process fake
    object-store server instead of a temporary directory, plus the
    store-interface contract checks both backends share.
    """
    import contextlib
    import tempfile

    failures = 0

    def check(label: str, ok: bool) -> None:
        nonlocal failures
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
        if not ok:
            failures += 1

    print(f"cache selftest (backend: {backend})")
    with contextlib.ExitStack() as stack:
        if backend == "obj":
            from repro.analysis.objstore import FakeObjectServer

            server = stack.enter_context(FakeObjectServer())
            tmp = f"{server.url}/cache-selftest"
        else:
            tmp = stack.enter_context(tempfile.TemporaryDirectory())

        # -- the CacheStore interface contract ----------------------------
        raw = open_store(tmp)
        etag = raw.put_atomic("contract/a", b"alpha")
        check("put_atomic + get round trip with a content ETag",
              raw.get("contract/a") == StoredObject(b"alpha", etag)
              and etag == object_etag(b"alpha"))
        check("stat reports existence and size",
              raw.stat("contract/a").size == 5
              and raw.stat("contract/missing") is None)
        created = raw.put_if_absent("contract/b", b"beta")
        check("put_if_absent creates exactly once",
              created is not None
              and raw.put_if_absent("contract/b", b"other") is None
              and raw.get("contract/b").data == b"beta")
        check("put_if_match replaces only against the live ETag",
              raw.put_if_match("contract/b", b"beta2", "stale") is None
              and raw.put_if_match("contract/b", b"beta2",
                                   created) is not None
              and raw.get("contract/b").data == b"beta2")
        check("put_if_match on a missing key fails",
              raw.put_if_match("contract/missing", b"x", etag) is None)
        listed = [info.key for info in raw.list("contract/")]
        check("list is prefix-scoped and sorted",
              listed == ["contract/a", "contract/b"]
              and [i.key for i in raw.list("contract/a")]
              == ["contract/a"])
        check("delete removes exactly once",
              raw.delete("contract/a") and not raw.delete("contract/a")
              and raw.get("contract/a") is None)
        raw.delete("contract/b")

        # -- the ResultCache protocol over that store ----------------------
        store = ResultCache(root=tmp, mode="rw", salt="selftest")
        values = {"q": [0.1 + 0.2, 1e-300, -0.0, 3.14159]}
        store.store_result("key", values, meta={"worker": "me"})
        check("result round trip is bit-identical",
              store.load_result("key", ["q"], 4) == values)
        check("meta round trip", store.load_meta("key") == {"worker": "me"})
        check("has_result sees the payload",
              store.has_result("key") and not store.has_result("other"))

        check("fresh lease claim succeeds",
              store.claim_lease("shard", "worker-a", ttl=30.0))
        check("live lease is exclusive",
              not store.claim_lease("shard", "worker-b", ttl=30.0))
        check("owner re-claims its own live lease",
              store.claim_lease("shard", "worker-a", ttl=30.0))
        check("heartbeat refreshes only the owner",
              store.heartbeat_lease("shard", "worker-a")
              and not store.heartbeat_lease("shard", "worker-b"))
        check("release frees the key",
              store.release_lease("shard", "worker-a")
              and store.lease_info("shard") is None)
        store.claim_lease("dead", "worker-a", ttl=0.05)
        time.sleep(0.1)
        check("expired lease is stolen by a survivor",
              store.claim_lease("dead", "worker-b", ttl=30.0))
        info = store.lease_info("dead")
        check("stolen lease names the new owner",
              info is not None and info["owner"] == "worker-b")

        readonly = ResultCache(root=tmp, mode="ro", salt="selftest")
        check("ro cache cannot claim a lease",
              not readonly.claim_lease("ro-shard", "worker-c"))
        stats = store.stats()
        check("stats report the selftest salt",
              "selftest" in stats["salts"]
              and stats["salts"]["selftest"].get("results") == 1)
    print("selftest:", "PASS" if failures == 0 else f"{failures} FAILURES")
    return 0 if failures == 0 else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Inspect (``--stats [--json]``), reset (``--clear [--stale]``) or
    smoke-test (``--selftest``) the store."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.cache",
        description="Inspect or clear the persistent experiment cache.")
    parser.add_argument("--root", default=None,
                        help="cache directory or object-store bucket URL "
                             "(default: $REPRO_CACHE_DIR or ./.repro_cache)")
    parser.add_argument("--stats", action="store_true",
                        help="print per-code-version entry counts and sizes")
    parser.add_argument("--json", action="store_true",
                        help="with --stats: emit machine-readable JSON")
    parser.add_argument("--clear", action="store_true",
                        help="delete cached entries")
    parser.add_argument("--stale", action="store_true",
                        help="with --clear: only entries of old code versions")
    parser.add_argument("--selftest", action="store_true",
                        help="run the store/lease round-trip checks")
    parser.add_argument("--backend", choices=("fs", "obj"), default="fs",
                        help="with --selftest: storage backend to exercise "
                             "(obj spins an in-process fake object-store "
                             "server; default: fs)")
    args = parser.parse_args(argv)
    if args.selftest:
        return _selftest(args.backend)
    if not (args.stats or args.clear):
        parser.print_help()
        return 2
    cache = ResultCache(root=args.root, mode="ro")
    if args.clear:
        removed = cache.clear(stale_only=args.stale)
        scope = "stale" if args.stale else "all"
        print(f"cleared {removed} cached file(s) ({scope}) under {cache.root}")
    if args.stats:
        stats = cache.stats()
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
            return 0
        print(f"cache root    : {stats['root']}")
        print(f"current salt  : {stats['current_salt']}")
        if not stats["salts"]:
            print("(empty)")
        for salt, entry in stats["salts"].items():
            tag = "  <- current" if salt == stats["current_salt"] else ""
            print(f"  {salt}: {entry.get('results', 0)} result(s), "
                  f"{entry.get('result_bytes', 0)} B, "
                  f"{entry.get('technologies', 0)} technolog(ies), "
                  f"{entry.get('technology_bytes', 0)} B, "
                  f"{entry.get('leases', 0)} lease(s){tag}")
    return 0


if __name__ == "__main__":
    import sys

    # Under ``python -m`` this file executes as ``__main__`` while the
    # package import created a second copy as ``repro.analysis.cache``;
    # dispatch to that canonical copy so the classes the selftest compares
    # are the very ones other modules (objstore) return instances of.
    from repro.analysis.cache import main as _canonical_main

    sys.exit(_canonical_main())
