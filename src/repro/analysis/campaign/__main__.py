"""``python -m repro.analysis.campaign`` — alias of ``python -m repro
campaign``."""

from repro.analysis.campaign.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
