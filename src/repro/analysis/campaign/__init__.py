"""Scenario campaigns over the paper's model space, and their fuzzer.

The paper's 12 figures are hand-enumerated points in a much larger space
(models x technologies x supply conditions x variation seeds).  This
package turns that space into first-class, enumerable artifacts:

* :mod:`~repro.analysis.campaign.registry` — the catalogue of *point
  functions*: named, picklable adapters that evaluate one scenario point
  (a gate, an SI SRAM operation, a dual-rail counter run, a
  charge-to-digital conversion, ...) and report its metric row.
* :mod:`~repro.analysis.campaign.spec` — the declarative campaign layer:
  dataclasses plus a TOML schema (``campaigns/*.toml``) describing
  cross-products of point functions over technologies, axis ranges and
  seed batches, compiled into :class:`~repro.analysis.runner.ExperimentPlan`s.
* :mod:`~repro.analysis.campaign.engine` — executes a compiled campaign
  through one :class:`~repro.analysis.session.Session`, so campaigns are
  cached, batched and distrib-shardable exactly like hand-written plans.
* :mod:`~repro.analysis.campaign.invariants` — cross-layer invariants
  (charge conservation, latency-chain ordering, dual-rail completion,
  batched-vs-per-point bit-identity, ...) as seedable check functions.
* :mod:`~repro.analysis.campaign.fuzz` — the seeded scenario fuzzer:
  draws invariant parameters from ``SeedSequence``-derived streams,
  shrinks every violation and persists it as a replayable case.

``python -m repro campaign`` is the command-line front door
(:mod:`~repro.analysis.campaign.cli`).
"""

from repro.analysis.campaign.engine import CampaignResult, run_campaign
from repro.analysis.campaign.fuzz import (FuzzCase, FuzzReport, fuzz,
                                          load_case, reproduce)
from repro.analysis.campaign.invariants import (DEFAULT_INVARIANTS, Invariant,
                                                get_invariant)
from repro.analysis.campaign.registry import (REGISTRY, PointFunction,
                                              get_point_function,
                                              quantities_for)
from repro.analysis.campaign.spec import (AxisSpec, CampaignSpec,
                                          CompiledCampaign, PlannedRun,
                                          ScenarioSpec, builtin_campaign_path,
                                          compile_campaign, load_campaign)

__all__ = [
    "AxisSpec",
    "CampaignResult",
    "CampaignSpec",
    "CompiledCampaign",
    "DEFAULT_INVARIANTS",
    "FuzzCase",
    "FuzzReport",
    "Invariant",
    "PlannedRun",
    "PointFunction",
    "REGISTRY",
    "ScenarioSpec",
    "builtin_campaign_path",
    "compile_campaign",
    "fuzz",
    "get_invariant",
    "get_point_function",
    "load_campaign",
    "load_case",
    "quantities_for",
    "reproduce",
    "run_campaign",
]
