"""Cross-layer invariants the scenario fuzzer exercises.

An :class:`Invariant` couples a *draw* function — producing a
JSON-primitive parameter dictionary from a seeded
:class:`numpy.random.Generator` — with a *check* function mapping that
dictionary to a list of human-readable violation messages (empty means
the invariant held).  The parameter dictionaries are the whole contract:
because every value is a Python ``float``/``int``/``str``/``bool``/list
(never a live model object), a violating draw survives a JSON round-trip
bit-exactly, which is what makes persisted fuzz cases replayable
byte-for-byte (:mod:`~repro.analysis.campaign.fuzz`).

The heavy lifting lives next to the models it checks — the domain layers
export dedicated adapters
(:func:`~repro.power.capacitor.charge_conservation_violations`,
:func:`~repro.power.harvester.harvester_energy_violations`,
:func:`~repro.sram.sram.latency_chain_violations`,
:func:`~repro.selftimed.counter.dualrail_completion_violations`,
:func:`~repro.sensors.charge_to_digital.conversion_violations`) — so the
invariants here are thin, and a modelling change that breaks a contract
fails close to home.

Draw functions only produce parameters inside each model's documented
envelope (supplies above ``vdd_min``, ascending sample times, stable and
unstable queues alike); a check raising
:class:`~repro.errors.ConfigurationError` therefore signals a bad draw,
not a model bug, and the fuzzer counts it as a rejection.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Mapping, Tuple

from repro.errors import ConfigurationError

__all__ = ["Invariant", "DEFAULT_INVARIANTS", "get_invariant"]


_TECHNOLOGY_NAMES = ("cmos90", "cmos65", "cmos180")
_GATE_NAMES = ("INVERTER", "BUFFER", "NAND2", "NOR2", "XOR2", "C_ELEMENT",
               "TOGGLE")


def _choose(rng, candidates):
    return candidates[int(rng.integers(0, len(candidates)))]


def _vdd_window(rng, technology_name: str, margin: float = 0.05
                ) -> Tuple[float, float]:
    """A valid ``(vdd_low, vdd_high)`` pair above the functional minimum."""
    from repro.models.technology import get_technology

    floor = get_technology(technology_name).vdd_min + margin
    low = float(rng.uniform(floor, 0.7))
    high = float(rng.uniform(low + 0.05, 1.25))
    return low, high


# ---------------------------------------------------------------------------
# charge conservation (power/capacitor)


def _draw_charge_conservation(rng) -> Dict:
    capacitance = float(10.0 ** rng.uniform(-12.0, -9.0))
    initial_voltage = float(rng.uniform(0.2, 2.0))
    budget = capacitance * initial_voltage
    count = int(rng.integers(1, 9))
    draws = [float(budget * rng.uniform(0.0, 0.4)) for _ in range(count)]
    return {"capacitance": capacitance, "initial_voltage": initial_voltage,
            "draws": draws}


def _check_charge_conservation(params: Mapping) -> List[str]:
    from repro.power.capacitor import charge_conservation_violations

    return charge_conservation_violations(
        float(params["capacitance"]), float(params["initial_voltage"]),
        [float(d) for d in params["draws"]])


# ---------------------------------------------------------------------------
# harvester energy ledger (power/harvester)


def _draw_harvester_energy(rng) -> Dict:
    from repro.power.harvester import HARVESTER_KINDS

    kind = _choose(rng, tuple(sorted(HARVESTER_KINDS)))
    count = int(rng.integers(2, 7))
    deltas = rng.uniform(0.01, 5.0, size=count)
    times, total = [], 0.0
    for delta in deltas:
        total += float(delta)
        times.append(total)
    return {"kind": kind, "seed": int(rng.integers(0, 2 ** 31)),
            "times": times, "voltage_scale": float(rng.uniform(0.5, 1.5))}


def _check_harvester_energy(params: Mapping) -> List[str]:
    from repro.power.harvester import harvester_energy_violations

    return harvester_energy_violations(
        str(params["kind"]), int(params["seed"]),
        [float(t) for t in params["times"]],
        voltage_scale=float(params["voltage_scale"]))


# ---------------------------------------------------------------------------
# SI SRAM latency-chain ordering (sram)


def _draw_latency_chain(rng) -> Dict:
    technology = _choose(rng, _TECHNOLOGY_NAMES)
    low, high = _vdd_window(rng, technology)
    return {"technology": technology, "vdd_low": low, "vdd_high": high}


def _check_latency_chain(params: Mapping) -> List[str]:
    from repro.models.technology import get_technology
    from repro.sram.sram import latency_chain_violations

    return latency_chain_violations(
        get_technology(str(params["technology"])),
        float(params["vdd_low"]), float(params["vdd_high"]))


# ---------------------------------------------------------------------------
# dual-rail completion (selftimed)


def _draw_dualrail(rng) -> Dict:
    from repro.models.technology import get_technology

    technology = _choose(rng, _TECHNOLOGY_NAMES)
    floor = get_technology(technology).vdd_min + 0.1
    return {"technology": technology,
            "vdd": float(rng.uniform(floor, 1.25)),
            "steps": int(rng.integers(1, 7)),
            "width": int(rng.integers(1, 4))}


def _check_dualrail(params: Mapping) -> List[str]:
    from repro.models.technology import get_technology
    from repro.selftimed.counter import dualrail_completion_violations

    return dualrail_completion_violations(
        get_technology(str(params["technology"])), float(params["vdd"]),
        steps=int(params["steps"]), width=int(params["width"]))


# ---------------------------------------------------------------------------
# charge-to-digital conversion ledger (sensors)


def _draw_conversion(rng) -> Dict:
    return {"technology": _choose(rng, _TECHNOLOGY_NAMES),
            "voltage": float(rng.uniform(0.05, 1.5)),
            "capacitance_pf": float(rng.uniform(5.0, 50.0)),
            "counter_width": int(rng.integers(4, 13))}


def _check_conversion(params: Mapping) -> List[str]:
    from repro.models.technology import get_technology
    from repro.sensors.charge_to_digital import conversion_violations

    return conversion_violations(
        get_technology(str(params["technology"])), float(params["voltage"]),
        sampling_capacitance=float(params["capacitance_pf"]) * 1e-12,
        counter_width=int(params["counter_width"]))


# ---------------------------------------------------------------------------
# gate positivity + Vdd-monotonicity (models)


def _draw_gate_monotonic(rng) -> Dict:
    technology = _choose(rng, _TECHNOLOGY_NAMES)
    low, high = _vdd_window(rng, technology)
    return {"technology": technology, "gate": _choose(rng, _GATE_NAMES),
            "vdd_low": low, "vdd_high": high}


def _check_gate_monotonic(params: Mapping) -> List[str]:
    from repro.models.gate import GateModel, GateType
    from repro.models.technology import get_technology

    technology = get_technology(str(params["technology"]))
    gate = GateModel(technology=technology,
                     gate_type=GateType[str(params["gate"])])
    low, high = float(params["vdd_low"]), float(params["vdd_high"])
    violations: List[str] = []
    for vdd in (low, high):
        for name, value in (("delay", gate.delay(vdd)),
                            ("transition energy",
                             gate.transition_energy(vdd)),
                            ("leakage power", gate.leakage_power(vdd)),
                            ("frequency", gate.frequency(vdd))):
            if not value > 0.0:
                violations.append(
                    f"{params['gate']} {name} not positive at "
                    f"vdd={vdd!r} V: {value!r}")
    if gate.delay(low) < gate.delay(high) * (1.0 - 1e-12):
        violations.append(
            f"{params['gate']} delay increased with Vdd: "
            f"{gate.delay(low)!r} s at {low!r} V < "
            f"{gate.delay(high)!r} s at {high!r} V")
    if gate.frequency(high) < gate.frequency(low) * (1.0 - 1e-12):
        violations.append(
            f"{params['gate']} frequency decreased with Vdd: "
            f"{gate.frequency(high)!r} Hz at {high!r} V < "
            f"{gate.frequency(low)!r} Hz at {low!r} V")
    return violations


# ---------------------------------------------------------------------------
# batched-vs-per-point bit-identity (analysis/models.batch)


def _batch_gate_delay_kernel(technology_name: str, vdds):
    from repro.models.batch import TechnologyBatch, gate_delay
    from repro.models.technology import get_technology

    return gate_delay(TechnologyBatch.of(get_technology(technology_name)),
                      vdds)


def _draw_batched_identity(rng) -> Dict:
    technology = _choose(rng, _TECHNOLOGY_NAMES)
    from repro.models.technology import get_technology

    floor = get_technology(technology).vdd_min + 0.05
    count = int(rng.integers(3, 9))
    vdds = sorted(float(v) for v in rng.uniform(floor, 1.25, size=count))
    return {"technology": technology, "vdds": vdds}


def _check_batched_identity(params: Mapping) -> List[str]:
    from repro.analysis.runner import Executor, ExperimentPlan, batched

    quantity = batched(partial(_batch_gate_delay_kernel,
                               str(params["technology"])))
    plan = ExperimentPlan.sweep("vdd", [float(v) for v in params["vdds"]])
    vectorised = Executor(workers=0, batch=True).run(
        plan, {"delay": quantity})
    per_point = Executor(workers=0, batch=False).run(
        plan, {"delay": quantity})
    violations: List[str] = []
    if not vectorised.provenance.executor.startswith("batched["):
        violations.append(
            "vectorised executor did not engage: ran as "
            f"{vectorised.provenance.executor!r}")
    if vectorised.values != per_point.values:
        diffs = [
            f"vdd={x!r}: batched {a!r} != per-point {b!r}"
            for x, a, b in zip(params["vdds"],
                               vectorised.values["delay"],
                               per_point.values["delay"])
            if a != b]
        violations.append(
            "batched and per-point evaluation disagree bitwise: "
            + "; ".join(diffs))
    return violations


# ---------------------------------------------------------------------------
# M/M/c operating-point sanity (core/stochastic)


def _draw_queueing(rng) -> Dict:
    return {"arrival_rate": float(rng.uniform(50.0, 2000.0)),
            "service_rate": float(rng.uniform(20.0, 500.0)),
            "servers": int(rng.integers(1, 13))}


def _check_queueing(params: Mapping) -> List[str]:
    import math

    from repro.core.stochastic import PowerLatencyModel

    model = PowerLatencyModel(arrival_rate=float(params["arrival_rate"]),
                              service_rate=float(params["service_rate"]))
    servers = int(params["servers"])
    point = model.operating_point(servers)
    violations: List[str] = []
    if point.stable:
        if not 0.0 < point.utilisation < 1.0:
            violations.append(
                f"stable {servers}-server queue reports utilisation "
                f"{point.utilisation!r} outside (0, 1)")
        service_time = 1.0 / model.service_rate
        if point.mean_latency < service_time * (1.0 - 1e-12):
            violations.append(
                f"mean latency {point.mean_latency!r} s undercuts the "
                f"service time {service_time!r} s")
        if not point.power > 0.0:
            violations.append(f"power not positive: {point.power!r} W")
        wider = model.operating_point(servers + 1)
        if wider.stable and \
                wider.mean_latency > point.mean_latency * (1.0 + 1e-9):
            violations.append(
                f"adding a server raised mean latency: {servers} -> "
                f"{point.mean_latency!r} s, {servers + 1} -> "
                f"{wider.mean_latency!r} s")
    elif math.isfinite(point.mean_latency):
        violations.append(
            f"unstable {servers}-server queue reports finite latency "
            f"{point.mean_latency!r} s")
    return violations


# ---------------------------------------------------------------------------
# registry


@dataclass(frozen=True)
class Invariant:
    """One fuzzable cross-layer contract.

    ``draw(rng)`` produces a JSON-primitive parameter dictionary inside
    the model envelope; ``check(params)`` returns violation messages
    (empty = held).  ``shrink_floors`` names the numeric parameters the
    shrinker may bisect toward a floor value while preserving the
    violation; list-valued parameters are always shrinkable by
    truncation.
    """

    name: str
    description: str
    draw: Callable
    check: Callable[[Mapping], List[str]]
    shrink_floors: Tuple[Tuple[str, float], ...] = ()


DEFAULT_INVARIANTS: Dict[str, Invariant] = {}


def _register(invariant: Invariant) -> Invariant:
    if invariant.name in DEFAULT_INVARIANTS:
        raise ConfigurationError(f"duplicate invariant {invariant.name!r}")
    DEFAULT_INVARIANTS[invariant.name] = invariant
    return invariant


_register(Invariant(
    name="charge_conservation",
    description="A capacitor never goes negative, never gains voltage "
                "from a draw, and its ledger balances",
    draw=_draw_charge_conservation, check=_check_charge_conservation,
    shrink_floors=(("initial_voltage", 0.2), ("capacitance", 1e-12))))

_register(Invariant(
    name="harvester_energy",
    description="Seeded harvesters stay inside their power envelope and "
                "their energy ledger matches the integral",
    draw=_draw_harvester_energy, check=_check_harvester_energy,
    shrink_floors=(("voltage_scale", 1.0),)))

_register(Invariant(
    name="sram_latency_chain",
    description="SI SRAM latencies dominate their slowest stage and "
                "shrink with Vdd",
    draw=_draw_latency_chain, check=_check_latency_chain,
    shrink_floors=(("vdd_high", 1.25),)))

_register(Invariant(
    name="dualrail_completion",
    description="A dual-rail counter on a healthy constant rail completes "
                "every handshake in order",
    draw=_draw_dualrail, check=_check_dualrail,
    shrink_floors=(("steps", 1), ("width", 1))))

_register(Invariant(
    name="conversion_charge",
    description="A charge-to-digital conversion only removes charge and "
                "stays inside the counter range",
    draw=_draw_conversion, check=_check_conversion,
    shrink_floors=(("counter_width", 4), ("capacitance_pf", 5.0))))

_register(Invariant(
    name="gate_monotonic",
    description="Gate delay/energy/leakage are positive and delay falls "
                "(frequency rises) with Vdd",
    draw=_draw_gate_monotonic, check=_check_gate_monotonic,
    shrink_floors=(("vdd_high", 1.25),)))

_register(Invariant(
    name="batched_identity",
    description="Vectorised batch kernels are bit-identical to the "
                "per-point path",
    draw=_draw_batched_identity, check=_check_batched_identity))

_register(Invariant(
    name="queueing_sanity",
    description="M/M/c operating points respect stability, the service-"
                "time floor and server monotonicity",
    draw=_draw_queueing, check=_check_queueing,
    shrink_floors=(("servers", 1),)))


def get_invariant(name: str,
                  registry: Mapping[str, Invariant] = None) -> Invariant:
    """Look up an invariant; unknown names raise a clear error."""
    table = DEFAULT_INVARIANTS if registry is None else registry
    try:
        return table[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown invariant {name!r}; available: {sorted(table)}"
        ) from exc
