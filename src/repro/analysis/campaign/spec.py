"""Declarative campaign specifications and their compiler.

A campaign is pure data: a seed plus a list of *scenarios*, each naming a
registry point function and the cross-product to enumerate it over —
technologies, axis ranges (explicit values or ``start``/``stop``/``count``
ranges), a parameter matrix, and (for Monte-Carlo entries) sample counts
and seed batches.  :func:`compile_campaign` expands the cross-products
into concrete :class:`~repro.analysis.runner.ExperimentPlan`s with
executor-ready quantity mappings; nothing here executes anything.

The on-disk form is TOML (``campaigns/*.toml``), parsed with the same
:mod:`tomllib` machinery the session layer uses for ``repro.toml`` —
available from Python 3.11; older interpreters get a clear
:class:`~repro.errors.ConfigurationError` instead of an import crash.

Seeding: every Monte-Carlo plan's seed derives from
``SeedSequence((campaign_seed, scenario, technology, variant, batch))``,
so the full plan set — and through the runner's per-sample
:func:`~repro.analysis.runner.sample_seed` streams, every drawn sample —
is a pure function of the campaign seed and the spec.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised on the 3.10 CI leg
    tomllib = None

from numpy.random import SeedSequence

from repro.analysis.cache import result_key
from repro.analysis.runner import ExperimentPlan
from repro.analysis.campaign.registry import (PointFunction,
                                              get_point_function,
                                              quantities_for)
from repro.errors import ConfigurationError
from repro.models.technology import TECHNOLOGIES, get_technology

__all__ = [
    "AxisSpec",
    "CampaignSpec",
    "CompiledCampaign",
    "PlannedRun",
    "ScenarioSpec",
    "builtin_campaign_path",
    "compile_campaign",
    "load_campaign",
]

#: Salt under which :meth:`CompiledCampaign.signature` keys its runs —
#: explicit so signatures compare across processes of the same tree.
SIGNATURE_SALT = "campaign-v1"


def _linspace(start: float, stop: float, count: int) -> Tuple[float, ...]:
    """Deterministic pure-Python linspace (no dtype surprises)."""
    if count < 1:
        raise ConfigurationError("axis count must be >= 1")
    if count == 1:
        return (float(start),)
    step = (float(stop) - float(start)) / (count - 1)
    return tuple(float(start) + step * i for i in range(count))


@dataclass(frozen=True)
class AxisSpec:
    """One plan axis: a name and its exact point values."""

    name: str
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigurationError(f"axis {self.name!r} has no values")

    @classmethod
    def from_table(cls, name: str, table: Mapping) -> "AxisSpec":
        """Parse a TOML axis table: ``values = [...]`` or start/stop/count."""
        if "values" in table:
            extra = set(table) - {"values"}
            if extra:
                raise ConfigurationError(
                    f"axis {name!r}: 'values' excludes {sorted(extra)}")
            return cls(name, tuple(float(v) for v in table["values"]))
        missing = {"start", "stop", "count"} - set(table)
        if missing:
            raise ConfigurationError(
                f"axis {name!r} needs 'values' or start/stop/count "
                f"(missing {sorted(missing)})")
        return cls(name, _linspace(table["start"], table["stop"],
                                   int(table["count"])))


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario: a point function times its enumeration cross-product."""

    point: str
    technologies: Tuple[str, ...]
    axes: Tuple[AxisSpec, ...] = ()
    matrix: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()
    params: Tuple[Tuple[str, object], ...] = ()
    metrics: Optional[Tuple[str, ...]] = None
    samples: int = 0
    seed_batches: int = 1

    def variants(self) -> List[Dict[str, object]]:
        """The parameter dictionaries of the matrix cross-product."""
        combos: List[Dict[str, object]] = [dict(self.params)]
        for name, candidates in self.matrix:
            combos = [dict(combo, **{name: candidate})
                      for combo in combos for candidate in candidates]
        return combos


@dataclass(frozen=True)
class CampaignSpec:
    """A named, seeded list of scenarios — the whole declarative input."""

    name: str
    seed: int
    scenarios: Tuple[ScenarioSpec, ...]
    description: str = ""

    def trimmed(self, max_axis_points: int = 3, max_samples: int = 4,
                max_variants: int = 1) -> "CampaignSpec":
        """A smoke-sized campaign: same scenarios, skeleton cross-products.

        Axes keep at most *max_axis_points* spanning values (first,
        middle, last), Monte-Carlo batches shrink to *max_samples* samples
        in one seed batch, and each matrix dimension keeps its leading
        *max_variants* candidates — enough to exercise every scenario's
        code path in seconds.
        """
        def trim_axis(axis: AxisSpec) -> AxisSpec:
            values = axis.values
            if len(values) <= max_axis_points:
                return axis
            picks = {0, len(values) // 2, len(values) - 1}
            return AxisSpec(axis.name,
                            tuple(values[i] for i in sorted(picks)))

        scenarios = tuple(
            replace(scenario,
                    axes=tuple(trim_axis(a) for a in scenario.axes),
                    matrix=tuple((name, candidates[:max_variants])
                                 for name, candidates in scenario.matrix),
                    samples=min(scenario.samples, max_samples)
                    if scenario.samples else 0,
                    seed_batches=1)
            for scenario in self.scenarios)
        return replace(self, scenarios=scenarios)


@dataclass(frozen=True)
class PlannedRun:
    """One compiled (plan, quantities) execution of a campaign."""

    label: str
    scenario_index: int
    technology: str
    params: Tuple[Tuple[str, object], ...]
    plan: ExperimentPlan
    quantities: Dict[str, Callable]


@dataclass(frozen=True)
class CompiledCampaign:
    """The executable form: every cross-product member as a planned run."""

    spec: CampaignSpec
    runs: Tuple[PlannedRun, ...]

    @property
    def point_count(self) -> int:
        """Total scenario points across every planned run."""
        return sum(run.plan.point_count for run in self.runs)

    def signature(self) -> str:
        """Content identity of the whole campaign's execution set.

        Hashes each run's :func:`~repro.analysis.cache.result_key` —
        plan declaration plus quantity fingerprints — in order, under a
        fixed salt.  Equal signatures mean "the same code would evaluate
        the same functions at the same points in the same order", which
        is what the determinism test pins across executors.
        """
        digest = hashlib.sha256()
        for run in self.runs:
            digest.update(result_key(run.plan, run.quantities,
                                     salt=SIGNATURE_SALT).encode())
        return digest.hexdigest()

    def describe(self) -> Dict[str, object]:
        """JSON-able summary: name, seed, geometry, per-scenario points."""
        per_scenario: Dict[str, int] = {}
        for run in self.runs:
            name = self.spec.scenarios[run.scenario_index].point
            per_scenario[name] = (per_scenario.get(name, 0)
                                  + run.plan.point_count)
        return {
            "name": self.spec.name,
            "seed": self.spec.seed,
            "runs": len(self.runs),
            "points": self.point_count,
            "scenario_points": per_scenario,
            "signature": self.signature(),
        }


# ---------------------------------------------------------------------------
# Compilation


def _derived_seed(campaign_seed: int, scenario_index: int,
                  technology_index: int, variant_index: int,
                  batch: int) -> int:
    """The Monte-Carlo plan seed of one (scenario, tech, variant, batch)."""
    entropy = (campaign_seed, scenario_index, technology_index,
               variant_index, batch)
    return int(SeedSequence(entropy).generate_state(1)[0])


def _compile_scenario(campaign: CampaignSpec, index: int,
                      scenario: ScenarioSpec) -> List[PlannedRun]:
    entry = get_point_function(scenario.point)
    _validate_axes(entry, scenario)
    runs: List[PlannedRun] = []
    for tech_index, technology_name in enumerate(scenario.technologies):
        get_technology(technology_name)  # unknown names fail at compile time
        for variant_index, params in enumerate(scenario.variants()):
            quantities = quantities_for(entry, technology_name, params,
                                        scenario.metrics)
            params_items = tuple(sorted(params.items()))
            suffix = "" if len(scenario.variants()) == 1 \
                else f"#{variant_index}"
            label = f"{scenario.point}[{technology_name}]{suffix}"
            if entry.kind == "montecarlo":
                for batch in range(scenario.seed_batches):
                    seed = _derived_seed(campaign.seed, index, tech_index,
                                         variant_index, batch)
                    plan = ExperimentPlan.monte_carlo(
                        scenario.samples,
                        technology=get_technology(technology_name),
                        seed=seed)
                    batch_label = label if scenario.seed_batches == 1 \
                        else f"{label}@{batch}"
                    runs.append(PlannedRun(batch_label, index,
                                           technology_name, params_items,
                                           plan, quantities))
                continue
            if entry.kind == "sweep":
                axis = scenario.axes[0]
                plan = ExperimentPlan.sweep(axis.name, axis.values)
            else:
                x, y = scenario.axes
                plan = ExperimentPlan.grid(x.name, x.values,
                                           y.name, y.values)
            runs.append(PlannedRun(label, index, technology_name,
                                   params_items, plan, quantities))
    return runs


def _validate_axes(entry: PointFunction, scenario: ScenarioSpec) -> None:
    if entry.kind == "montecarlo":
        if scenario.axes:
            raise ConfigurationError(
                f"{scenario.point!r} is a Monte-Carlo point function; "
                "declare 'samples', not axes")
        if scenario.samples < 1:
            raise ConfigurationError(
                f"{scenario.point!r} needs samples >= 1")
        if scenario.seed_batches < 1:
            raise ConfigurationError(
                f"{scenario.point!r} needs seed_batches >= 1")
        return
    expected = entry.axes
    got = tuple(axis.name for axis in scenario.axes)
    if got != expected:
        raise ConfigurationError(
            f"{scenario.point!r} needs axes {list(expected)} in order, "
            f"got {list(got)}")
    if scenario.samples or scenario.seed_batches != 1:
        raise ConfigurationError(
            f"{scenario.point!r} is not Monte-Carlo; samples/seed_batches "
            "do not apply")


def compile_campaign(spec: CampaignSpec) -> CompiledCampaign:
    """Expand every scenario cross-product into executable planned runs."""
    if not spec.scenarios:
        raise ConfigurationError(f"campaign {spec.name!r} has no scenarios")
    runs: List[PlannedRun] = []
    for index, scenario in enumerate(spec.scenarios):
        runs.extend(_compile_scenario(spec, index, scenario))
    return CompiledCampaign(spec=spec, runs=tuple(runs))


# ---------------------------------------------------------------------------
# TOML loading


def _scenario_from_table(index: int, table: Mapping) -> ScenarioSpec:
    where = f"[[scenario]] #{index}"
    if "point" not in table:
        raise ConfigurationError(f"{where}: missing 'point'")
    point = str(table["point"])
    entry = get_point_function(point)
    known = {"point", "technologies", "axes", "matrix", "params", "metrics",
             "samples", "seed_batches"}
    extra = set(table) - known
    if extra:
        raise ConfigurationError(
            f"{where}: unknown keys {sorted(extra)}; valid keys are "
            f"{sorted(known)}")
    technologies = tuple(str(t) for t in table.get("technologies", ())) \
        or tuple(sorted(TECHNOLOGIES))
    axes_table = table.get("axes", {})
    axes = tuple(AxisSpec.from_table(name, axes_table[name])
                 for name in entry.axes if name in axes_table)
    unknown_axes = set(axes_table) - set(entry.axes)
    if unknown_axes:
        raise ConfigurationError(
            f"{where}: {point!r} has no axes {sorted(unknown_axes)}; "
            f"it sweeps {list(entry.axes)}")
    matrix = tuple((str(name), tuple(values))
                   for name, values in table.get("matrix", {}).items())
    for name, values in matrix:
        if not values:
            raise ConfigurationError(
                f"{where}: matrix dimension {name!r} has no candidates")
    params = tuple(sorted((str(k), v)
                          for k, v in table.get("params", {}).items()))
    metrics = table.get("metrics")
    return ScenarioSpec(
        point=point,
        technologies=technologies,
        axes=axes,
        matrix=matrix,
        params=params,
        metrics=tuple(str(m) for m in metrics) if metrics else None,
        samples=int(table.get("samples", 0)),
        seed_batches=int(table.get("seed_batches", 1)),
    )


def load_campaign(path) -> CampaignSpec:
    """Parse one ``campaigns/*.toml`` file into a :class:`CampaignSpec`."""
    if tomllib is None:
        raise ConfigurationError(
            "campaign TOML files need Python >= 3.11 (tomllib); build the "
            "CampaignSpec dataclasses directly on older interpreters")
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            data = tomllib.load(handle)
    except OSError as exc:
        raise ConfigurationError(f"cannot read campaign file {path}: "
                                 f"{exc}") from exc
    except tomllib.TOMLDecodeError as exc:
        raise ConfigurationError(f"invalid TOML in {path}: {exc}") from exc
    header = data.get("campaign", {})
    scenarios = data.get("scenario", [])
    if not scenarios:
        raise ConfigurationError(f"{path}: no [[scenario]] tables")
    spec = CampaignSpec(
        name=str(header.get("name", path.stem)),
        seed=int(header.get("seed", 0)),
        description=str(header.get("description", "")),
        scenarios=tuple(_scenario_from_table(i, table)
                        for i, table in enumerate(scenarios)),
    )
    compile_campaign(spec)  # schema errors surface at load time
    return spec


def builtin_campaign_path(name: str = "paper_space") -> Path:
    """The path of a bundled ``campaigns/<name>.toml``."""
    root = Path(__file__).resolve().parents[4] / "campaigns"
    path = root / f"{name}.toml"
    if not path.exists():
        bundled = sorted(p.stem for p in root.glob("*.toml")) \
            if root.is_dir() else []
        raise ConfigurationError(
            f"no bundled campaign {name!r}; available: {bundled}")
    return path
