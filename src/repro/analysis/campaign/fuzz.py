"""The seeded scenario fuzzer and its replayable violation corpus.

:func:`fuzz` walks a seed budget: index *i* of a run with campaign seed
*s* draws its parameters from ``default_rng(SeedSequence((s, i)))`` and
evaluates one invariant (round-robin over the registry), so any single
index can be re-drawn — and any violation re-evaluated — without running
the indices before it.  Every violation is shrunk toward a minimal
parameter set that still violates, then persisted as a JSON case under
the corpus directory; :func:`reproduce` re-runs a case from its recorded
parameters and demands the byte-for-byte identical violation messages,
which is what ``python -m repro campaign repro CASE_ID`` checks.

Exceptions during a check are folded into the violation protocol rather
than crashing the run: a :class:`~repro.errors.ConfigurationError` means
the draw left the model envelope (counted as a rejection, not a bug),
any other exception *is* the finding (a fuzzer that dies on the first
crash cannot report it).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from numpy.random import SeedSequence, default_rng

from repro.analysis.campaign.invariants import DEFAULT_INVARIANTS, Invariant
from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_CORPUS_DIR",
    "FuzzCase",
    "FuzzReport",
    "fuzz",
    "load_case",
    "reproduce",
]

#: Where violation cases land unless the caller says otherwise.
DEFAULT_CORPUS_DIR = ".repro_fuzz"

#: Format version stamped into every persisted case.
_CASE_VERSION = 1

#: Upper bound on check evaluations one shrink pass may spend.
_SHRINK_BUDGET = 64


@dataclass(frozen=True)
class FuzzCase:
    """One persisted violation: everything needed to replay it."""

    case_id: str
    invariant: str
    seed: int
    index: int
    params: Dict
    violations: Tuple[str, ...]
    crash: bool = False

    def as_dict(self) -> Dict:
        return {
            "version": _CASE_VERSION,
            "case_id": self.case_id,
            "invariant": self.invariant,
            "seed": self.seed,
            "index": self.index,
            "params": self.params,
            "violations": list(self.violations),
            "crash": self.crash,
        }


@dataclass
class FuzzReport:
    """What one fuzz run did: budget spent, rejections, cases found."""

    seed: int
    budget: int
    evaluated: int = 0
    rejected: int = 0
    cases: List[FuzzCase] = field(default_factory=list)

    @property
    def violation_count(self) -> int:
        return len(self.cases)


def _canonical_json(payload: Mapping) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _case_id(invariant: str, seed: int, index: int, params: Mapping) -> str:
    digest = hashlib.sha256(_canonical_json({
        "invariant": invariant, "seed": seed, "index": index,
        "params": params}).encode())
    return digest.hexdigest()[:12]


def _evaluate(invariant: Invariant, params: Mapping
              ) -> Tuple[List[str], bool]:
    """Run one check; returns ``(violations, crashed)``.

    ``ConfigurationError`` propagates — the draw (or a shrink candidate)
    left the model envelope.  Every other exception becomes the
    violation: a crash is a finding, and folding it into the message
    protocol keeps crash cases shrinkable and replayable like any other.
    """
    try:
        return list(invariant.check(params)), False
    except ConfigurationError:
        raise
    except Exception as exc:  # noqa: BLE001 - crashes are findings
        return [f"crash: {type(exc).__name__}: {exc}"], True


def _round_trip(params: Mapping) -> Dict:
    """The params exactly as a persisted case will replay them."""
    return json.loads(_canonical_json(params))


def _still_violates(invariant: Invariant, params: Mapping) -> bool:
    try:
        violations, _ = _evaluate(invariant, _round_trip(params))
    except ConfigurationError:
        return False
    return bool(violations)


def _shrink(invariant: Invariant, params: Dict) -> Dict:
    """Deterministically simplify *params* while the violation persists.

    Two moves, bounded by :data:`_SHRINK_BUDGET` check evaluations:
    list-valued parameters truncate (first half, then first element), and
    numeric parameters named in ``invariant.shrink_floors`` bisect toward
    their declared floor.  Every accepted candidate must still violate
    after a JSON round-trip, so shrinking can never walk a case out of
    replayability.
    """
    current = dict(params)
    spent = 0

    def attempt(candidate: Dict) -> bool:
        nonlocal current, spent
        if spent >= _SHRINK_BUDGET:
            return False
        spent += 1
        if _still_violates(invariant, candidate):
            current = candidate
            return True
        return False

    for name in sorted(current):
        value = current[name]
        if isinstance(value, list) and len(value) > 1:
            while len(current[name]) > 1 and spent < _SHRINK_BUDGET:
                half = current[name][:max(1, len(current[name]) // 2)]
                if not attempt(dict(current, **{name: half})):
                    break
    floors = dict(invariant.shrink_floors)
    for name, floor in sorted(floors.items()):
        if name not in current:
            continue
        is_int = isinstance(current[name], int) \
            and not isinstance(current[name], bool)
        for _ in range(12):
            if spent >= _SHRINK_BUDGET:
                break
            value = current[name]
            midpoint = (value + floor) / 2.0
            candidate = int(round(midpoint)) if is_int else float(midpoint)
            if candidate == value:
                break
            if not attempt(dict(current, **{name: candidate})):
                break
    return current


def _write_case(case: FuzzCase, corpus_dir: Path) -> Path:
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = corpus_dir / f"{case.case_id}.json"
    path.write_text(json.dumps(case.as_dict(), sort_keys=True, indent=2)
                    + "\n")
    return path


def fuzz(seed: int, budget: int,
         corpus_dir=DEFAULT_CORPUS_DIR,
         invariants: Optional[Mapping[str, Invariant]] = None,
         names: Optional[Sequence[str]] = None,
         progress=None) -> FuzzReport:
    """Spend *budget* seeded draws across the invariant registry.

    Invariants round-robin in sorted-name order; index *i* draws from
    ``SeedSequence((seed, i))``, making every index independently
    re-drawable.  Violations (and crashes) are shrunk and persisted under
    *corpus_dir*; rejections (draws the model envelope refused via
    ``ConfigurationError``) are counted but not fatal.
    """
    if budget < 1:
        raise ConfigurationError(f"fuzz budget must be >= 1, got {budget!r}")
    table = DEFAULT_INVARIANTS if invariants is None else dict(invariants)
    if names:
        unknown = [n for n in names if n not in table]
        if unknown:
            raise ConfigurationError(
                f"unknown invariants {unknown}; available: {sorted(table)}")
        table = {name: table[name] for name in names}
    if not table:
        raise ConfigurationError("no invariants to fuzz")
    ordered = [table[name] for name in sorted(table)]
    corpus = Path(corpus_dir)
    report = FuzzReport(seed=seed, budget=budget)
    for index in range(budget):
        invariant = ordered[index % len(ordered)]
        rng = default_rng(SeedSequence((seed, index)))
        params = _round_trip(invariant.draw(rng))
        try:
            violations, crashed = _evaluate(invariant, params)
        except ConfigurationError:
            report.rejected += 1
            continue
        report.evaluated += 1
        if not violations:
            continue
        shrunk = _shrink(invariant, params)
        final_violations, crashed = _evaluate(invariant, _round_trip(shrunk))
        case = FuzzCase(
            case_id=_case_id(invariant.name, seed, index, shrunk),
            invariant=invariant.name, seed=seed, index=index,
            params=_round_trip(shrunk),
            violations=tuple(final_violations), crash=crashed)
        _write_case(case, corpus)
        report.cases.append(case)
        if progress is not None:
            progress(case)
    return report


def load_case(case_id: str, corpus_dir=DEFAULT_CORPUS_DIR) -> FuzzCase:
    """Read one persisted case back; unknown IDs raise a clear error."""
    corpus = Path(corpus_dir)
    path = corpus / f"{case_id}.json"
    if not path.exists():
        known = sorted(p.stem for p in corpus.glob("*.json")) \
            if corpus.is_dir() else []
        raise ConfigurationError(
            f"no fuzz case {case_id!r} under {corpus}; corpus holds "
            f"{known}")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"corrupt fuzz case {path}: {exc}") from exc
    for key in ("case_id", "invariant", "seed", "index", "params",
                "violations"):
        if key not in data:
            raise ConfigurationError(f"fuzz case {path} is missing {key!r}")
    return FuzzCase(
        case_id=str(data["case_id"]), invariant=str(data["invariant"]),
        seed=int(data["seed"]), index=int(data["index"]),
        params=data["params"], violations=tuple(data["violations"]),
        crash=bool(data.get("crash", False)))


def reproduce(case: FuzzCase,
              invariants: Optional[Mapping[str, Invariant]] = None
              ) -> Tuple[bool, List[str]]:
    """Replay *case* from its recorded parameters.

    Returns ``(identical, violations)``: *identical* is True only when
    the re-run produces exactly the recorded violation messages,
    byte-for-byte — the determinism contract of the whole corpus.
    """
    table = DEFAULT_INVARIANTS if invariants is None else invariants
    if case.invariant not in table:
        raise ConfigurationError(
            f"case {case.case_id} checks unknown invariant "
            f"{case.invariant!r}; available: {sorted(table)}")
    invariant = table[case.invariant]
    violations, _ = _evaluate(invariant, _round_trip(case.params))
    return tuple(violations) == case.violations, violations
