"""``python -m repro campaign`` — the campaign/fuzzer command line.

Four subcommands::

    python -m repro campaign run [--campaign NAME|FILE] [--smoke] [...]
    python -m repro campaign list
    python -m repro campaign fuzz [--budget N] [--seed N] [--corpus DIR]
    python -m repro campaign repro CASE_ID [--corpus DIR]

``run`` resolves execution policy through the same
:class:`~repro.analysis.session.RunConfig` chain as ``python -m repro
run`` (flags > ``REPRO_*`` environment > ``repro.toml`` > defaults) and
executes the compiled campaign through one
:class:`~repro.analysis.session.Session` — pool, batched kernels,
persistent cache and distrib fleet included.  ``--smoke`` trims every
scenario to a skeleton cross-product, which is what CI runs on every
push.

``fuzz`` spends a seeded budget across the invariant registry and
persists every (shrunk) violation under the corpus directory; ``repro``
replays one persisted case and exits 0 only when the re-run reproduces
the recorded violations byte-for-byte.
"""

from __future__ import annotations

import json
import sys
from typing import Optional, Sequence

from repro.errors import ConfigurationError

__all__ = ["main"]


def _build_parser():
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="Enumerate, execute and fuzz scenario campaigns over "
                    "the paper's model space.")
    commands = parser.add_subparsers(dest="command")

    run_cmd = commands.add_parser(
        "run", help="compile and execute a campaign through a Session")
    run_cmd.add_argument("--campaign", default="paper_space",
                         metavar="NAME|FILE",
                         help="bundled campaign name (campaigns/NAME.toml) "
                              "or a path to a campaign TOML file "
                              "(default: paper_space)")
    run_cmd.add_argument("--smoke", action="store_true",
                         help="trim every scenario to a skeleton "
                              "cross-product (seconds, not minutes)")
    run_cmd.add_argument("--workers", default=None, metavar="N|auto",
                         help="pool size (auto = cpu count; default: "
                              "resolved)")
    run_cmd.add_argument("--cache-mode", default=None,
                         choices=("off", "rw", "ro"),
                         help="persistent-cache mode (default: resolved)")
    run_cmd.add_argument("--cache-root", default=None, metavar="SPEC",
                         help="cache root: a directory, a bucket URL, or "
                              "fs / obj:URL (default: resolved)")
    run_cmd.add_argument("--distrib-root", default=None, metavar="ROOT",
                         help="shared fleet root (default: resolved)")
    run_cmd.add_argument("--config", default=None, metavar="FILE",
                         help="repro.toml to resolve from (default: "
                              "$REPRO_CONFIG or ./repro.toml)")
    run_cmd.add_argument("--json", action="store_true",
                         help="emit the campaign summary as JSON")
    run_cmd.add_argument("--plan-only", action="store_true",
                         help="compile and describe the campaign without "
                              "executing it")

    commands.add_parser(
        "list", help="list registry point functions and fuzz invariants")

    fuzz_cmd = commands.add_parser(
        "fuzz", help="draw seeded scenario points against the invariant "
                     "registry")
    fuzz_cmd.add_argument("--budget", type=int, default=64, metavar="N",
                          help="seeded draws to spend (default: 64)")
    fuzz_cmd.add_argument("--seed", type=int, default=0, metavar="N",
                          help="campaign seed of the draw streams "
                               "(default: 0)")
    fuzz_cmd.add_argument("--corpus", default=None, metavar="DIR",
                          help="violation corpus directory "
                               "(default: .repro_fuzz)")
    fuzz_cmd.add_argument("--invariant", action="append", default=None,
                          metavar="NAME",
                          help="restrict to one invariant (repeatable)")

    repro_cmd = commands.add_parser(
        "repro", help="replay one persisted fuzz case byte-for-byte")
    repro_cmd.add_argument("case_id", metavar="CASE_ID",
                           help="identifier of a case under the corpus "
                                "directory")
    repro_cmd.add_argument("--corpus", default=None, metavar="DIR",
                           help="violation corpus directory "
                                "(default: .repro_fuzz)")
    return parser


def _resolve_campaign(spec_arg: str, smoke: bool):
    from repro.analysis.campaign.spec import (builtin_campaign_path,
                                              compile_campaign,
                                              load_campaign)

    path = spec_arg
    if not str(spec_arg).endswith(".toml"):
        path = builtin_campaign_path(str(spec_arg))
    spec = load_campaign(path)
    if smoke:
        spec = spec.trimmed()
    return compile_campaign(spec)


def _cmd_run(args) -> int:
    from repro.analysis.campaign.engine import run_campaign
    from repro.analysis.session import RunConfig, Session

    campaign = _resolve_campaign(args.campaign, args.smoke)
    if args.plan_only:
        payload = campaign.describe()
        print(json.dumps(payload, indent=2, sort_keys=True) if args.json
              else _describe_lines(payload))
        return 0
    config = RunConfig.resolve(
        config_file=args.config,
        workers=args.workers,
        cache_mode=args.cache_mode,
        cache_root=args.cache_root,
        distrib_root=args.distrib_root,
    )
    with Session(config) as session:
        result = run_campaign(campaign, session)
    summary = result.summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(_describe_lines(summary))
    print(f"  executed {summary['evaluated_points']} point(s) across "
          f"{summary['runs']} run(s) in {summary['wall_time_s']:.2f} s "
          f"on {', '.join(summary['executors'])}")
    if summary["persistent_hits"] or summary["persistent_misses"]:
        print(f"  persistent cache: {summary['persistent_hits']} hit(s), "
              f"{summary['persistent_misses']} miss(es)")
    return 0


def _describe_lines(payload) -> str:
    lines = [f"campaign '{payload['name']}' (seed {payload['seed']}): "
             f"{payload['points']} point(s) in {payload['runs']} "
             f"planned run(s)"]
    for name, points in sorted(payload["scenario_points"].items()):
        lines.append(f"  {name}: {points} point(s)")
    lines.append(f"  signature {payload['signature'][:16]}...")
    return "\n".join(lines)


def _cmd_list(args) -> int:
    from repro.analysis.campaign.invariants import DEFAULT_INVARIANTS
    from repro.analysis.campaign.registry import REGISTRY

    print("point functions:")
    for name in sorted(REGISTRY):
        entry = REGISTRY[name]
        axes = ", ".join(entry.axes)
        print(f"  {name} [{entry.kind}; axes: {axes}] — "
              f"{entry.description}")
        print(f"    metrics: {', '.join(entry.metrics)}")
    print("invariants:")
    for name in sorted(DEFAULT_INVARIANTS):
        print(f"  {name} — {DEFAULT_INVARIANTS[name].description}")
    return 0


def _cmd_fuzz(args, invariants=None) -> int:
    from repro.analysis.campaign.fuzz import DEFAULT_CORPUS_DIR, fuzz

    corpus = args.corpus or DEFAULT_CORPUS_DIR

    def progress(case):
        print(f"  VIOLATION {case.case_id} [{case.invariant}] "
              f"index={case.index}:")
        for message in case.violations:
            print(f"    {message}")

    report = fuzz(seed=args.seed, budget=args.budget, corpus_dir=corpus,
                  invariants=invariants, names=args.invariant,
                  progress=progress)
    print(f"fuzz: seed {report.seed}, {report.budget} draw(s) — "
          f"{report.evaluated} evaluated, {report.rejected} rejected, "
          f"{report.violation_count} violation(s)")
    if report.cases:
        print(f"  corpus: {corpus} — replay with "
              f"'python -m repro campaign repro CASE_ID"
              + (f" --corpus {corpus}'" if args.corpus else "'"))
        return 1
    return 0


def _cmd_repro(args, invariants=None) -> int:
    from repro.analysis.campaign.fuzz import (DEFAULT_CORPUS_DIR, load_case,
                                              reproduce)

    corpus = args.corpus or DEFAULT_CORPUS_DIR
    case = load_case(args.case_id, corpus_dir=corpus)
    identical, violations = reproduce(case, invariants=invariants)
    print(f"case {case.case_id} [{case.invariant}] seed={case.seed} "
          f"index={case.index}")
    for message in violations:
        print(f"  {message}")
    if identical:
        print("reproduced byte-for-byte")
        return 0
    print("DID NOT reproduce: recorded violations were:")
    for message in case.violations:
        print(f"  {message}")
    return 1


def main(argv: Optional[Sequence[str]] = None,
         invariants=None) -> int:
    """Dispatch one campaign-CLI invocation; returns the exit code.

    *invariants* (a name → :class:`Invariant` mapping) overrides the
    default registry for ``fuzz`` and ``repro`` — the hook the test
    suite uses to fuzz deliberately-broken models.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args, invariants=invariants)
        if args.command == "repro":
            return _cmd_repro(args, invariants=invariants)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    parser.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
