"""The catalogue of campaign point functions.

A *point function* is the unit a campaign enumerates: a named adapter
that evaluates one scenario point — a gate at a supply, an SI SRAM
handshake, a dual-rail counter run, a charge-to-digital conversion, a
seeded harvester instant, an M/M/c operating point, a Monte-Carlo
variation sample — and reports a whole metric row for it.

Every quantity a campaign hands to the executor is a
:func:`functools.partial` of a *module-level* function over primitive
arguments, which buys both halves of the execution stack at once:

* **picklable** — pool workers and distrib fleet shards can import and
  call it (closures and lambdas cannot cross that boundary);
* **fingerprintable** — :func:`~repro.analysis.cache.callable_fingerprint`
  hashes the frozen arguments, so two campaign points that differ only in
  a parameter key different persistent-cache entries.

Metrics of one point share a single scenario evaluation: the first
quantity asked for a row computes and memoises it (bounded, in-process),
the siblings read it back.  Pool workers inherit the empty cache at fork
and fill their own copy; correctness never depends on the memo, only
wall-time does.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.models.technology import Technology, get_technology

__all__ = [
    "PointFunction",
    "REGISTRY",
    "get_point_function",
    "quantities_for",
]


# ---------------------------------------------------------------------------
# The memoised scenario-row cache


class _RowCache:
    """Bounded in-process memo of scenario rows.

    Execution state, not content: quantities referencing this object are
    fingerprinted for the persistent cache, and the memo's (mutable,
    thread-shared) entries must never leak into content keys — hence the
    constant ``__cache_fingerprint__``, the same opt-out the executor
    itself uses.
    """

    def __init__(self, max_entries: int = 8192) -> None:
        self._entries: "OrderedDict[tuple, Dict[str, float]]" = OrderedDict()
        self._lock = threading.Lock()
        self.max_entries = max_entries

    def get(self, key: tuple, compute: Callable[[], Dict[str, float]]
            ) -> Dict[str, float]:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return self._entries[key]
        row = compute()
        with self._lock:
            self._entries[key] = row
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return row

    def __cache_fingerprint__(self) -> str:
        return type(self).__name__

    def __getstate__(self):
        # A quantity closure may drag this memo into a pickled executor
        # payload; locks do not pickle, and the entries are per-process
        # execution state — ship the configuration only.
        return {"max_entries": self.max_entries}

    def __setstate__(self, state) -> None:
        self.__init__(max_entries=state["max_entries"])


_ROWS = _RowCache()


def _cached_row(key: tuple, compute: Callable[[], Dict[str, float]]
                ) -> Dict[str, float]:
    """One scenario row, computed once per process and shared by metrics."""
    return _ROWS.get(key, compute)


def _params_dict(params_items: Tuple[Tuple[str, object], ...]) -> Dict:
    return {name: (list(value) if isinstance(value, tuple) else value)
            for name, value in params_items}


def _technology_for(name: str, params: Mapping) -> Technology:
    technology = get_technology(name)
    temperature = params.get("temperature_k")
    if temperature is not None:
        technology = technology.scaled(temperature_k=float(temperature))
    return technology


# ---------------------------------------------------------------------------
# The two executor-facing entry points (module-level => picklable partials)


def _point_value(point_name: str, metric: str, technology_name: str,
                 params_items: Tuple[Tuple[str, object], ...],
                 *coords: float) -> float:
    """Sweep/grid quantity: evaluate (or recall) the row, return one metric."""
    entry = get_point_function(point_name)
    key = (point_name, technology_name, params_items, coords)
    params = _params_dict(params_items)
    technology = _technology_for(technology_name, params)
    row = _cached_row(key, lambda: entry.evaluate(technology, params, coords))
    try:
        return row[metric]
    except KeyError as exc:
        raise ConfigurationError(
            f"point function {point_name!r} reported no metric {metric!r}; "
            f"it reports {sorted(row)}") from exc


def _mc_point_value(point_name: str, metric: str,
                    params_items: Tuple[Tuple[str, object], ...],
                    technology: Technology) -> float:
    """Monte-Carlo quantity: called with the perturbed technology."""
    from repro.analysis.runner import _technology_key

    entry = get_point_function(point_name)
    key = (point_name, _technology_key(technology), params_items)
    params = _params_dict(params_items)
    row = _cached_row(key, lambda: entry.evaluate(technology, params, ()))
    try:
        return row[metric]
    except KeyError as exc:
        raise ConfigurationError(
            f"point function {point_name!r} reported no metric {metric!r}; "
            f"it reports {sorted(row)}") from exc


# ---------------------------------------------------------------------------
# Per-entry evaluation functions: fn(technology, params, coords) -> row


def _gate_model(technology: Technology, params: Mapping):
    from repro.models.gate import GateModel, GateType

    gate_name = str(params.get("gate", "INVERTER"))
    try:
        gate_type = GateType[gate_name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown gate type {gate_name!r}; choose from "
            f"{[g.name for g in GateType]}") from exc
    return GateModel(technology=technology, gate_type=gate_type)


def _eval_gate_metrics(technology: Technology, params: Mapping,
                       coords: tuple) -> Dict[str, float]:
    gate = _gate_model(technology, params)
    vdd = float(coords[0])
    return {
        "delay": gate.delay(vdd),
        "energy": gate.transition_energy(vdd),
        "leakage": gate.leakage_power(vdd),
        "frequency": gate.frequency(vdd),
    }


def _eval_gate_thermal(technology: Technology, params: Mapping,
                       coords: tuple) -> Dict[str, float]:
    vdd, temperature_k = float(coords[0]), float(coords[1])
    warm = technology.scaled(temperature_k=temperature_k)
    gate = _gate_model(warm, params)
    return {
        "delay": gate.delay(vdd),
        "leakage": gate.leakage_power(vdd),
        "energy": gate.transition_energy(vdd),
    }


def _sram_config(technology: Technology, params: Mapping):
    from repro.sram.sram import SRAMConfig

    calibrate = params.get("calibrate")
    if calibrate is None:
        # The Fig. 5 bitline calibration probes a fixed sub-0.2 V supply;
        # technologies with a higher functional minimum build uncalibrated.
        calibrate = technology.vdd_min <= 0.19
    return SRAMConfig(rows=int(params.get("rows", 16)),
                      columns=int(params.get("columns", 8)),
                      calibrate_to_fig5=bool(calibrate),
                      calibrate_energy=bool(params.get("calibrate_energy",
                                                       False)))


def _sram_for(technology: Technology, params: Mapping):
    """One SI SRAM per (technology, organisation), shared by all supplies."""
    from repro.analysis.runner import _technology_key
    from repro.sram.sram import SpeedIndependentSRAM

    config = _sram_config(technology, params)
    key = ("sram-instance", _technology_key(technology),
           config.rows, config.columns, config.calibrate_to_fig5,
           config.calibrate_energy)
    return _cached_row(
        key, lambda: {"sram": SpeedIndependentSRAM(technology, config)}
    )["sram"]


def _eval_sram_latency(technology: Technology, params: Mapping,
                       coords: tuple) -> Dict[str, float]:
    sram = _sram_for(technology, params)
    vdd = float(coords[0])
    return {
        "read_latency": sram.read_latency(vdd),
        "write_latency": sram.write_latency(vdd),
        "read_energy": sram.read_energy(vdd),
        "write_energy": sram.write_energy(vdd),
        "leakage": sram.total_leakage_power(vdd),
    }


def _eval_sram_handshake(technology: Technology, params: Mapping,
                         coords: tuple) -> Dict[str, float]:
    from repro.sram.sram import operation_metrics, run_handshake_protocol

    vdd = float(coords[0])
    _, write_record, read_record = run_handshake_protocol(
        technology, _sram_config(technology, params), vdd=vdd,
        address=int(params.get("address", 3)),
        value=int(params.get("value", 0b10110101)))
    write = operation_metrics(write_record)
    read = operation_metrics(read_record)
    return {
        "write_latency": write["latency"],
        "write_energy": write["energy"],
        "read_latency": read["latency"],
        "read_energy": read["energy"],
        "phases": write["phases"] + read["phases"],
    }


def _eval_dualrail_counter(technology: Technology, params: Mapping,
                           coords: tuple) -> Dict[str, float]:
    from repro.power.supply import ConstantSupply
    from repro.selftimed.counter import run_dualrail_scenario

    vdd = float(coords[0])
    run = run_dualrail_scenario(technology, ConstantSupply(vdd),
                                int(params.get("steps", 4)),
                                width=int(params.get("width", 2)))
    return run.metrics()


def _eval_charge_to_digital(technology: Technology, params: Mapping,
                            coords: tuple) -> Dict[str, float]:
    from repro.sensors.charge_to_digital import (ChargeToDigitalConverter,
                                                 conversion_metrics)

    converter = ChargeToDigitalConverter(
        technology,
        sampling_capacitance=float(params.get("capacitance_pf", 20.0)) * 1e-12,
        counter_width=int(params.get("counter_width", 10)))
    row = conversion_metrics(converter, float(coords[0]))
    if row["count"] == 0.0:
        # 0/0 below threshold; NaN would poison bit-identity comparisons
        # and strict-JSON campaign payloads.
        row["charge_per_count"] = 0.0
    return row


def _eval_harvester_power(technology: Technology, params: Mapping,
                          coords: tuple) -> Dict[str, float]:
    from repro.power.harvester import make_harvester

    kind = str(params.get("kind", "vibration"))
    seed = int(params.get("seed", 7))
    t = float(coords[0])
    # Fresh instances per point: ``available_power`` advances the
    # harvester's seeded random walk, so sharing one instance would make
    # the row depend on evaluation order.
    available = make_harvester(kind, seed=seed).available_power(t)
    harvested = make_harvester(kind, seed=seed).harvest(0.0, t)
    return {"available_power": available, "harvested_energy": harvested}


def _eval_queueing_point(technology: Technology, params: Mapping,
                         coords: tuple) -> Dict[str, float]:
    from repro.core.stochastic import PowerLatencyModel, operating_point_metrics

    model = PowerLatencyModel(
        arrival_rate=float(params.get("arrival_rate", 900.0)),
        service_rate=float(params.get("service_rate", 100.0)),
        static_power_per_server=float(params.get("static_power", 1e-6)),
        dynamic_power_per_server=float(params.get("dynamic_power", 10e-6)))
    return operating_point_metrics(model, float(coords[0]))


def _eval_adaptive_loop(technology: Technology, params: Mapping,
                        coords: tuple) -> Dict[str, float]:
    from repro.core.power_adaptive import loop_metrics, run_fig3_loop

    controller = run_fig3_loop(
        technology, bool(params.get("adaptive", True)),
        run_seconds=float(coords[0]),
        harvester_seed=int(params.get("harvester_seed", 21)))
    return loop_metrics(controller)


def _eval_mc_gate(technology: Technology, params: Mapping,
                  coords: tuple) -> Dict[str, float]:
    gate = _gate_model(technology, params)
    vdd = float(params.get("vdd", 0.5))
    return {
        "delay": gate.delay(vdd),
        "energy": gate.transition_energy(vdd),
        "leakage": gate.leakage_power(vdd),
    }


def _eval_mc_sram_write(technology: Technology, params: Mapping,
                        coords: tuple) -> Dict[str, float]:
    from repro.sram.sram import SpeedIndependentSRAM, SRAMConfig

    config = SRAMConfig(rows=int(params.get("rows", 8)),
                        columns=int(params.get("columns", 4)),
                        calibrate_to_fig5=False, calibrate_energy=False)
    sram = SpeedIndependentSRAM(technology, config)
    vdd = float(params.get("vdd", 0.5))
    return {
        "write_latency": sram.write_latency(vdd),
        "write_energy": sram.write_energy(vdd),
        "read_latency": sram.read_latency(vdd),
    }


# ---------------------------------------------------------------------------
# The registry


@dataclass(frozen=True)
class PointFunction:
    """One named scenario-point evaluator the campaign layer can enumerate.

    ``kind`` fixes the :class:`~repro.analysis.runner.ExperimentPlan`
    constructor a scenario compiles to (``sweep``/``grid``/``montecarlo``)
    and therefore the calling convention; ``axes`` names the plan axes in
    order (Monte-Carlo entries have the synthetic ``sample`` axis);
    ``metrics`` lists every column :attr:`evaluate` reports.
    """

    name: str
    kind: str
    axes: Tuple[str, ...]
    metrics: Tuple[str, ...]
    evaluate: Callable[[Technology, Mapping, tuple], Dict[str, float]]
    description: str = ""
    defaults: Tuple[Tuple[str, object], ...] = field(default=())


REGISTRY: Dict[str, PointFunction] = {}


def _register(entry: PointFunction) -> PointFunction:
    if entry.name in REGISTRY:
        raise ConfigurationError(f"duplicate point function {entry.name!r}")
    if entry.kind not in ("sweep", "grid", "montecarlo"):
        raise ConfigurationError(f"unknown plan kind {entry.kind!r}")
    REGISTRY[entry.name] = entry
    return entry


_register(PointFunction(
    name="gate_metrics", kind="sweep", axes=("vdd",),
    metrics=("delay", "energy", "leakage", "frequency"),
    evaluate=_eval_gate_metrics,
    description="Single-gate delay/energy/leakage/frequency over Vdd "
                "(Fig. 1/2 space)",
    defaults=(("gate", "INVERTER"),)))

_register(PointFunction(
    name="gate_thermal", kind="grid", axes=("vdd", "temperature_k"),
    metrics=("delay", "leakage", "energy"),
    evaluate=_eval_gate_thermal,
    description="Gate metrics over the Vdd x junction-temperature plane",
    defaults=(("gate", "INVERTER"),)))

_register(PointFunction(
    name="sram_latency", kind="sweep", axes=("vdd",),
    metrics=("read_latency", "write_latency", "read_energy",
             "write_energy", "leakage"),
    evaluate=_eval_sram_latency,
    description="SI SRAM analytic latency/energy chain over Vdd (Fig. 5 "
                "space)",
    defaults=(("rows", 16), ("columns", 8))))

_register(PointFunction(
    name="sram_handshake", kind="sweep", axes=("vdd",),
    metrics=("write_latency", "write_energy", "read_latency",
             "read_energy", "phases"),
    evaluate=_eval_sram_handshake,
    description="Event-driven SI SRAM write+read handshake over Vdd "
                "(Fig. 6 space)",
    defaults=(("rows", 16), ("columns", 8))))

_register(PointFunction(
    name="dualrail_counter", kind="sweep", axes=("vdd",),
    metrics=("steps_emitted", "sequence_correct", "stalls", "finish_time",
             "energy"),
    evaluate=_eval_dualrail_counter,
    description="Dual-rail self-timed counter run on a constant rail "
                "(Fig. 4 space)",
    defaults=(("steps", 4), ("width", 2))))

_register(PointFunction(
    name="charge_to_digital", kind="sweep", axes=("voltage",),
    metrics=("count", "charge_consumed", "charge_per_count",
             "conversion_time", "final_voltage"),
    evaluate=_eval_charge_to_digital,
    description="Charge-to-digital conversion of a sampled rail voltage "
                "(Fig. 9/11 space)",
    defaults=(("capacitance_pf", 20.0), ("counter_width", 10))))

_register(PointFunction(
    name="harvester_power", kind="sweep", axes=("time_s",),
    metrics=("available_power", "harvested_energy"),
    evaluate=_eval_harvester_power,
    description="Seeded harvester power/energy at an instant (Fig. 3 "
                "input space)",
    defaults=(("kind", "vibration"), ("seed", 7))))

_register(PointFunction(
    name="queueing_point", kind="sweep", axes=("servers",),
    metrics=("utilisation", "mean_latency", "mean_queue_length", "power",
             "power_latency_product", "stable"),
    evaluate=_eval_queueing_point,
    description="M/M/c power-latency operating point over concurrency "
                "(EXT2 space)",
    defaults=(("arrival_rate", 900.0), ("service_rate", 100.0))))

_register(PointFunction(
    name="adaptive_loop", kind="sweep", axes=("run_seconds",),
    metrics=("operations", "energy_harvested", "energy_consumed",
             "average_rail_voltage", "min_stored_energy"),
    evaluate=_eval_adaptive_loop,
    description="Closed power-adaptive control loop over run length "
                "(Fig. 3 space; expensive per point)",
    defaults=(("adaptive", True), ("harvester_seed", 21))))

_register(PointFunction(
    name="mc_gate", kind="montecarlo", axes=("sample",),
    metrics=("delay", "energy", "leakage"),
    evaluate=_eval_mc_gate,
    description="Monte-Carlo process variation of one gate at a fixed Vdd "
                "(Fig. 10 space)",
    defaults=(("vdd", 0.5), ("gate", "INVERTER"))))

_register(PointFunction(
    name="mc_sram_write", kind="montecarlo", axes=("sample",),
    metrics=("write_latency", "write_energy", "read_latency"),
    evaluate=_eval_mc_sram_write,
    description="Monte-Carlo process variation of SI SRAM operation "
                "latency at a fixed Vdd",
    defaults=(("vdd", 0.5), ("rows", 8), ("columns", 4))))


def get_point_function(name: str) -> PointFunction:
    """Look up a registry entry; unknown names raise a clear error."""
    try:
        return REGISTRY[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown point function {name!r}; the registry has "
            f"{sorted(REGISTRY)}") from exc


def quantities_for(entry: PointFunction, technology_name: str,
                   params: Mapping, metrics: Optional[Tuple[str, ...]] = None
                   ) -> Dict[str, Callable]:
    """The executor-ready quantity mapping of one campaign point.

    Each value is a picklable, fingerprintable partial over primitive
    arguments; all metrics of the point share one memoised evaluation.
    """
    merged = dict(entry.defaults)
    merged.update(params)
    params_items = tuple(sorted(
        (str(k), tuple(v) if isinstance(v, list) else v)
        for k, v in merged.items()))
    chosen = tuple(metrics) if metrics else entry.metrics
    unknown = [m for m in chosen if m not in entry.metrics]
    if unknown:
        raise ConfigurationError(
            f"point function {entry.name!r} has no metrics {unknown}; "
            f"it reports {list(entry.metrics)}")
    if entry.kind == "montecarlo":
        return {metric: partial(_mc_point_value, entry.name, metric,
                                params_items)
                for metric in chosen}
    return {metric: partial(_point_value, entry.name, metric,
                            technology_name, params_items)
            for metric in chosen}
