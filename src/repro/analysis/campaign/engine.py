"""Campaign execution through the Session front door.

:func:`run_campaign` submits every planned run of a
:class:`~repro.analysis.campaign.spec.CompiledCampaign` to one
:class:`~repro.analysis.session.Session` and gathers the results in
plan order.  Going through ``Session.submit()/gather()`` — rather than a
private loop — is the whole point: campaigns inherit the executor stack
as configured (process pool, batched kernels, persistent
:class:`~repro.analysis.cache.ResultCache`, distrib fleet sharding)
without any campaign-specific plumbing, and a re-run of the same
campaign against a warm cache answers from disk, which is what makes a
campaign *resumable*: kill it halfway, run it again, and only the
missing plans evaluate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.campaign.spec import CompiledCampaign, PlannedRun
from repro.analysis.runner import ExperimentResult

__all__ = ["CampaignResult", "run_campaign"]


@dataclass(frozen=True)
class CampaignResult:
    """Every planned run's result, in plan order, plus campaign provenance."""

    campaign: CompiledCampaign
    results: Tuple = ()
    wall_time_s: float = 0.0

    @property
    def point_count(self) -> int:
        """Total evaluated scenario points."""
        return sum(result.plan.point_count for result in self.results)

    def run_for(self, label: str) -> ExperimentResult:
        """The result of the planned run labelled *label*."""
        from repro.errors import ConfigurationError

        for run, result in zip(self.campaign.runs, self.results):
            if run.label == label:
                return result
        labels = [run.label for run in self.campaign.runs]
        raise ConfigurationError(f"no planned run {label!r}; campaign has "
                                 f"{labels}")

    def values(self) -> List[Dict[str, List[float]]]:
        """Per-run value mappings, in plan order (the determinism payload)."""
        return [result.values for result in self.results]

    def summary(self) -> Dict[str, object]:
        """JSON-able provenance: geometry, executors, cache economics."""
        executors = sorted({result.provenance.executor
                            for result in self.results})
        persistent_hits = sum(getattr(result.provenance, "persistent_hits", 0)
                              for result in self.results)
        persistent_misses = sum(
            getattr(result.provenance, "persistent_misses", 0)
            for result in self.results)
        return {
            **self.campaign.describe(),
            "evaluated_points": self.point_count,
            "executors": executors,
            "persistent_hits": persistent_hits,
            "persistent_misses": persistent_misses,
            "wall_time_s": self.wall_time_s,
        }


def run_campaign(campaign: CompiledCampaign, session,
                 runs: Optional[Sequence[PlannedRun]] = None
                 ) -> CampaignResult:
    """Execute *campaign* on *session*; results come back in plan order.

    All runs are submitted up front — the session's thread pool overlaps
    them up to its ``max_inflight`` bound, and with a distrib backend the
    shards of different runs interleave across the fleet — then gathered
    in declaration order so the result list always aligns with
    ``campaign.runs`` regardless of completion order.
    """
    chosen = campaign.runs if runs is None else tuple(runs)
    started = time.perf_counter()
    handles = [session.submit(run.plan, run.quantities) for run in chosen]
    results = session.gather(*handles)
    wall = time.perf_counter() - started
    return CampaignResult(campaign=campaign, results=tuple(results),
                          wall_time_s=wall)
