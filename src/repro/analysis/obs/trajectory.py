"""The benchmark perf trajectory: a tracked history + a regression gate.

``BENCH_ci.json`` (the pytest-benchmark artifact CI uploads) is a
snapshot: one commit's timings, thrown away with the workflow run.
This module turns those snapshots into a *trajectory* — a committed
``BENCH_history.jsonl`` where each line is one benchmark's timing at one
commit — and gates new snapshots against it, so a hot-path regression
has to be *deliberate* (the ``--allow`` escape hatch, mirroring the
golden-figure recalibration policy) rather than silent.

The format, one JSON object per line (append-only, git-merge friendly)::

    {"benchmark": "test_fig07_write_latency_mc_batched_speedup",
     "median_s": 0.0123, "sha": "767e09c", "date": "2026-08-08",
     "extra": {"speedup_vs_per_point": 57.2}}

* ``benchmark`` — the pytest-benchmark ``name`` (the benchmark id).
* ``median_s`` — the run's median wall time in seconds (the gate's
  signal; medians resist the outlier noise CI runners inject).
* ``sha`` / ``date`` — provenance: the commit and the run date.
* ``extra`` — the benchmark's ``extra_info`` verbatim (batched
  speedups, per-plan overheads, ...) so the dashboard can plot more
  than wall time; never consulted by the gate.

**The gate policy.**  For every benchmark in a new snapshot that also
has history, the baseline is the median of the trailing
:data:`DEFAULT_TRAILING` recorded ``median_s`` values (a trailing
median, so one historic outlier cannot poison the baseline).  A new
median more than ``threshold`` (default 20%) above baseline is a
regression and fails the gate — unless the benchmark id was explicitly
allowed (``--allow ID``, for deliberate recalibrations: commit the
slowdown, append the new timing, and the baseline follows).  A
benchmark with *no* history is never an error: new benchmarks enter the
trajectory by being appended, not by being gated.

CLI (both also reachable as ``python -m repro obs {append,check}``)::

    python scripts/bench_trajectory.py BENCH_ci.json        # append
    python scripts/check_bench_regression.py BENCH_ci.json  # gate
"""

from __future__ import annotations

import json
import statistics
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_HISTORY",
    "DEFAULT_THRESHOLD",
    "DEFAULT_TRAILING",
    "Regression",
    "TrajectoryPoint",
    "append_history",
    "baseline_for",
    "check_regressions",
    "current_sha",
    "ingest_report",
    "load_history",
    "main_append",
    "main_check",
]

#: The tracked trajectory file at the repository root.
DEFAULT_HISTORY = "BENCH_history.jsonl"

#: Regression threshold: fail when ``new > baseline * (1 + threshold)``.
DEFAULT_THRESHOLD = 0.20

#: Trailing window: the baseline is the median of the last N entries.
DEFAULT_TRAILING = 5


@dataclass(frozen=True)
class TrajectoryPoint:
    """One benchmark's timing at one commit — one history line."""

    benchmark: str
    median_s: float
    sha: str = "unknown"
    date: str = ""
    extra: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {"benchmark": self.benchmark, "median_s": self.median_s,
                "sha": self.sha, "date": self.date, "extra": self.extra}


@dataclass(frozen=True)
class Regression:
    """One gate verdict: a benchmark's new median against its baseline."""

    benchmark: str
    baseline_s: float
    new_s: float
    allowed: bool = False

    @property
    def ratio(self) -> float:
        """``new / baseline`` — 1.25 means 25% slower."""
        return self.new_s / self.baseline_s


def current_sha(default: str = "unknown") -> str:
    """The short git SHA of HEAD, or *default* outside a checkout."""
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return default
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else default


def ingest_report(report: Dict[str, object],
                  sha: Optional[str] = None,
                  date: Optional[str] = None) -> List[TrajectoryPoint]:
    """pytest-benchmark JSON → one :class:`TrajectoryPoint` per benchmark.

    Reads each entry's ``stats.median`` and ``extra_info``; entries
    without a median (malformed, or ``--benchmark-disable`` runs) are
    skipped rather than fatal, so a partial report still appends what it
    measured.
    """
    sha = current_sha() if sha is None else sha
    if date is None:
        date = time.strftime("%Y-%m-%d", time.gmtime())
    points = []
    for bench in report.get("benchmarks", []):
        name = bench.get("name")
        median = bench.get("stats", {}).get("median")
        if not name or not isinstance(median, (int, float)) or median <= 0:
            continue
        points.append(TrajectoryPoint(
            benchmark=str(name), median_s=float(median), sha=sha, date=date,
            extra=dict(bench.get("extra_info") or {})))
    return points


def append_history(path, points: Iterable[TrajectoryPoint]) -> int:
    """Append *points* as JSONL lines; returns how many were written."""
    path = Path(path)
    count = 0
    with path.open("a", encoding="utf-8") as handle:
        for point in points:
            handle.write(json.dumps(point.as_dict(), sort_keys=True) + "\n")
            count += 1
    return count


def load_history(path) -> List[TrajectoryPoint]:
    """Read a trajectory file, skipping blank or unparsable lines.

    Tolerance matters here: the file is hand-mergeable and append-only,
    so one mangled line (a conflict marker, a truncated append) must not
    take the whole gate — or the dashboard — down with it.
    """
    path = Path(path)
    if not path.exists():
        return []
    points = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            raw = json.loads(line)
            point = TrajectoryPoint(
                benchmark=str(raw["benchmark"]),
                median_s=float(raw["median_s"]),
                sha=str(raw.get("sha", "unknown")),
                date=str(raw.get("date", "")),
                extra=dict(raw.get("extra") or {}))
        except (ValueError, KeyError, TypeError):
            continue
        if point.median_s > 0:
            points.append(point)
    return points


def baseline_for(history: Sequence[TrajectoryPoint], benchmark: str,
                 trailing: int = DEFAULT_TRAILING) -> Optional[float]:
    """The trailing-median baseline for one benchmark, or ``None``.

    File order is history order (append-only), so "trailing" means the
    last *trailing* lines recorded for this benchmark id.
    """
    medians = [point.median_s for point in history
               if point.benchmark == benchmark]
    if not medians:
        return None
    return statistics.median(medians[-max(1, trailing):])


def check_regressions(history: Sequence[TrajectoryPoint],
                      new_points: Sequence[TrajectoryPoint],
                      threshold: float = DEFAULT_THRESHOLD,
                      trailing: int = DEFAULT_TRAILING,
                      allow: Sequence[str] = (),
                      ) -> Tuple[List[Regression], List[str]]:
    """Gate *new_points* against *history*.

    Returns ``(regressions, unbaselined)``: every benchmark whose new
    median exceeds its trailing-median baseline by more than
    *threshold* (flagged ``allowed`` when its id is in *allow*), and
    the ids that had no history to gate against (informational only —
    never a failure).
    """
    allowed = set(allow)
    regressions: List[Regression] = []
    unbaselined: List[str] = []
    for point in new_points:
        baseline = baseline_for(history, point.benchmark, trailing=trailing)
        if baseline is None:
            unbaselined.append(point.benchmark)
            continue
        if point.median_s > baseline * (1.0 + threshold):
            regressions.append(Regression(
                benchmark=point.benchmark, baseline_s=baseline,
                new_s=point.median_s,
                allowed=point.benchmark in allowed))
    return regressions, unbaselined


# ---------------------------------------------------------------------------
# CLI entry points (wrapped by scripts/ and by `python -m repro obs`)


def _load_report(json_path: str) -> Dict[str, object]:
    with open(json_path, encoding="utf-8") as handle:
        return json.load(handle)


def main_append(argv: Optional[Sequence[str]] = None) -> int:
    """``bench_trajectory.py``: append one snapshot to the history."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Append a pytest-benchmark JSON snapshot to the "
                    "committed perf trajectory (BENCH_history.jsonl).")
    parser.add_argument("json_path", help="pytest-benchmark JSON file "
                                          "(the BENCH_ci.json artifact)")
    parser.add_argument("--history", default=DEFAULT_HISTORY, metavar="FILE",
                        help=f"trajectory file (default: {DEFAULT_HISTORY})")
    parser.add_argument("--sha", default=None,
                        help="commit id to record (default: git HEAD)")
    parser.add_argument("--date", default=None, metavar="YYYY-MM-DD",
                        help="run date to record (default: today, UTC)")
    args = parser.parse_args(argv)

    points = ingest_report(_load_report(args.json_path),
                           sha=args.sha, date=args.date)
    if not points:
        print(f"no benchmarks with a median in {args.json_path}; "
              "nothing appended")
        return 1
    count = append_history(args.history, points)
    print(f"appended {count} benchmark timing(s) @ {points[0].sha} "
          f"to {args.history}")
    return 0


def main_check(argv: Optional[Sequence[str]] = None) -> int:
    """``check_bench_regression.py``: the CI gate."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Fail when any benchmark in a pytest-benchmark JSON "
                    "snapshot regresses more than the threshold against "
                    "its trailing-median baseline in the committed "
                    "trajectory.")
    parser.add_argument("json_path", help="pytest-benchmark JSON file")
    parser.add_argument("--history", default=DEFAULT_HISTORY, metavar="FILE",
                        help=f"trajectory file (default: {DEFAULT_HISTORY})")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        metavar="FRAC",
                        help="tolerated slowdown fraction (default: "
                             f"{DEFAULT_THRESHOLD:g} = "
                             f"{DEFAULT_THRESHOLD:.0%})")
    parser.add_argument("--trailing", type=int, default=DEFAULT_TRAILING,
                        metavar="N",
                        help="baseline = median of the last N history "
                             f"entries (default: {DEFAULT_TRAILING})")
    parser.add_argument("--allow", action="append", default=[],
                        metavar="BENCHMARK_ID",
                        help="waive a named benchmark's regression (a "
                             "deliberate recalibration; repeatable)")
    args = parser.parse_args(argv)

    history = load_history(args.history)
    points = ingest_report(_load_report(args.json_path))
    regressions, unbaselined = check_regressions(
        history, points, threshold=args.threshold,
        trailing=args.trailing, allow=args.allow)

    flagged = {reg.benchmark for reg in regressions}
    for point in points:
        if point.benchmark in flagged or point.benchmark in unbaselined:
            continue
        baseline = baseline_for(history, point.benchmark,
                                trailing=args.trailing)
        print(f"ok       {point.benchmark}: {point.median_s * 1e3:.2f} ms "
              f"(baseline {baseline * 1e3:.2f} ms)")
    for name in unbaselined:
        print(f"NEW      {name}: no baseline in {args.history} "
              "(append to start gating it)")
    failures = 0
    for reg in regressions:
        verdict = "ALLOWED " if reg.allowed else "FAIL    "
        print(f"{verdict} {reg.benchmark}: {reg.new_s * 1e3:.2f} ms vs "
              f"baseline {reg.baseline_s * 1e3:.2f} ms "
              f"({reg.ratio:.2f}x > {1 + args.threshold:.2f}x)")
        if not reg.allowed:
            failures += 1
    if failures:
        print(f"{failures} regression(s) above the "
              f"{args.threshold:.0%} threshold — commit a fix, or waive "
              "deliberate recalibrations with --allow BENCHMARK_ID")
    elif not history:
        print(f"note: {args.history} is empty or missing — nothing gated")
    return 1 if failures else 0
