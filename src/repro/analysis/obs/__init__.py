"""Observability: the perf trajectory, its regression gate, the dashboard.

The honest-keeping layer over everything the stack already measures.
Three verbs behind ``python -m repro obs``:

====================================  ==================================
module                                role
====================================  ==================================
:mod:`~repro.analysis.obs.trajectory`  the committed perf trajectory
                                       (``BENCH_history.jsonl``): ingest
                                       pytest-benchmark snapshots,
                                       append, trailing-median baselines
                                       and the >20% regression gate with
                                       its ``--allow`` escape hatch
:mod:`~repro.analysis.obs.dashboard`   the live HTML status page over
                                       the JSON feeds (tenants,
                                       admission, fleet, cache,
                                       trajectory sparklines) — served
                                       standalone here or as
                                       ``GET /v1/dashboard`` on the
                                       experiment service
====================================  ==================================

::

    python -m repro obs append BENCH_ci.json     # snapshot → trajectory
    python -m repro obs check BENCH_ci.json      # the CI regression gate
    python -m repro obs dashboard --root ROOT    # fleet-only dashboard
    python -m repro obs --selftest

``scripts/bench_trajectory.py`` and ``scripts/check_bench_regression.py``
are thin wrappers over ``append``/``check`` for CI; the full feed and
policy reference is ``docs/observability.md``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.obs.dashboard import (  # noqa: F401 (re-exports)
    DashboardServer,
    collect_feeds,
    render_dashboard,
    sparkline,
)
from repro.analysis.obs.trajectory import (  # noqa: F401
    DEFAULT_HISTORY,
    DEFAULT_THRESHOLD,
    DEFAULT_TRAILING,
    Regression,
    TrajectoryPoint,
    append_history,
    baseline_for,
    check_regressions,
    ingest_report,
    load_history,
)

__all__ = [
    "DEFAULT_HISTORY",
    "DEFAULT_THRESHOLD",
    "DEFAULT_TRAILING",
    "DashboardServer",
    "Regression",
    "TrajectoryPoint",
    "append_history",
    "baseline_for",
    "check_regressions",
    "collect_feeds",
    "ingest_report",
    "load_history",
    "main",
    "render_dashboard",
    "sparkline",
]


def _selftest() -> int:
    """Trajectory round trip + gate verdicts + a full page render."""
    import json
    import tempfile
    from pathlib import Path

    failures = 0

    def check(label: str, ok: bool) -> None:
        nonlocal failures
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
        if not ok:
            failures += 1

    print("obs selftest")

    def report(median_s: float) -> dict:
        return {"benchmarks": [{
            "name": "test_spark", "stats": {"median": median_s},
            "extra_info": {"speedup_vs_per_point": 42.0}}]}

    with tempfile.TemporaryDirectory() as tmp:
        history_path = Path(tmp) / "BENCH_history.jsonl"
        for median in (0.100, 0.102, 0.098):
            points = ingest_report(report(median), sha="s", date="d")
            append_history(history_path, points)
        history = load_history(history_path)
        check("append/load round-trips every line",
              len(history) == 3 and history[0].median_s == 0.100
              and history[-1].extra["speedup_vs_per_point"] == 42.0)
        baseline = baseline_for(history, "test_spark")
        check("baseline is the trailing median", baseline == 0.100)

        fast = ingest_report(report(0.090), sha="s", date="d")
        slow = ingest_report(report(0.150), sha="s", date="d")
        unknown = ingest_report({"benchmarks": [
            {"name": "test_new", "stats": {"median": 1.0}}]},
            sha="s", date="d")
        check("an improvement passes the gate",
              check_regressions(history, fast) == ([], []))
        regressions, _ = check_regressions(history, slow)
        check("a >20% regression fails the gate",
              len(regressions) == 1 and not regressions[0].allowed
              and abs(regressions[0].ratio - 1.5) < 1e-9)
        allowed, _ = check_regressions(history, slow,
                                       allow=["test_spark"])
        check("--allow waives a deliberate recalibration",
              len(allowed) == 1 and allowed[0].allowed)
        check("a benchmark without history is reported, not failed",
              check_regressions(history, unknown)[0] == []
              and check_regressions(history, unknown)[1] == ["test_new"])

        page = render_dashboard(
            service={"scheduler": {"scheduler": "vtc", "depth": 1,
                                   "queued_by_tenant": {"alice": 1},
                                   "virtual_time": {"alice": 8.0}},
                     "admission": {"admitted": 3, "rejected": 0,
                                   "max_depth": 64, "max_cost": None,
                                   "drain_rate_cost_per_s": 5.0},
                     "tenants": {"alice": {"submitted": 3, "completed": 2,
                                           "failed": 0}},
                     "plans": {"queued": 1, "running": 0, "done": 2,
                               "failed": 0}},
            fleet={"jobs": 1, "queue_depth": 2, "leased": 1,
                   "oldest_unclaimed_age_s": 4.2, "workers": [],
                   "workers_skipped": 0},
            cache={"root": tmp, "mode": "rw", "current_salt": "abc",
                   "salts": {}, "session": {"hits": 5, "misses": 1,
                                            "writes": 1}},
            trajectory=history)
        check("the page renders all five sections",
              all(f'id="{section}"' in page for section in
                  ("tenants", "admission", "fleet", "cache",
                   "trajectory")))
        check("the trajectory renders as an inline-SVG sparkline",
              '<svg class="spark"' in page and "test_spark" in page)
        check("a feed-less page still renders every section",
              all(f'id="{section}"' in render_dashboard()
                  for section in ("tenants", "admission", "fleet",
                                  "cache", "trajectory")))
        check("history loading skips torn lines",
              (history_path.write_text(
                  history_path.read_text() + "{torn\n"),
               len(load_history(history_path)))[1] == 3)
        check("JSONL lines are valid JSON objects",
              all(isinstance(json.loads(line), dict) for line in
                  history_path.read_text().splitlines()[:3]))

    print("selftest:", "PASS" if failures == 0 else f"{failures} FAILURES")
    return 0 if failures == 0 else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro obs`` — dispatch append/check/dashboard."""
    import sys

    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "append":
        from repro.analysis.obs.trajectory import main_append

        return main_append(argv[1:])
    if argv and argv[0] == "check":
        from repro.analysis.obs.trajectory import main_check

        return main_check(argv[1:])
    if argv and argv[0] == "dashboard":
        from repro.analysis.obs.dashboard import main_dashboard

        return main_dashboard(argv[1:])
    if argv and argv[0] == "--selftest":
        return _selftest()
    print("usage: python -m repro obs {append,check,dashboard} [...] "
          "| --selftest\n"
          "  append BENCH.json      append a pytest-benchmark snapshot "
          "to BENCH_history.jsonl\n"
          "  check BENCH.json       gate a snapshot against the "
          "trailing-median baseline\n"
          "  dashboard [--root R]   serve the live HTML dashboard "
          "(--out FILE renders once)\n"
          "  --selftest             trajectory/gate/dashboard smoke "
          "checks",
          file=sys.stderr if argv else sys.stdout)
    return 2 if argv else 0
