"""``python -m repro.analysis.obs`` — thin alias of the package CLI."""

import sys

# Under ``python -m`` the package executes as ``__main__`` while imports
# resolve to ``repro.analysis.obs``; dispatch to the canonical copy,
# matching the package's other CLIs.
from repro.analysis.obs import main

if __name__ == "__main__":
    sys.exit(main())
