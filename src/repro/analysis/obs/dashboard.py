"""One pane of glass over the stack's operational feeds (stdlib HTML).

Every layer already speaks JSON — the experiment service's ``GET
/v1/status``, ``distrib status --json``, ``cache --stats --json``, and
the committed ``BENCH_history.jsonl`` trajectory.  This module renders
those feeds into **one auto-refreshing HTML page** with nothing beyond
the standard library (the same idiom as
:class:`~repro.analysis.objstore.FakeObjectServer`: a threaded stdlib
HTTP server, no templates, no JavaScript frameworks — the page is plain
HTML + inline SVG sparklines, refreshed by a ``<meta>`` tag).

Two ways to serve it:

* **From the experiment service** — ``GET /v1/dashboard`` on a running
  ``python -m repro serve start`` renders the service's own
  :meth:`~repro.analysis.serve.service.ExperimentService.status` payload
  (tenants, scheduler, admission, plus the cache/distrib feeds the
  session carries) and the trajectory file next to the server.
* **Standalone, fleet-only** — ``python -m repro obs dashboard --root
  ROOT`` watches a distrib root (and optionally a cache root, a
  trajectory file, or a remote service URL) without requiring the
  service at all: the fleet-operator view.

The page always renders all five sections — tenants, admission, fleet,
cache, trajectory — marking a feed that is absent or unreadable as
*unavailable* rather than dropping the section, so a half-lit dashboard
still shows the operator what is dark.  Section ids (``#tenants``,
``#admission``, ``#fleet``, ``#cache``, ``#trajectory``) are stable:
tests and deep links rely on them.
"""

from __future__ import annotations

import html
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.obs.trajectory import (
    DEFAULT_HISTORY,
    TrajectoryPoint,
    load_history,
)

__all__ = [
    "DEFAULT_DASHBOARD_PORT",
    "DashboardServer",
    "collect_feeds",
    "render_dashboard",
    "sparkline",
]

#: Default standalone-dashboard port (next to the service's 9210).
DEFAULT_DASHBOARD_PORT = 9211

#: Sparklines plot at most this many trailing points per benchmark.
SPARK_POINTS = 60

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 1.5rem; color: #222; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem;
border-bottom: 1px solid #ddd; padding-bottom: .2rem; }
table { border-collapse: collapse; margin: .4rem 0; }
td, th { padding: .15rem .6rem; text-align: left; font-size: .85rem; }
th { color: #666; font-weight: 600; }
tr:nth-child(even) td { background: #f7f7f7; }
.unavailable { color: #999; font-style: italic; }
.bad { color: #b00020; font-weight: 600; } .ok { color: #1a7f37; }
svg.spark { vertical-align: middle; }
.meta { color: #888; font-size: .75rem; margin-top: 2rem; }
"""


def _esc(value: object) -> str:
    return html.escape(str(value))


def _fmt(value: object, digits: int = 3) -> str:
    """Numbers compactly, everything else escaped verbatim."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return _esc(value)
    if isinstance(value, int):
        return str(value)
    return f"{value:.{digits}g}"


def sparkline(values: Sequence[float], width: int = 140,
              height: int = 26) -> str:
    """Inline-SVG sparkline of *values* (oldest → newest), last point dotted.

    A flat series draws a midline; fewer than two points draw a single
    dot — callers never need to special-case short histories.
    """
    values = list(values)[-SPARK_POINTS:]
    if not values:
        return '<span class="unavailable">no data</span>'
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    pad = 3
    xs = ([pad + index * (width - 2 * pad) / max(1, len(values) - 1)
           for index in range(len(values))])
    ys = [height - pad - (value - lo) * (height - 2 * pad) / span
          for value in values]
    points = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
    line = (f'<polyline points="{points}" fill="none" stroke="#4576b5" '
            'stroke-width="1.5"/>' if len(values) > 1 else "")
    dot = (f'<circle cx="{xs[-1]:.1f}" cy="{ys[-1]:.1f}" r="2.5" '
           'fill="#b04545"/>')
    return (f'<svg class="spark" width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">{line}{dot}</svg>')


def _table(rows: List[List[str]], header: Sequence[str]) -> str:
    """An HTML table from pre-rendered (already escaped) cells."""
    head = "".join(f"<th>{cell}</th>" for cell in header)
    body = "".join("<tr>" + "".join(f"<td>{cell}</td>" for cell in row)
                   + "</tr>" for row in rows)
    return f"<table><tr>{head}</tr>{body}</table>"


def _section(section_id: str, title: str, body: str) -> str:
    return (f'<section id="{section_id}"><h2>{_esc(title)}</h2>'
            f'{body}</section>')


def _unavailable(note: str) -> str:
    return f'<p class="unavailable">{_esc(note)}</p>'


# -- the five sections ------------------------------------------------------


def _tenants_section(service: Optional[Dict[str, object]]) -> str:
    if not isinstance(service, dict):
        return _section("tenants", "Tenants & scheduler", _unavailable(
            "no service feed — point the dashboard at a running "
            "`repro serve start` (GET /v1/status)"))
    scheduler = service.get("scheduler", {}) or {}
    tenants = service.get("tenants", {}) or {}
    plans = service.get("plans", {}) or {}
    queued_by = scheduler.get("queued_by_tenant", {}) or {}
    virtual = scheduler.get("virtual_time", {}) or {}
    dispatched = scheduler.get("dispatched", {}) or {}
    rows = []
    for tenant in sorted(set(tenants) | set(queued_by) | set(virtual)):
        entry = tenants.get(tenant, {})
        rows.append([
            _esc(tenant),
            _fmt(queued_by.get(tenant, 0)),
            _fmt(entry.get("submitted", 0)),
            _fmt(entry.get("completed", 0)),
            _fmt(entry.get("failed", 0)),
            _fmt(virtual.get(tenant, 0.0)),
            _fmt(dispatched.get(tenant, 0)),
        ])
    summary = (
        f"<p>scheduler <b>{_esc(scheduler.get('scheduler', '?'))}</b>, "
        f"queue depth <b>{_fmt(scheduler.get('depth', 0))}</b> "
        f"(cost {_fmt(scheduler.get('queued_cost', 0.0))}), "
        f"plans: {_fmt(plans.get('queued', 0))} queued / "
        f"{_fmt(plans.get('running', 0))} running / "
        f"{_fmt(plans.get('done', 0))} done / "
        f"{_fmt(plans.get('failed', 0))} failed, "
        f"up {_fmt(service.get('uptime_s', 0.0), 4)}s with "
        f"{_fmt(service.get('dispatchers', '?'))} dispatcher(s)</p>")
    table = (_table(rows, ["tenant", "queued", "submitted", "completed",
                           "failed", "virtual time", "dispatched"])
             if rows else _unavailable("no tenants yet"))
    return _section("tenants", "Tenants & scheduler", summary + table)


def _admission_section(service: Optional[Dict[str, object]]) -> str:
    if not isinstance(service, dict):
        return _section("admission", "Admission gate",
                        _unavailable("no service feed"))
    gate = service.get("admission", {}) or {}
    rejected = gate.get("rejected", 0)
    state = ('<span class="bad">shedding</span>' if rejected else
             '<span class="ok">open</span>')
    rows = [[
        state,
        _fmt(gate.get("admitted", 0)),
        _fmt(rejected),
        _fmt(gate.get("max_depth", "?")),
        _fmt(gate.get("max_cost", "∞") if gate.get("max_cost") is not None
             else "∞"),
        _fmt(gate.get("drain_rate_cost_per_s", 0.0)),
    ]]
    return _section("admission", "Admission gate", _table(
        rows, ["state", "admitted", "rejected", "depth watermark",
               "cost watermark", "drain rate (cost/s, EMA)"]))


def _fleet_section(fleet: Optional[Dict[str, object]]) -> str:
    if not isinstance(fleet, dict) or "error" in fleet:
        note = (f"fleet feed error: {fleet['error']}"
                if isinstance(fleet, dict) else
                "no distrib feed — pass --root ROOT (the shared fleet "
                "root `distrib status --json` reads)")
        return _section("fleet", "Distrib fleet", _unavailable(note))
    oldest = fleet.get("oldest_unclaimed_age_s")
    oldest_cell = ("—" if oldest is None else
                   f'<span class="{"bad" if oldest > 60 else "ok"}">'
                   f"{oldest:.1f}s</span>")
    rows = [[
        _fmt(fleet.get("jobs", 0)),
        _fmt(fleet.get("queue_depth", 0)),
        _fmt(fleet.get("leased", 0)),
        oldest_cell,
    ]]
    body = _table(rows, ["jobs", "queue depth (claimable)", "leased",
                         "oldest unclaimed"])
    workers = fleet.get("workers")
    if isinstance(workers, list):
        worker_rows = [[_esc(info.get("worker", "?")),
                        _fmt(info.get("executed", 0)),
                        _fmt(info.get("age_s", 0.0)) + "s ago"]
                       for info in workers]
        body += (_table(worker_rows, ["worker", "shards executed",
                                      "heartbeat"])
                 if worker_rows else _unavailable("no workers present"))
        skipped = fleet.get("workers_skipped", 0)
        if skipped:
            body += (f'<p class="bad">{_fmt(skipped)} unreadable worker '
                     "presence object(s) skipped</p>")
    return _section("fleet", "Distrib fleet", body)


def _cache_section(cache: Optional[Dict[str, object]],
                   technology: Optional[Dict[str, object]] = None) -> str:
    if not isinstance(cache, dict) or "error" in cache:
        note = (f"cache feed error: {cache['error']}"
                if isinstance(cache, dict) else
                "no persistent-cache feed — pass --cache-root SPEC, or "
                "run with a cache-enabled service")
        body = _unavailable(note)
    else:
        session = cache.get("session", {}) or {}
        hits = session.get("hits", 0)
        misses = session.get("misses", 0)
        total = hits + misses
        rate = f"{hits / total:.0%}" if total else "—"
        body = (f"<p>root <code>{_esc(cache.get('root', '?'))}</code>, "
                f"mode <b>{_esc(cache.get('mode', '?'))}</b>, hit rate "
                f"<b>{rate}</b> ({_fmt(hits)} hit(s) / {_fmt(misses)} "
                f"miss(es), {_fmt(session.get('writes', 0))} write(s) "
                "this session)</p>")
        salt_rows = []
        current = cache.get("current_salt")
        for salt, entry in (cache.get("salts", {}) or {}).items():
            label = _esc(salt[:12]) + ("  (current)" if salt == current
                                       else "")
            salt_rows.append([
                label,
                _fmt(entry.get("results", 0)),
                _fmt(entry.get("result_bytes", 0)),
                _fmt(entry.get("technologies", 0)),
                _fmt(entry.get("leases", 0)),
            ])
        if salt_rows:
            body += _table(salt_rows, ["code salt", "results", "bytes",
                                       "technologies", "leases"])
    if isinstance(technology, dict):
        body += (f"<p>in-process technology cache: "
                 f"{_fmt(technology.get('entries', 0))} entr(ies), "
                 f"{_fmt(technology.get('hits', 0))} hit(s) / "
                 f"{_fmt(technology.get('misses', 0))} miss(es)</p>")
    return _section("cache", "Persistent cache", body)


def _trajectory_section(trajectory: Optional[Sequence[TrajectoryPoint]],
                        ) -> str:
    if not trajectory:
        return _section("trajectory", "Bench trajectory", _unavailable(
            "no committed trajectory — append one with "
            "`python scripts/bench_trajectory.py BENCH_ci.json`"))
    by_benchmark: Dict[str, List[TrajectoryPoint]] = {}
    for point in trajectory:
        by_benchmark.setdefault(point.benchmark, []).append(point)
    rows = []
    for name in sorted(by_benchmark):
        points = by_benchmark[name]
        medians = [point.median_s for point in points]
        latest = points[-1]
        first = medians[0]
        trend = latest.median_s / first if first > 0 else 1.0
        trend_cell = (f'<span class="{"bad" if trend > 1.2 else "ok"}">'
                      f"{trend:.2f}x</span>")
        speedup = latest.extra.get("speedup_vs_per_point")
        rows.append([
            f"<code>{_esc(name)}</code>",
            sparkline(medians),
            f"{latest.median_s * 1e3:.2f} ms",
            trend_cell,
            (f"{float(speedup):.0f}x"
             if isinstance(speedup, (int, float)) else "—"),
            _esc(latest.sha),
            _esc(latest.date),
        ])
    return _section("trajectory", "Bench trajectory", _table(
        rows, ["benchmark", "median wall time", "latest", "vs first",
               "batched speedup", "sha", "date"]))


def render_dashboard(service: Optional[Dict[str, object]] = None,
                     fleet: Optional[Dict[str, object]] = None,
                     cache: Optional[Dict[str, object]] = None,
                     trajectory: Optional[Sequence[TrajectoryPoint]] = None,
                     title: str = "repro observability",
                     refresh_s: Optional[int] = 5) -> str:
    """The full dashboard page from whichever feeds are available.

    *service* is a ``GET /v1/status`` payload (its embedded ``cache`` /
    ``distrib`` feeds are used as fallbacks for *cache* / *fleet*);
    *fleet* is a ``distrib status --json`` / ``fleet_queue_stats``
    payload; *cache* a ``cache --stats --json`` payload; *trajectory* a
    loaded ``BENCH_history.jsonl``.  ``refresh_s=None`` renders a
    static page (what ``--out`` writes).
    """
    if isinstance(service, dict):
        fleet = fleet if fleet is not None else service.get("distrib")
        cache = cache if cache is not None else service.get("cache")
    refresh = (f'<meta http-equiv="refresh" content="{int(refresh_s)}">'
               if refresh_s else "")
    technology = (service or {}).get("technology_cache") \
        if isinstance(service, dict) else None
    sections = "\n".join([
        _tenants_section(service),
        _admission_section(service),
        _fleet_section(fleet),
        _cache_section(cache, technology),
        _trajectory_section(trajectory),
    ])
    stamp = time.strftime("%Y-%m-%d %H:%M:%S UTC", time.gmtime())
    return (
        "<!DOCTYPE html>\n"
        f'<html lang="en"><head><meta charset="utf-8">{refresh}'
        f"<title>{_esc(title)}</title><style>{_STYLE}</style></head>"
        f"<body><h1>{_esc(title)}</h1>\n{sections}\n"
        f'<p class="meta">rendered {stamp}'
        + (f" · auto-refresh every {int(refresh_s)}s" if refresh_s else "")
        + " · feeds: GET /v1/status · distrib status --json · "
          "cache --stats --json · BENCH_history.jsonl</p>"
        "</body></html>\n")


# -- feed collection (the standalone CLI's data path) -----------------------


def collect_feeds(root: Optional[str] = None,
                  cache_root: Optional[str] = None,
                  history: Optional[str] = DEFAULT_HISTORY,
                  service_url: Optional[str] = None,
                  ) -> Dict[str, object]:
    """Gather whichever feeds the arguments select, swallowing feed errors.

    A dead fleet root or an unreachable service becomes an ``{"error":
    ...}`` feed (rendered as such), never an exception: the dashboard's
    job is precisely to stay up when parts of the stack are not.
    """
    feeds: Dict[str, object] = {"service": None, "fleet": None,
                                "cache": None, "trajectory": None}
    if service_url:
        from urllib.error import URLError
        from urllib.request import urlopen

        try:
            with urlopen(f"{service_url.rstrip('/')}/v1/status",
                         timeout=10) as response:
                feeds["service"] = json.loads(response.read())
        except (OSError, ValueError, URLError) as exc:
            feeds["service"] = {"error": str(exc)}
    if root:
        from repro.analysis.distrib import list_workers
        from repro.analysis.distrib import fleet_queue_stats

        try:
            fleet = fleet_queue_stats(root)
            workers = list_workers(root)
            fleet["workers"] = list(workers)
            fleet["workers_skipped"] = workers.skipped
            feeds["fleet"] = fleet
        except (OSError, ValueError) as exc:
            feeds["fleet"] = {"error": str(exc)}
    if cache_root:
        from repro.analysis.cache import ResultCache

        try:
            feeds["cache"] = ResultCache(root=cache_root, mode="ro").stats()
        except (OSError, ValueError) as exc:
            feeds["cache"] = {"error": str(exc)}
    if history:
        feeds["trajectory"] = load_history(history) or None
    return feeds


class _DashboardHandler(BaseHTTPRequestHandler):
    """Serves ``/`` by re-collecting the feeds on every request."""

    protocol_version = "HTTP/1.1"
    server_version = "ReproObsDashboard/1.0"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler convention)
        if self.path.split("?")[0].rstrip("/") not in ("", "/v1/dashboard"):
            body = b'{"error": "only / and /v1/dashboard exist here"}'
            self.send_response(404)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        collect: Callable[[], Dict[str, object]] = \
            self.server.collect  # type: ignore[attr-defined]
        feeds = collect()
        page = render_dashboard(
            service=feeds.get("service"), fleet=feeds.get("fleet"),
            cache=feeds.get("cache"), trajectory=feeds.get("trajectory"),
            title="repro fleet dashboard").encode()
        self.send_response(200)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(page)))
        self.end_headers()
        self.wfile.write(page)


class DashboardServer:
    """The standalone (fleet-only) dashboard, bound to a socket.

    Same shape as :class:`~repro.analysis.serve.http.ExperimentServer`:
    context-manager start/stop, daemon serving thread, ``url`` property.
    *collect* is called per request, so the page is always live.
    """

    def __init__(self, collect: Callable[[], Dict[str, object]],
                 host: str = "127.0.0.1",
                 port: int = DEFAULT_DASHBOARD_PORT) -> None:
        self._httpd = ThreadingHTTPServer((host, port), _DashboardHandler)
        self._httpd.daemon_threads = True
        self._httpd.collect = collect  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "DashboardServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-obs-dashboard", daemon=True)
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=10)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "DashboardServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def main_dashboard(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro obs dashboard`` — serve or render the page."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro obs dashboard",
        description="Serve (or render once with --out) the live "
                    "observability dashboard over the fleet/cache/"
                    "trajectory feeds, no experiment service required.")
    parser.add_argument("--root", default=None, metavar="ROOT",
                        help="distrib fleet root (directory or bucket "
                             "URL) to watch")
    parser.add_argument("--cache-root", default=None, metavar="SPEC",
                        help="persistent-cache root to report stats for")
    parser.add_argument("--history", default=DEFAULT_HISTORY, metavar="FILE",
                        help="bench trajectory file (default: "
                             f"{DEFAULT_HISTORY})")
    parser.add_argument("--service-url", default=None, metavar="URL",
                        help="running experiment service to include the "
                             "tenant/admission feeds from")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=DEFAULT_DASHBOARD_PORT,
                        help="bind port (default: "
                             f"{DEFAULT_DASHBOARD_PORT}; 0 picks a free "
                             "one)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="render one static page to FILE ('-' = "
                             "stdout) and exit instead of serving")
    args = parser.parse_args(argv)

    def collect() -> Dict[str, object]:
        return collect_feeds(root=args.root, cache_root=args.cache_root,
                             history=args.history,
                             service_url=args.service_url)

    if args.out is not None:
        feeds = collect()
        page = render_dashboard(
            service=feeds.get("service"), fleet=feeds.get("fleet"),
            cache=feeds.get("cache"), trajectory=feeds.get("trajectory"),
            title="repro fleet dashboard", refresh_s=None)
        if args.out == "-":
            print(page, end="")
        else:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(page)
            print(f"wrote {args.out}")
        return 0

    server = DashboardServer(collect, host=args.host, port=args.port)
    print(f"observability dashboard on {server.url} "
          f"(root={args.root or '-'}, cache={args.cache_root or '-'}, "
          f"history={args.history}, "
          f"service={args.service_url or '-'})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.stop()
    return 0
