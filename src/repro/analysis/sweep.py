"""One-dimensional parameter sweeps with named series.

Every figure the paper reports is, behaviourally, "sweep one knob (usually
Vdd) and record one or more quantities per design".  :func:`sweep` captures
that pattern once so each benchmark is a thin declaration of the knob, the
range and the quantities.  Execution is delegated to the parallel
experiment engine in :mod:`repro.analysis.runner`; pass an ``executor`` to
fan the points out over a worker pool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.analysis.runner import Executor


@dataclass
class Series:
    """One named quantity sampled over the sweep variable."""

    name: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def xs(self) -> List[float]:
        """The sweep-variable values."""
        return [x for x, _ in self.points]

    @property
    def ys(self) -> List[float]:
        """The recorded quantity values."""
        return [y for _, y in self.points]

    def _check_no_nan_ys(self) -> None:
        for x, y in self.points:
            if math.isnan(y):
                raise ConfigurationError(
                    f"series {self.name!r} has NaN at x={x!r}; a quantity "
                    "that produced NaN is a modelling bug, not a data point")

    def value_at(self, x: float) -> float:
        """Value at the sampled x nearest to *x*.

        When two sampled points are equidistant from *x* the one with the
        smaller x wins.  A NaN value at the selected point raises
        :class:`ConfigurationError` instead of propagating silently.
        """
        if not self.points:
            raise ConfigurationError(f"series {self.name!r} is empty")
        nearest_x, y = min(self.points,
                           key=lambda p: (abs(p[0] - x), p[0]))
        if math.isnan(y):
            raise ConfigurationError(
                f"series {self.name!r} has NaN at x={nearest_x!r}")
        return y

    def argmin(self) -> Tuple[float, float]:
        """The ``(x, y)`` pair with the smallest y.

        Ties on y are broken towards the smaller x; any NaN y in the series
        raises :class:`ConfigurationError` (``min()`` over NaNs would pick
        an arbitrary point depending on ordering).
        """
        if not self.points:
            raise ConfigurationError(f"series {self.name!r} is empty")
        self._check_no_nan_ys()
        return min(self.points, key=lambda p: (p[1], p[0]))

    def argmax(self) -> Tuple[float, float]:
        """The ``(x, y)`` pair with the largest y.

        Ties on y are broken towards the smaller x; any NaN y raises
        :class:`ConfigurationError`.
        """
        if not self.points:
            raise ConfigurationError(f"series {self.name!r} is empty")
        self._check_no_nan_ys()
        return max(self.points, key=lambda p: (p[1], -p[0]))


@dataclass
class SweepResult:
    """All series produced by one sweep."""

    variable: str
    xs: List[float]
    series: Dict[str, Series]

    def __getitem__(self, name: str) -> Series:
        try:
            return self.series[name]
        except KeyError as exc:
            raise ConfigurationError(f"unknown series {name!r}") from exc

    @property
    def names(self) -> List[str]:
        """Names of the recorded series."""
        return list(self.series)


def sweep(variable: str, values: Sequence[float],
          quantities: Mapping[str, Callable[[float], float]],
          executor: Optional["Executor"] = None) -> SweepResult:
    """Evaluate each quantity at each value of the sweep variable.

    ``quantities`` maps series names to single-argument callables; exceptions
    are not swallowed — a quantity that cannot be evaluated at a point is a
    modelling bug the benchmark should surface.

    Execution is delegated to :class:`repro.analysis.runner.Executor`.
    Without an explicit *executor* the sweep runs on the process-default
    :class:`~repro.analysis.session.Session` — the same technology cache
    and (when ``REPRO_CACHE_MODE``/``repro.toml`` enable one) the same
    persistent store as every other run, rather than a parallel code
    path.  Passing an executor with ``workers >= 2`` fans the points out
    over a process pool with bit-identical results.
    """
    from repro.analysis.runner import ExperimentPlan

    if not values:
        raise ConfigurationError("sweep values must not be empty")
    if not quantities:
        raise ConfigurationError("at least one quantity is required")
    plan = ExperimentPlan.sweep(variable, values)
    if executor is None:
        from repro.analysis.session import default_session

        executor = default_session().executor
    return executor.run(plan, quantities).to_sweep_result()


def vdd_range(low: float, high: float, steps: int) -> List[float]:
    """Evenly spaced supply voltages, inclusive of both endpoints."""
    if steps < 2:
        raise ConfigurationError("steps must be >= 2")
    if high <= low:
        raise ConfigurationError("high must exceed low")
    return [low + (high - low) * i / (steps - 1) for i in range(steps)]
