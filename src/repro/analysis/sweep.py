"""One-dimensional parameter sweeps with named series.

Every figure the paper reports is, behaviourally, "sweep one knob (usually
Vdd) and record one or more quantities per design".  :func:`sweep` captures
that pattern once so each benchmark is a thin declaration of the knob, the
range and the quantities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass
class Series:
    """One named quantity sampled over the sweep variable."""

    name: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def xs(self) -> List[float]:
        """The sweep-variable values."""
        return [x for x, _ in self.points]

    @property
    def ys(self) -> List[float]:
        """The recorded quantity values."""
        return [y for _, y in self.points]

    def value_at(self, x: float) -> float:
        """Value at the sampled x nearest to *x*."""
        if not self.points:
            raise ConfigurationError(f"series {self.name!r} is empty")
        return min(self.points, key=lambda p: abs(p[0] - x))[1]

    def argmin(self) -> Tuple[float, float]:
        """The ``(x, y)`` pair with the smallest y."""
        if not self.points:
            raise ConfigurationError(f"series {self.name!r} is empty")
        return min(self.points, key=lambda p: p[1])

    def argmax(self) -> Tuple[float, float]:
        """The ``(x, y)`` pair with the largest y."""
        if not self.points:
            raise ConfigurationError(f"series {self.name!r} is empty")
        return max(self.points, key=lambda p: p[1])


@dataclass
class SweepResult:
    """All series produced by one sweep."""

    variable: str
    xs: List[float]
    series: Dict[str, Series]

    def __getitem__(self, name: str) -> Series:
        try:
            return self.series[name]
        except KeyError as exc:
            raise ConfigurationError(f"unknown series {name!r}") from exc

    @property
    def names(self) -> List[str]:
        """Names of the recorded series."""
        return list(self.series)


def sweep(variable: str, values: Sequence[float],
          quantities: Mapping[str, Callable[[float], float]]) -> SweepResult:
    """Evaluate each quantity at each value of the sweep variable.

    ``quantities`` maps series names to single-argument callables; exceptions
    are not swallowed — a quantity that cannot be evaluated at a point is a
    modelling bug the benchmark should surface.
    """
    if not values:
        raise ConfigurationError("sweep values must not be empty")
    if not quantities:
        raise ConfigurationError("at least one quantity is required")
    xs = [float(v) for v in values]
    series = {name: Series(name=name) for name in quantities}
    for x in xs:
        for name, fn in quantities.items():
            series[name].points.append((x, float(fn(x))))
    return SweepResult(variable=variable, xs=xs, series=series)


def vdd_range(low: float, high: float, steps: int) -> List[float]:
    """Evenly spaced supply voltages, inclusive of both endpoints."""
    if steps < 2:
        raise ConfigurationError("steps must be >= 2")
    if high <= low:
        raise ConfigurationError("high must exceed low")
    return [low + (high - low) * i / (steps - 1) for i in range(steps)]
