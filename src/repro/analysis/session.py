"""One front door for experiment execution: ``RunConfig`` + ``Session``.

The execution stack now spans four subsystems — the pool
(:mod:`repro.analysis.runner`), the persistent cache
(:mod:`repro.analysis.cache`), the sharded fleet
(:mod:`repro.analysis.distrib`) and the object store
(:mod:`repro.analysis.objstore`) — and before this module every consumer
hand-wired ``Executor(workers=..., persistent=ResultCache(...),
distrib=DistribBackend(...))`` with its own parsing of ``auto`` workers,
cache modes and root URLs.  This module is the single place that wiring
lives:

* :class:`RunConfig` is the one source of truth for execution *policy*
  (workers, cache mode, cache root, distrib root, shard size) with one
  documented resolution chain — explicit kwargs > ``REPRO_*`` environment
  variables > an optional ``repro.toml`` > defaults;
* :class:`Session` is the facade that lazily constructs and owns the
  ``Executor``/``ResultCache``/``DistribBackend`` stack for one resolved
  config, shares one :class:`~repro.analysis.runner.TechnologyCache`
  across every run, and adds an asynchronous
  :meth:`~Session.submit`/:meth:`~Session.gather` path so many plans can
  be in flight at once.

The two-line form every example and benchmark now uses::

    from repro import Session
    from repro.analysis.runner import ExperimentPlan

    session = Session()          # config from kwargs/REPRO_*/repro.toml
    result = session.run(ExperimentPlan.sweep("vdd", [0.3, 0.5, 1.0]),
                         energy=design.energy_per_operation)

Resolution chain (first hit wins, recorded per field in
``config.sources``):

===============  ====================  ==================  =============
field            environment variable  ``repro.toml`` key  default
===============  ====================  ==================  =============
``workers``      ``REPRO_WORKERS``     ``workers``         ``0`` (serial)
``cache_mode``   ``REPRO_CACHE_MODE``  ``cache_mode``      ``"off"``
``cache_root``   ``REPRO_CACHE_DIR``   ``cache_root``      ``None`` (= ``./.repro_cache``)
``distrib_root`` ``REPRO_DISTRIB_ROOT`` ``distrib_root``   ``None`` (no fleet)
``shard_size``   ``REPRO_SHARD_SIZE``  ``shard_size``      ``4``
===============  ====================  ==================  =============

``workers`` accepts ``"auto"`` (= the CPUs *available* to the process:
``os.sched_getaffinity(0)`` where the platform has it, ``os.cpu_count()``
otherwise) anywhere a value is given; the root specs accept a directory
path, an object-store bucket URL
(``http://host:port/bucket``) or the benchmark CLI's ``fs`` / ``obj:URL``
spellings.  The config file is ``./repro.toml`` (overridable through
``$REPRO_CONFIG`` or the ``config_file`` argument), read with the stdlib
``tomllib`` (Python >= 3.11; on older interpreters a present config file
is a :class:`~repro.errors.ConfigurationError` rather than a silent
ignore), keys under a ``[run]`` table::

    [run]
    workers = "auto"
    cache_mode = "rw"
    distrib_root = "http://store:9199/fleet"

Concurrency model: :meth:`Session.run` is synchronous;
:meth:`Session.submit` returns a :class:`RunHandle` backed by a small
thread pool, so several plans execute concurrently — with a distrib root
attached, shards from *different* plans interleave across the fleet.
Values are independent of the path taken (the engine's seeding and
ordering contract), so ``run``, ``submit`` and a serial executor all
return bit-identical results; only the provenance's cache *counters* are
approximate while runs overlap, because they are deltas against the one
shared technology cache.

``python -m repro.analysis.session --selftest`` checks the resolution
precedence and the run/submit bit-identity; the consolidated CLI
(``python -m repro``) builds on this module for its ``run`` and
``selftest`` subcommands.
"""

from __future__ import annotations

import concurrent.futures
import os
import threading
from dataclasses import dataclass, field, fields as dataclass_fields, replace
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.cache import CACHE_DIR_ENV, CACHE_MODES, ResultCache
from repro.analysis.runner import (
    Executor,
    ExperimentPlan,
    ExperimentResult,
    TechnologyCache,
    # The runner selftest's own quantities, so this module's "matches
    # the serial executor bit for bit" checks pin the same physics.
    _selftest_delay,
    _selftest_energy,
)
from repro.errors import ConfigurationError

try:  # Python >= 3.11; gated, never a hard dependency
    import tomllib
except ImportError:  # pragma: no cover - exercised only on 3.10
    tomllib = None

__all__ = [
    "CONFIG_FILE_ENV",
    "DEFAULT_CONFIG_FILENAME",
    "RunConfig",
    "RunHandle",
    "Session",
    "default_session",
    "reset_default_session",
]

#: Environment variable naming the config file (default: ``./repro.toml``).
CONFIG_FILE_ENV = "REPRO_CONFIG"
#: Config file picked up from the working directory when present.
DEFAULT_CONFIG_FILENAME = "repro.toml"

#: field name -> environment variable of the resolution chain.
_ENV_VARS = {
    "workers": "REPRO_WORKERS",
    "cache_mode": "REPRO_CACHE_MODE",
    "cache_root": CACHE_DIR_ENV,
    "distrib_root": "REPRO_DISTRIB_ROOT",
    "shard_size": "REPRO_SHARD_SIZE",
}

#: Default points per shard; mirrored from the distrib module without
#: importing it (sessions without a distrib root never import distrib).
_DEFAULT_SHARD_SIZE = 4


@dataclass(frozen=True)
class RunConfig:
    """Execution policy: everything a :class:`Session` needs to wire up.

    Pure data — no executor, cache or backend objects live here, so a
    config can be resolved once and shared, logged, or compared.  Build
    through :meth:`resolve` (the documented kwargs > environment >
    ``repro.toml`` > defaults chain) rather than the raw constructor;
    the constructor validates but does not parse (``workers`` must
    already be an int, not ``"auto"``).
    """

    #: Pool size; 0/1 = the deterministic serial path.
    workers: int = 0
    #: Persistent-cache mode: ``off`` (no cache), ``rw``, ``ro``.
    cache_mode: str = "off"
    #: Persistent-cache root spec: a directory, a bucket URL, or ``None``
    #: for the cache's own default (``./.repro_cache``).
    cache_root: Optional[str] = None
    #: Shared fleet root (directory or bucket URL); ``None`` = no fleet.
    distrib_root: Optional[str] = None
    #: Points per distrib shard.
    shard_size: int = _DEFAULT_SHARD_SIZE
    #: field name -> where its value came from (``"kwargs"``,
    #: ``"env REPRO_X"``, ``"file <path>"`` or ``"default"``); filled in
    #: by :meth:`resolve`, informational only.
    sources: Mapping[str, str] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.workers, int) or self.workers < 0:
            raise ConfigurationError(
                f"workers must be an int >= 0, got {self.workers!r} "
                "(use RunConfig.resolve() to parse 'auto')")
        if self.cache_mode not in CACHE_MODES:
            raise ConfigurationError(
                f"unknown cache mode {self.cache_mode!r}; "
                f"choose from {CACHE_MODES}")
        if not isinstance(self.shard_size, int) or self.shard_size < 1:
            raise ConfigurationError(
                f"shard_size must be an int >= 1, got {self.shard_size!r}")

    def __cache_fingerprint__(self) -> str:
        # Execution policy must never leak into result content keys: the
        # same plan run serial, pooled or distributed is the same result.
        return type(self).__name__

    # -- field parsers (shared with the benchmark and repro CLIs) ----------

    @staticmethod
    def available_cpus() -> int:
        """CPUs actually available to this process, not just installed.

        Prefers ``os.sched_getaffinity(0)`` where the platform has it:
        under cgroup/taskset-restricted containers ``os.cpu_count()``
        reports the whole machine while the scheduler only ever grants
        the affinity mask, and sizing the fork pool to the machine count
        oversubscribes the mask.  Falls back to ``os.cpu_count()`` on
        platforms without affinity support (macOS, Windows).
        """
        affinity = getattr(os, "sched_getaffinity", None)
        if affinity is not None:
            try:
                return max(1, len(affinity(0)))
            except OSError:
                pass
        return os.cpu_count() or 1

    @staticmethod
    def parse_workers(value) -> int:
        """``auto`` -> :meth:`available_cpus`; otherwise a non-negative int.

        The one implementation of the ``--runner-workers`` /
        ``$REPRO_WORKERS`` / ``workers=`` parsing rule (it used to be
        copied into ``benchmarks/conftest.py``).
        """
        if isinstance(value, bool):
            raise ConfigurationError(f"workers must be an int, got {value!r}")
        if isinstance(value, int):
            parsed = value
        elif isinstance(value, str):
            if value.strip().lower() == "auto":
                return RunConfig.available_cpus()
            try:
                parsed = int(value)
            except ValueError as exc:
                raise ConfigurationError(
                    f"workers must be an integer or 'auto', "
                    f"got {value!r}") from exc
        else:
            raise ConfigurationError(
                f"workers must be an integer or 'auto', got {value!r}")
        if parsed < 0:
            raise ConfigurationError(f"workers must be >= 0, got {parsed}")
        return parsed

    @staticmethod
    def parse_cache_mode(value: str) -> str:
        """Validate a persistent-cache mode (``off`` / ``rw`` / ``ro``)."""
        if value not in CACHE_MODES:
            raise ConfigurationError(
                f"cache mode must be one of {CACHE_MODES}, got {value!r}")
        return value

    @staticmethod
    def parse_root(value) -> Optional[str]:
        """Normalise a storage-root spec to what ``open_store`` accepts.

        ``None``/empty mean "unset" and return ``None`` (the resolution
        chain falls through to its next tier); ``"fs"`` is an *explicit*
        choice of the default local root and returns ``.repro_cache`` —
        so a ``--runner-cache-backend fs`` flag overrides a
        ``$REPRO_CACHE_DIR`` pointing elsewhere, as the precedence chain
        documents; ``obj:URL`` (the benchmark CLI's object-store
        spelling) unwraps and validates the URL; a bare
        ``http(s)://host:port/bucket`` URL or directory path passes
        through.  Shared by ``--runner-cache-backend``, the ``repro``
        CLI's ``--cache-root``/``--distrib-root`` and the environment
        variables.
        """
        if value is None:
            return None
        if isinstance(value, Path):
            return str(value)
        if not isinstance(value, str):
            raise ConfigurationError(
                f"storage root must be a path or URL, got {value!r}")
        spec = value.strip()
        if spec == "":
            return None
        if spec == "fs":
            from repro.analysis.cache import DEFAULT_DIRNAME

            return DEFAULT_DIRNAME
        if spec.startswith("obj:"):
            url = spec[len("obj:"):]
            if not url.startswith(("http://", "https://")):
                raise ConfigurationError(
                    "an obj: storage root needs an http(s) bucket URL "
                    f"(obj:http://HOST:PORT/BUCKET), got {value!r}")
            return url
        return spec

    @staticmethod
    def parse_shard_size(value) -> int:
        """A positive int, from an int or a decimal string."""
        try:
            parsed = int(value)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"shard_size must be an integer, got {value!r}") from exc
        if parsed < 1:
            raise ConfigurationError(f"shard_size must be >= 1, got {parsed}")
        return parsed

    # -- resolution --------------------------------------------------------

    _PARSERS = {
        "workers": "parse_workers",
        "cache_mode": "parse_cache_mode",
        "cache_root": "parse_root",
        "distrib_root": "parse_root",
        "shard_size": "parse_shard_size",
    }

    @classmethod
    def _file_settings(cls, config_file, environ) -> Tuple[Dict, Optional[str]]:
        """The ``[run]`` table of the config file, plus the path read.

        An *explicitly* named file (argument or ``$REPRO_CONFIG``) must
        exist; the implicit ``./repro.toml`` is optional;
        ``config_file=False`` disables the file tier entirely (hermetic
        resolution for selftests and tests).
        """
        if config_file is False:
            return {}, None
        explicit = config_file if config_file is not None \
            else environ.get(CONFIG_FILE_ENV)
        path = Path(explicit) if explicit else Path(DEFAULT_CONFIG_FILENAME)
        if not path.is_file():
            if explicit:
                raise ConfigurationError(f"config file {path} does not exist")
            return {}, None
        if tomllib is None:
            raise ConfigurationError(
                f"config file {path} needs tomllib (Python >= 3.11); "
                "remove the file or pass settings explicitly")
        try:
            with open(path, "rb") as handle:
                data = tomllib.load(handle)
        except tomllib.TOMLDecodeError as exc:
            raise ConfigurationError(
                f"config file {path} is not valid TOML: {exc}") from exc
        table = data.get("run", {})
        if not isinstance(table, dict):
            raise ConfigurationError(
                f"config file {path}: [run] must be a table")
        known = {f.name for f in dataclass_fields(cls)} - {"sources"}
        unknown = sorted(set(table) - known)
        if unknown:
            raise ConfigurationError(
                f"config file {path}: unknown [run] key(s) "
                f"{', '.join(unknown)}; known: {', '.join(sorted(known))}")
        return table, str(path)

    @classmethod
    def resolve(cls, config_file=None, environ=None,
                **kwargs) -> "RunConfig":
        """Build a config through the documented resolution chain.

        Per field, the first of: a non-``None`` keyword argument, the
        ``REPRO_*`` environment variable, the ``[run]`` table of
        ``repro.toml``, the dataclass default.  *environ* is injectable
        for tests (defaults to ``os.environ``); *config_file* overrides
        the ``$REPRO_CONFIG`` / ``./repro.toml`` lookup (``False``
        disables the file tier entirely).  Unknown keyword arguments are
        a :class:`~repro.errors.ConfigurationError`, not a silent
        ignore.
        """
        environ = os.environ if environ is None else environ
        known = {f.name for f in dataclass_fields(cls)} - {"sources"}
        unknown = sorted(set(kwargs) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown RunConfig field(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}")
        file_settings, file_path = cls._file_settings(config_file, environ)
        values: Dict[str, object] = {}
        sources: Dict[str, str] = {}
        for name in known:
            parser = getattr(cls, cls._PARSERS[name])
            if kwargs.get(name) is not None:
                values[name] = parser(kwargs[name])
                sources[name] = "kwargs"
            elif environ.get(_ENV_VARS[name]):
                values[name] = parser(environ[_ENV_VARS[name]])
                sources[name] = f"env {_ENV_VARS[name]}"
            elif name in file_settings:
                values[name] = parser(file_settings[name])
                sources[name] = f"file {file_path}"
            else:
                values[name] = cls.__dataclass_fields__[name].default
                sources[name] = "default"
        return cls(sources=sources, **values)

    def override(self, **kwargs) -> "RunConfig":
        """A copy with *kwargs* replaced (``None`` values ignored)."""
        changed = {name: value for name, value in kwargs.items()
                   if value is not None}
        if not changed:
            return self
        parsed = {}
        for name, value in changed.items():
            if name not in self._PARSERS:
                raise ConfigurationError(
                    f"unknown RunConfig field {name!r}")
            parsed[name] = getattr(self, self._PARSERS[name])(value)
        sources = dict(self.sources)
        sources.update({name: "kwargs" for name in parsed})
        return replace(self, sources=sources, **parsed)

    def describe(self) -> Dict[str, object]:
        """A plain-dict view (field -> value), for logging and ``--json``."""
        return {
            "workers": self.workers,
            "cache_mode": self.cache_mode,
            "cache_root": self.cache_root,
            "distrib_root": self.distrib_root,
            "shard_size": self.shard_size,
            "sources": dict(self.sources),
        }


# ---------------------------------------------------------------------------
# The facade


class RunHandle:
    """One in-flight :meth:`Session.submit`; a future over the result.

    Carries the plan and quantity names for introspection while the run
    executes on the session's thread pool.  :meth:`result` blocks (and
    re-raises whatever the run raised); :meth:`done` polls.
    """

    def __init__(self, plan: ExperimentPlan, names: Tuple[str, ...],
                 future: "concurrent.futures.Future") -> None:
        self.plan = plan
        self.names = names
        self._future = future

    def done(self) -> bool:
        """Whether the run has finished (successfully or not)."""
        return self._future.done()

    def result(self, timeout: Optional[float] = None) -> ExperimentResult:
        """Block until the run finishes and return its result."""
        return self._future.result(timeout)

    def exception(self, timeout: Optional[float] = None):
        """The exception the run raised, or ``None``."""
        return self._future.exception(timeout)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        state = "done" if self.done() else "running"
        return (f"RunHandle({self.plan.kind}, {len(self.names)} "
                f"quantities, {state})")


# repro: allow[R4] -- a live Session (executor pool, caches) must never
# cross a process boundary; pickling fails loudly at submit()
class Session:
    """The facade owning one resolved config's execution stack.

    Construction is cheap and lazy: the
    :class:`~repro.analysis.runner.Executor`, the persistent
    :class:`~repro.analysis.cache.ResultCache` and the
    :class:`~repro.analysis.distrib.DistribBackend` are built on first
    use, from the session's :class:`RunConfig`; one
    :class:`~repro.analysis.runner.TechnologyCache` is shared by every
    run the session executes (and preloaded from the persistent store
    when one is attached).

    Either pass a ready :class:`RunConfig` or field overrides that feed
    :meth:`RunConfig.resolve`::

        Session()                          # env / repro.toml / defaults
        Session(workers="auto")            # kwargs beat env beat file
        Session(config)                    # a pre-resolved config

    ``run`` executes synchronously; ``submit`` returns a
    :class:`RunHandle` and executes on a small thread pool so many plans
    are in flight at once (with a distrib root, their shards interleave
    across the fleet).  Serial, pooled and submitted runs of the same
    plan are bit-identical — the engine's ordering/seeding contract —
    so which path a session takes is pure policy.  Sessions are context
    managers; :meth:`close` drains the thread pool.
    """

    #: Concurrent in-flight submits; beyond this, submits queue.  The
    #: intra-plan parallelism is the executor's (workers / the fleet),
    #: so a small constant suffices to keep a fleet saturated with
    #: shards from several plans.
    MAX_INFLIGHT = 4

    def __init__(self, config: Optional[RunConfig] = None,
                 max_inflight: Optional[int] = None, **overrides) -> None:
        if config is None:
            config = RunConfig.resolve(**overrides)
        elif not isinstance(config, RunConfig):
            raise ConfigurationError(
                f"config must be a RunConfig, got {type(config).__name__} "
                "(field overrides go through keyword arguments)")
        elif overrides:
            config = config.override(**overrides)
        if max_inflight is not None and max_inflight < 1:
            raise ConfigurationError("max_inflight must be >= 1")
        self.config = config
        self.max_inflight = max_inflight or self.MAX_INFLIGHT
        #: The one TechnologyCache every run of this session shares.
        self.cache = TechnologyCache()
        self._lock = threading.Lock()
        self._executor: Optional[Executor] = None
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._closed = False

    def __cache_fingerprint__(self) -> str:
        # Like the executor: pure machinery, must not enter content keys.
        return type(self).__name__

    # -- lazy wiring -------------------------------------------------------

    @property
    def executor(self) -> Executor:
        """The lazily built executor (one per session, shared by runs)."""
        with self._lock:
            if self._executor is None:
                self._executor = self._build_executor()
            return self._executor

    def _build_executor(self) -> Executor:
        config = self.config
        persistent = None
        if config.cache_mode != "off":
            persistent = ResultCache(root=config.cache_root,
                                     mode=config.cache_mode)
        distrib = None
        if config.distrib_root is not None:
            from repro.analysis.distrib import DistribBackend

            distrib = DistribBackend(root=config.distrib_root,
                                     shard_size=config.shard_size,
                                     executor_workers=config.workers)
        return Executor(workers=config.workers, cache=self.cache,
                        persistent=persistent, distrib=distrib)

    @property
    def persistent(self) -> Optional[ResultCache]:
        """The persistent cache behind this session (``None`` when off)."""
        return self.executor.persistent

    @property
    def distrib(self):
        """The distrib backend behind this session (``None`` when local)."""
        return self.executor.distrib

    # -- execution ---------------------------------------------------------

    @staticmethod
    def _merge_quantities(quantities, named) -> Dict[str, Callable]:
        merged: Dict[str, Callable] = dict(quantities or {})
        for name, fn in named.items():
            if name in merged:
                raise ConfigurationError(
                    f"quantity {name!r} given both in the mapping and as "
                    "a keyword")
            merged[name] = fn
        if not merged:
            raise ConfigurationError("at least one quantity is required")
        return merged

    def run(self, plan: ExperimentPlan,
            quantities: Optional[Mapping[str, Callable]] = None,
            **named: Callable) -> ExperimentResult:
        """Execute *plan* synchronously; quantities as a mapping or kwargs.

        ``session.run(plan, energy=fn)`` and
        ``session.run(plan, {"energy": fn})`` are the same call; both
        delegate to :meth:`Executor.run
        <repro.analysis.runner.Executor.run>` on the session's executor,
        so the persistent cache and distrib backend (when configured)
        participate exactly as in the hand-wired form.
        """
        return self.executor.run(plan, self._merge_quantities(quantities,
                                                              named))

    def submit(self, plan: ExperimentPlan,
               quantities: Optional[Mapping[str, Callable]] = None,
               **named: Callable) -> RunHandle:
        """Start *plan* asynchronously; returns a :class:`RunHandle`.

        Runs execute on the session's thread pool (at most
        ``max_inflight`` concurrently; further submits queue), all
        against the shared executor stack — so with a distrib backend,
        shards of different submitted plans interleave across the fleet,
        and with a persistent cache every finished plan lands in the one
        store.  Results are bit-identical to :meth:`run`; while runs
        overlap, only the *counter* fields of their provenance
        (technology-cache hits/misses) are approximate, because they are
        deltas against the shared cache.
        """
        merged = self._merge_quantities(quantities, named)
        executor = self.executor  # takes self._lock; build before entering
        with self._lock:
            if self._closed:
                raise ConfigurationError(
                    "session is closed; create a new Session")
            if self._pool is None:
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.max_inflight,
                    thread_name_prefix="repro-session")
            # Submit under the lock: a concurrent close() otherwise shuts
            # the pool between the _closed check and the submit, leaking
            # a RuntimeError where the contract promises the
            # ConfigurationError above.
            future = self._pool.submit(executor.run, plan, merged)
        return RunHandle(plan=plan, names=tuple(merged), future=future)

    def gather(self, *handles) -> List[ExperimentResult]:
        """Block until every handle finishes; results in argument order.

        Accepts handles variadically or as one iterable:
        ``session.gather(h1, h2)`` == ``session.gather([h1, h2])``.
        The first failed run re-raises its exception.
        """
        if len(handles) == 1 and not isinstance(handles[0], RunHandle):
            handles = tuple(handles[0])
        return [handle.result() for handle in handles]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Drain in-flight submits and release the thread pool.

        Idempotent.  The executor stays usable for synchronous
        :meth:`run` calls; only :meth:`submit` is refused afterwards.
        """
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# The process-default session (what the legacy sweep() helper rides on)


_DEFAULT_SESSION: Optional[Session] = None
_DEFAULT_LOCK = threading.Lock()


def default_session() -> Session:
    """The process-wide session, resolved lazily from env/``repro.toml``.

    Ad-hoc helpers that predate the session layer
    (:func:`repro.analysis.sweep.sweep`) execute here when not handed an
    explicit executor, so they share the same technology cache and
    persistent store as everything else instead of a parallel code path.
    """
    global _DEFAULT_SESSION
    with _DEFAULT_LOCK:
        if _DEFAULT_SESSION is None:
            _DEFAULT_SESSION = Session()
        return _DEFAULT_SESSION


def reset_default_session() -> None:
    """Drop the process-default session (tests, or after env changes)."""
    global _DEFAULT_SESSION
    with _DEFAULT_LOCK:
        stale, _DEFAULT_SESSION = _DEFAULT_SESSION, None
    if stale is not None:
        stale.close()


# ---------------------------------------------------------------------------
# Self-test entry point (python -m repro.analysis.session --selftest)


def _selftest(workers: int = 2) -> int:
    """Resolution-precedence and run/submit bit-identity checks."""
    import tempfile

    failures = 0

    def check(label: str, ok: bool) -> None:
        nonlocal failures
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
        if not ok:
            failures += 1

    print("session selftest")

    # -- RunConfig resolution ---------------------------------------------
    empty: Dict[str, str] = {}

    def hermetic(environ, **kw):
        # config_file=False: a repro.toml in the invoking directory must
        # not fail (or reshape) the selftest's default-resolution checks.
        return RunConfig.resolve(environ=environ, config_file=False, **kw)

    base = hermetic(empty)
    check("defaults resolve (serial, cache off, no fleet)",
          base.workers == 0 and base.cache_mode == "off"
          and base.cache_root is None and base.distrib_root is None
          and all(src == "default" for src in base.sources.values()))
    env = {"REPRO_WORKERS": "3", "REPRO_CACHE_MODE": "rw"}
    from_env = hermetic(env)
    check("environment beats defaults",
          from_env.workers == 3 and from_env.cache_mode == "rw"
          and from_env.sources["workers"] == "env REPRO_WORKERS")
    overridden = hermetic(env, workers=1, cache_mode="off")
    check("kwargs beat environment",
          overridden.workers == 1 and overridden.cache_mode == "off")
    if tomllib is not None:
        with tempfile.TemporaryDirectory() as tmp:
            config_path = Path(tmp) / "repro.toml"
            config_path.write_text(
                '[run]\nworkers = "auto"\nshard_size = 9\n')
            from_file = RunConfig.resolve(environ=empty,
                                          config_file=str(config_path))
            check("repro.toml beats defaults ('auto' workers parse)",
                  from_file.workers == RunConfig.available_cpus()
                  and from_file.shard_size == 9
                  and from_file.sources["shard_size"].startswith("file "))
            file_vs_env = RunConfig.resolve(environ=env,
                                            config_file=str(config_path))
            check("environment beats repro.toml", file_vs_env.workers == 3)
    check("parse_workers('auto') is the available-cpu count",
          RunConfig.parse_workers("auto") == RunConfig.available_cpus())
    check("parse_root maps the benchmark spellings",
          RunConfig.parse_root("fs") == ".repro_cache"
          and RunConfig.parse_root("") is None
          and RunConfig.parse_root("obj:http://h:1/b") == "http://h:1/b")
    try:
        RunConfig.parse_root("obj:not-a-url")
    except ConfigurationError:
        check("malformed obj: spec is rejected", True)
    else:
        check("malformed obj: spec is rejected", False)

    # -- Session bit-identity ---------------------------------------------
    plan = ExperimentPlan.sweep("vdd", [0.25 + 0.05 * i for i in range(10)])
    quantities = {"delay": _selftest_delay, "energy": _selftest_energy}
    serial = Session(hermetic(empty)).run(plan, quantities)
    with Session(hermetic(empty, workers=workers)) as pooled:
        direct = pooled.run(plan, quantities)
        handles = [pooled.submit(plan, quantities) for _ in range(3)]
        submitted = pooled.gather(handles)
    check("session.run matches the serial executor bit for bit",
          direct.values == serial.values)
    check("3 concurrent submit() runs all match bit for bit",
          all(result.values == serial.values for result in submitted))
    check("submitted provenance is coherent",
          all(result.provenance.kind == "sweep"
              and result.provenance.points == plan.point_count
              and result.provenance.quantities == ("delay", "energy")
              for result in submitted))

    # -- persistent cache through the facade ------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        with Session(hermetic(empty, cache_mode="rw",
                              cache_root=tmp)) as caching:
            first = caching.run(plan, quantities)
            second = caching.run(plan, quantities)
        check("session-owned persistent cache round-trips",
              first.provenance.persistent_misses == plan.point_count
              and second.provenance.executor == "persistent-cache"
              and second.values == serial.values)

    print("selftest:", "PASS" if failures == 0 else f"{failures} FAILURES")
    return 0 if failures == 0 else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI shim mirroring the sibling analysis modules."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.session",
        description="Smoke-test the Session facade and RunConfig "
                    "resolution chain.")
    parser.add_argument("--selftest", action="store_true",
                        help="run the resolution + bit-identity checks")
    parser.add_argument("--workers", type=int, default=2,
                        help="pool size for the parallel side (default: 2)")
    args = parser.parse_args(argv)
    if not args.selftest:
        parser.print_help()
        return 2
    return _selftest(workers=args.workers)


if __name__ == "__main__":
    import sys

    # Under ``python -m`` this file executes as ``__main__`` while the
    # package import created a second copy as ``repro.analysis.session``;
    # dispatch to the canonical copy so the classes the selftest builds
    # are the ones the rest of the package uses.
    from repro.analysis.session import main as _canonical_main

    sys.exit(_canonical_main())
