"""``python -m repro.analysis.lint`` — alias of ``python -m repro check``."""

import sys

from repro.analysis.lint import main

if __name__ == "__main__":
    sys.exit(main())
