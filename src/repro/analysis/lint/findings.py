"""The finding model and the stable ``--json`` report schema.

A :class:`Finding` is one invariant violation: rule id, repo path,
line, a one-line message and a one-line fix hint.  The JSON document
(:func:`report_json`) is the machine contract the CI gate and the
dashboard consume — its field set is versioned and append-only:

.. code-block:: json

    {
      "version": 1,
      "files": 97,
      "findings": [
        {"rule": "R1", "path": "src/repro/models/gate.py", "line": 12,
         "message": "...", "hint": "..."}
      ],
      "counts": {"R1": 1},
      "suppressed": 3
    }

``findings`` is sorted by ``(path, line, rule)``; ``suppressed`` counts
violations silenced by ``# repro: allow[...]`` comments; ``counts``
only carries rules with at least one finding.  Existing fields never
change meaning; new fields may be added (consumers must ignore
unknowns) — the same evolution policy as the ``/v1/status`` feeds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Sequence

__all__ = ["Finding", "SCHEMA_VERSION", "report_json", "report_text"]

#: Bumped only on a breaking change to the JSON document shape.
SCHEMA_VERSION = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One invariant violation at one source location."""

    path: str       #: path as given to the checker (repo-relative in CI)
    line: int       #: 1-based line of the offending node
    rule: str       #: rule id, e.g. ``"R1"``
    message: str    #: what is wrong, one line
    hint: str       #: how to fix it, one line

    def as_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message, "hint": self.hint}


def report_json(findings: Sequence[Finding], *, files: int,
                suppressed: int) -> str:
    """The versioned JSON report document (see module docstring)."""
    ordered = sorted(findings)
    counts: Dict[str, int] = {}
    for finding in ordered:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return json.dumps({
        "version": SCHEMA_VERSION,
        "files": files,
        "findings": [finding.as_dict() for finding in ordered],
        "counts": counts,
        "suppressed": suppressed,
    }, indent=2, sort_keys=True)


def report_text(findings: Sequence[Finding], *, files: int,
                suppressed: int) -> List[str]:
    """Human-facing report lines: one per finding plus a summary line."""
    lines = [f"{finding.path}:{finding.line}: {finding.rule} "
             f"{finding.message}\n    hint: {finding.hint}"
             for finding in sorted(findings)]
    summary = (f"{len(findings)} finding(s) in {files} file(s)"
               if findings else f"clean: {files} file(s)")
    if suppressed:
        summary += f", {suppressed} suppressed"
    lines.append(summary)
    return lines
