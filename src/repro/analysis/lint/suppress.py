"""Inline suppressions: ``# repro: allow[RULE] -- reason``.

A finding is silenced when an allow comment naming its rule sits on the
finding's line, or in the block of comment-only lines directly above it
(so a justification too long for the 100-column budget can wrap onto
several comment lines).  Several rules may share one comment:
``# repro: allow[R2,R3] -- selftest scaffolding``.

The reason is not decoration — it is the *point*.  A suppression is a
recorded design decision ("this wall-clock read is the documented
pre-first-advance fallback"), so an allow with no reason, or one naming
a rule that does not exist, is itself a finding (rule ``R0``), and
``R0`` cannot be suppressed.  The suppressed count is surfaced in every
report so a quietly growing pile of allows is visible in CI.

Comments are read with :mod:`tokenize`, not a regex over raw lines, so
string literals that merely *look* like allow comments cannot silence
anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["ALLOW_RE", "Suppressions", "parse_suppressions"]

#: ``# repro: allow[R1]`` or ``# repro: allow[R2,R3] -- reason text``.
ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<reason>.*\S))?\s*$")


@dataclass(frozen=True)
class _Allow:
    line: int
    rules: Tuple[str, ...]
    reason: str
    comment_only_line: bool  #: nothing but the comment on its line


class Suppressions:
    """The parsed allow comments of one file."""

    def __init__(self, allows: List[_Allow],
                 comment_only_lines: frozenset = frozenset()) -> None:
        self._by_line: Dict[int, _Allow] = {a.line: a for a in allows}
        self._allows = allows
        self._comment_only = comment_only_lines

    def covers(self, line: int, rule: str) -> bool:
        """Whether a finding of *rule* on *line* is suppressed."""
        if rule == "R0":        # suppression hygiene is not suppressible
            return False
        allow = self._by_line.get(line)
        if allow is not None and rule in allow.rules:
            return True
        # Walk the block of comment-only lines directly above the
        # finding: a wrapped justification keeps its allow in force.
        above = line - 1
        while above in self._comment_only:
            allow = self._by_line.get(above)
            if allow is not None and rule in allow.rules:
                return True
            above -= 1
        return False

    def hygiene_problems(self, known_rules) -> List[Tuple[int, str]]:
        """``(line, message)`` pairs for malformed allows (rule R0)."""
        problems = []
        for allow in self._allows:
            if not allow.reason:
                problems.append((
                    allow.line,
                    "bare 'repro: allow' with no reason — a suppression "
                    "is a recorded design decision, not a mute button"))
            unknown = [rule for rule in allow.rules
                       if rule not in known_rules]
            if unknown or not allow.rules:
                problems.append((
                    allow.line,
                    f"allow names unknown rule(s) "
                    f"{', '.join(unknown) or '(none)'}"))
        return problems


def parse_suppressions(source: str) -> Suppressions:
    """All ``repro: allow`` comments of *source* (empty on tokenize errors)."""
    allows: List[_Allow] = []
    comment_only = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return Suppressions([])
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        only = token.line.strip() == token.string.strip()
        if only:
            comment_only.add(token.start[0])
        match = ALLOW_RE.match(token.string)
        if match is None:
            continue
        rules = tuple(rule.strip() for rule in
                      match.group("rules").split(",") if rule.strip())
        allows.append(_Allow(
            line=token.start[0],
            rules=rules,
            reason=(match.group("reason") or "").strip(),
            comment_only_line=only))
    return Suppressions(allows, frozenset(comment_only))
