"""R4 — lock discipline in the serve layer and across pickle boundaries.

Two checks, both born from PR 8's threaded dispatchers:

**R4 shared-state escape analysis** (scope: ``analysis/serve/``).  For
every class that arms a ``threading.Lock``/``Condition`` in
``__init__``, any instance attribute *written* by a method after
construction is "guarded", and every access to a guarded attribute —
read or write — must sit lexically inside a ``with self._lock:`` /
``with self._cond:`` block.  The analysis is intra-class and lexical
(the "simple escape analysis" of the issue): it additionally treats a
private method as lock-held when every one of its call sites inside
the class is itself under the lock, which is how ``_refuse``-style
helpers avoid false positives without annotations.

**R4 payload reachability** (scope: everywhere).  A class that owns a
raw threading lock *and* participates in the payload/caching protocol
(defines ``__cache_fingerprint__``) is exactly the kind of object a
quantity closure can drag into a pickled executor payload — so it must
define ``__getstate__`` (or ``__reduce__``) that drops the lock, the
way :class:`~repro.analysis.runner.TechnologyCache` does.  Classes
that should *never* cross (a live ``Session``, an ``ObjectStore`` with
its HTTP state) keep their loud pickle failure and carry an annotated
allow instead.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.lint.astutil import dotted_name
from repro.analysis.lint.engine import SourceFile
from repro.analysis.lint.findings import Finding

__all__ = ["RULES", "LockDisciplineRule", "PayloadLockRule"]

_LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
})

#: Methods that run before/after the object is shared across threads.
_EXEMPT_METHODS = frozenset({
    "__init__", "__new__", "__getstate__", "__setstate__", "__del__",
})

#: Container-mutator method names counted as writes to the receiver attr.
_MUTATORS = frozenset({
    "append", "appendleft", "add", "insert", "extend", "update", "pop",
    "popleft", "popitem", "remove", "discard", "clear", "setdefault",
    "move_to_end", "sort", "reverse",
})


def _lock_attrs(cls: ast.ClassDef, sf: SourceFile) -> Set[str]:
    """Instance attrs assigned a threading lock/condition in __init__."""
    attrs: Set[str] = set()
    for stmt in cls.body:
        if not (isinstance(stmt, ast.FunctionDef)
                and stmt.name == "__init__"):
            continue
        for node in ast.walk(stmt):
            if not (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)):
                continue
            if sf.imports.canonical(node.value.func) not in _LOCK_FACTORIES:
                continue
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    attrs.add(target.attr)
    return attrs


def _method_names(cls: ast.ClassDef) -> Set[str]:
    return {stmt.name for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))}


class _Access:
    __slots__ = ("attr", "method", "locked", "write", "line")

    def __init__(self, attr: str, method: str, locked: bool, write: bool,
                 line: int) -> None:
        self.attr, self.method = attr, method
        self.locked, self.write, self.line = locked, write, line


def _is_lock_with(item: ast.withitem, lock_attrs: Set[str]) -> bool:
    expr = item.context_expr
    name = dotted_name(expr)
    return (name is not None and name.startswith("self.")
            and name.split(".", 1)[1] in lock_attrs)


def _scan_method(method: ast.FunctionDef, lock_attrs: Set[str],
                 methods: Set[str]) -> Tuple[List[_Access],
                                             List[Tuple[str, bool]]]:
    """(attribute accesses, intra-class ``self.M()`` call sites) of one body."""
    accesses: List[_Access] = []
    calls: List[Tuple[str, bool]] = []

    def visit(node: ast.AST, locked: bool) -> None:
        if isinstance(node, ast.With):
            inner = locked or any(_is_lock_with(item, lock_attrs)
                                  for item in node.items)
            for item in node.items:
                visit(item, locked)
            for stmt in node.body:
                visit(stmt, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)) and node is not method:
            # Nested defs run later, possibly without the lock; their
            # bodies are conservatively treated as unlocked.
            for child in ast.iter_child_nodes(node):
                visit(child, False)
            return
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id == "self" \
                and node.func.attr in methods:
            calls.append((node.func.attr, locked))
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self" \
                and node.attr not in lock_attrs \
                and node.attr not in methods:
            write = isinstance(node.ctx, (ast.Store, ast.Del))
            parent = getattr(node, "_lint_parent", None)
            if isinstance(parent, ast.Subscript) and parent.value is node \
                    and isinstance(parent.ctx, (ast.Store, ast.Del)):
                write = True
            if isinstance(parent, ast.Attribute) \
                    and parent.value is node \
                    and parent.attr in _MUTATORS:
                grand = getattr(parent, "_lint_parent", None)
                if isinstance(grand, ast.Call) and grand.func is parent:
                    write = True
            accesses.append(_Access(node.attr, method.name, locked, write,
                                    node.lineno))
        for child in ast.iter_child_nodes(node):
            visit(child, locked)

    for stmt in method.body:
        visit(stmt, False)
    return accesses, calls


class LockDisciplineRule:
    id = "R4"
    summary = ("serve-layer shared state must be accessed under "
               "self._lock; payload classes must not pickle locks")

    SCOPE_PREFIXES = ("analysis/serve/",)

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        if not sf.module_key.startswith(self.SCOPE_PREFIXES):
            return
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(sf, node)

    def _check_class(self, sf: SourceFile,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        lock_attrs = _lock_attrs(cls, sf)
        if not lock_attrs:
            return
        methods = _method_names(cls)
        per_method: Dict[str, List[_Access]] = {}
        call_records: List[Tuple[str, bool, str]] = []  # callee, locked, by
        for stmt in cls.body:
            if not isinstance(stmt, ast.FunctionDef):
                continue
            accesses, calls = _scan_method(stmt, lock_attrs, methods)
            per_method[stmt.name] = accesses
            for callee, locked in calls:
                call_records.append((callee, locked, stmt.name))
        # A method whose every intra-class call site holds the lock is
        # treated as lock-held (iterate so helper->helper chains settle).
        held: Set[str] = set()
        for _ in range(len(per_method) + 1):
            grown = set()
            for name in per_method:
                sites = [(locked, caller) for callee, locked, caller
                         in call_records if callee == name]
                if sites and all(locked or caller in held
                                 for locked, caller in sites):
                    grown.add(name)
            if grown == held:
                break
            held = grown
        guarded = {
            access.attr
            for name, accesses in per_method.items()
            if name not in _EXEMPT_METHODS
            for access in accesses if access.write
        }
        for name, accesses in per_method.items():
            if name in _EXEMPT_METHODS or name in held:
                continue
            for access in accesses:
                if access.attr in guarded and not access.locked:
                    kind = "write to" if access.write else "read of"
                    yield sf.finding(
                        "R4", access.line,
                        f"{kind} dispatcher-shared attribute "
                        f"'self.{access.attr}' outside "
                        f"'with self.{sorted(lock_attrs)[0]}' "
                        f"({cls.name}.{name})",
                        "wrap the access in the owning lock, or allow it "
                        "with the reason the caller already holds it")


class PayloadLockRule:
    id = "R4"  # same family; engine dedupes by object, not id
    summary = "payload-protocol classes must drop locks in __getstate__"

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _lock_attrs(node, sf):
                continue
            names = _method_names(node)
            has_fingerprint = ("__cache_fingerprint__" in names
                               or any(isinstance(stmt, ast.Assign)
                                      and any(isinstance(t, ast.Name)
                                              and t.id
                                              == "__cache_fingerprint__"
                                              for t in stmt.targets)
                                      for stmt in node.body))
            if not has_fingerprint:
                continue
            if names & {"__getstate__", "__reduce__", "__reduce_ex__"}:
                continue
            yield sf.finding(
                "R4", node.lineno,
                f"class '{node.name}' owns a threading lock and a "
                "__cache_fingerprint__ (payload protocol) but no "
                "__getstate__ — pickling into an executor payload "
                "would fail on the lock",
                "define __getstate__/__setstate__ that drop and re-arm "
                "the lock (see TechnologyCache), or allow with the "
                "reason the class must never cross a process boundary")


class _CombinedR4:
    """One registry entry running both R4 checks."""

    id = "R4"
    summary = LockDisciplineRule.summary

    def __init__(self) -> None:
        self._escape = LockDisciplineRule()
        self._payload = PayloadLockRule()

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        yield from self._escape.check(sf)
        yield from self._payload.check(sf)


RULES = (_CombinedR4(),)
