"""Project-invariant static analysis: ``python -m repro check``.

The stack's correctness story — bit-identical determinism across
executors, all persistence through ``CacheStore``, skew-free monotonic
leases, lock-disciplined dispatchers, shared batched/per-point cache
keys — lives in docs and tests.  This package turns it into
machine-checked invariants over the AST of ``src/``:

====  =====================================================================
rule  invariant
====  =====================================================================
R0    lint meta: files must parse; every ``repro: allow`` carries a reason
R1    model layer / point functions / fuzzer invariants read no clocks and
      no global RNG state (seeded ``SeedSequence`` streams only)
R2    cache/distrib/serve modules do no raw ``open``/``os``/pathlib I/O
      outside the ``LocalFSStore``/object-server allowlist
R3    lease/staleness logic consumes ``time.monotonic`` only
R4    serve-layer shared state is accessed under ``self._lock``; payload
      classes drop locks in ``__getstate__``
R5    explicit batched/per-point kernel pairs share ``__cache_fingerprint__``
====  =====================================================================

::

    python -m repro check                      # scan the installed repro/
    python -m repro check src/repro/models     # scan specific paths
    python -m repro check --json               # stable report document
    python -m repro check --rule R1            # one rule only
    python -m repro check --select R1,R2 --ignore R2
    python -m repro check --selftest           # fixture corpus + clean tree

False positives are silenced inline with ``# repro: allow[RULE] --
reason`` (same line, or a comment-only line directly above); a bare
allow with no reason is itself a finding.  Exit status: 0 clean, 1
findings, 2 usage error.  The rule catalogue, suppression policy and
JSON schema live in ``docs/static-analysis.md``.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.lint.engine import (RULES, check_paths,  # noqa: F401
                                        default_root, known_rule_ids)
from repro.analysis.lint.findings import (Finding,  # noqa: F401
                                          SCHEMA_VERSION, report_json,
                                          report_text)

__all__ = ["Finding", "SCHEMA_VERSION", "check_paths", "default_root",
           "main", "report_json", "report_text"]


def _split(value: Optional[str]) -> List[str]:
    return [item.strip() for item in (value or "").split(",")
            if item.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro check`` — returns the process exit code."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro check",
        description="Check the source tree against the project "
                    "invariants (determinism, store layering, clock and "
                    "lock discipline, batched cache-key hygiene).")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories (default: the "
                             "installed repro package)")
    parser.add_argument("--json", action="store_true",
                        help="emit the versioned JSON report instead of "
                             "text (docs/static-analysis.md)")
    parser.add_argument("--rule", action="append", default=[],
                        metavar="ID", help="run only this rule "
                                           "(repeatable)")
    parser.add_argument("--select", default=None, metavar="LIST",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--ignore", default=None, metavar="LIST",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--selftest", action="store_true",
                        help="run the embedded known-bad/known-good "
                             "corpus, then require a clean source tree")
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.selftest:
        return _selftest()
    select = _split(args.select) + list(args.rule)
    paths = args.paths or [default_root()]
    missing = [path for path in paths if not path.exists()]
    if missing:
        print(f"error: no such path(s): "
              f"{', '.join(str(path) for path in missing)}",
              file=sys.stderr)
        return 2
    try:
        findings, files, suppressed = check_paths(
            paths, select=select or None, ignore=_split(args.ignore) or None)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(report_json(findings, files=files, suppressed=suppressed))
    else:
        for line in report_text(findings, files=files,
                                suppressed=suppressed):
            print(line)
    return 1 if findings else 0


# ---------------------------------------------------------------------------
# Selftest: the gate must have teeth, and the tree must be clean.

_BAD_SNIPPETS = {
    # rule → (relative path inside a fake repro/ tree, source)
    "R1": ("models/seeded_violation.py",
           "import time\n\n\ndef point(x):\n    return x * time.time()\n"),
    "R2": ("analysis/serve/raw_io.py",
           "def save(path, data):\n"
           "    with open(path, 'w') as fh:\n        fh.write(data)\n"),
    "R3": ("analysis/distrib.py",
           "import time\n\n\ndef lease_expired(heartbeat, ttl):\n"
           "    return time.time() - heartbeat > ttl\n"),
    "R4": ("analysis/serve/svc.py",
           "import threading\n\n\nclass Svc:\n"
           "    def __init__(self):\n"
           "        self._lock = threading.Lock()\n"
           "        self.done = 0\n\n"
           "    def finish(self):\n        self.done += 1\n"),
    "R5": ("analysis/campaign/pairing.py",
           "from repro.analysis.runner import batched\n\n\n"
           "def kernel(tech, xs):\n    return xs\n\n\n"
           "def point(tech, x):\n    return x\n\n\n"
           "q = batched(kernel, point=point)\n"),
}

_GOOD_SNIPPET = (
    "models/seeded_ok.py",
    "import numpy as np\n\n\ndef draw(seed, i):\n"
    "    rng = np.random.default_rng(np.random.SeedSequence((seed, i)))\n"
    "    return rng.normal()\n")

_SUPPRESSED_SNIPPET = (
    "models/annotated.py",
    "import time\n\n\ndef stamp(x):\n"
    "    # selftest fixture exercising the allow path end to end\n"
    "    return time.time() + x  "
    "# repro: allow[R1] -- selftest fixture, never executed\n")


def _selftest() -> int:
    """Corpus check + clean-tree check; prints PASS/FAIL, returns failures."""
    import tempfile

    failures = 0

    def check(label: str, ok: bool) -> None:
        nonlocal failures
        print(f"  {'ok  ' if ok else 'FAIL'} {label}")
        failures += 0 if ok else 1

    print("lint selftest")
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "repro"
        for rule, (rel, source) in _BAD_SNIPPETS.items():
            target = root / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source)
            findings, _, _ = check_paths([target])
            check(f"{rule}: seeded violation is flagged",
                  any(finding.rule == rule for finding in findings))
        for rel, source in (_GOOD_SNIPPET,):
            target = root / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source)
            findings, _, _ = check_paths([target])
            check("seeded-generator snippet passes clean", not findings)
        rel, source = _SUPPRESSED_SNIPPET
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
        findings, _, suppressed = check_paths([target])
        check("allow comment suppresses and is counted",
              not findings and suppressed == 1)
        findings, _, _ = check_paths(
            [root / _BAD_SNIPPETS["R1"][0]], select=["R2"])
        check("--select scopes rules", not findings)
    tree = default_root()
    findings, files, suppressed = check_paths([tree])
    for finding in findings[:10]:
        print(f"    {finding.path}:{finding.line}: {finding.rule} "
              f"{finding.message}")
    check(f"source tree is clean ({files} files, "
          f"{suppressed} suppressed)", not findings)
    print("selftest:", "PASS" if failures == 0 else f"{failures} FAILURES")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
