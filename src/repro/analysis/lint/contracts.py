"""R5 — cache-key hygiene for batched kernels.

The batched-quantity protocol promises that a plan evaluated through a
``batched`` kernel and the same plan evaluated per-point answer from
the *same* persistent-cache entry.  Bare ``batched(kernel)`` gets this
for free — the per-point path is derived from the batch kernel, so the
composed fingerprint is shared by construction.  The moment a caller
supplies an explicit per-point twin (``batched(kernel, point=fn)``),
the two callables must share a ``__cache_fingerprint__``; otherwise the
batched and per-point runs silently fork cache keys and every warm
replay misses.

Statically checkable contract, enforced here:

* ``batched(kernel, point=fn)`` — both *kernel* and *fn* must be plain
  module-level names whose ``__cache_fingerprint__`` is assigned in the
  same module, with the *identical* expression on both assignments
  (textual AST equality — the one pattern that provably shares a key);
* constructing ``BatchedQuantity(...)`` anywhere outside
  ``analysis/runner.py`` — the class is the protocol's internals; going
  around :func:`~repro.analysis.runner.batched` skips the derived
  per-point path and with it the shared-key guarantee.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.analysis.lint.engine import SourceFile
from repro.analysis.lint.findings import Finding

__all__ = ["RULES", "BatchedContractRule"]

_BATCHED_NAMES = frozenset({
    "batched", "repro.analysis.runner.batched", "runner.batched",
})
_QUANTITY_NAMES = frozenset({
    "BatchedQuantity", "repro.analysis.runner.BatchedQuantity",
    "runner.BatchedQuantity",
})


def _fingerprint_assignments(tree: ast.Module) -> Dict[str, str]:
    """name → dumped RHS for every ``name.__cache_fingerprint__ = ...``."""
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (isinstance(target, ast.Attribute)
                    and target.attr == "__cache_fingerprint__"
                    and isinstance(target.value, ast.Name)):
                table[target.value.id] = ast.dump(node.value)
    return table


class BatchedContractRule:
    id = "R5"
    summary = ("an explicit batched/per-point kernel pair must share one "
               "__cache_fingerprint__")

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        fingerprints = None
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            canon = sf.imports.canonical(node.func)
            if canon in _QUANTITY_NAMES \
                    and sf.module_key != "analysis/runner.py":
                yield sf.finding(
                    "R5", node.lineno,
                    "direct BatchedQuantity construction bypasses "
                    "batched() and its derived per-point path",
                    "declare the kernel with "
                    "repro.analysis.runner.batched() so batched and "
                    "per-point runs share one cache key")
                continue
            if canon not in _BATCHED_NAMES:
                continue
            point = next((kw.value for kw in node.keywords
                          if kw.arg == "point"), None)
            if point is None:
                continue        # bare batched(): shared key by construction
            if fingerprints is None:
                fingerprints = _fingerprint_assignments(sf.tree)
            problem = self._pairing_problem(node, point, fingerprints)
            if problem is not None:
                yield sf.finding(
                    "R5", node.lineno, problem,
                    "assign the same __cache_fingerprint__ expression to "
                    "both kernels in this module, or drop point= and let "
                    "batched() derive the per-point path")

    @staticmethod
    def _pairing_problem(node: ast.Call, point: ast.AST,
                         fingerprints: Dict[str, str]) -> Optional[str]:
        batch = node.args[0] if node.args else None
        if not isinstance(batch, ast.Name) or not isinstance(point, ast.Name):
            return ("batched(..., point=...) with non-name kernels — the "
                    "shared __cache_fingerprint__ cannot be verified")
        batch_fp = fingerprints.get(batch.id)
        point_fp = fingerprints.get(point.id)
        if batch_fp is None or point_fp is None:
            missing = [name.id for name, fp in
                       ((batch, batch_fp), (point, point_fp)) if fp is None]
            return (f"explicit per-point twin but no __cache_fingerprint__ "
                    f"assignment for {', '.join(missing)} — batched and "
                    "per-point runs would fork cache keys")
        if batch_fp != point_fp:
            return (f"'{batch.id}' and '{point.id}' assign different "
                    "__cache_fingerprint__ expressions — the pair forks "
                    "cache keys")
        return None


RULES = (BatchedContractRule(),)
