"""The rule engine: walk files, parse, dispatch rules, apply allows.

One :class:`SourceFile` per checked file carries everything a rule may
need — the parsed tree (with parent links), the import alias map, the
suppression table and the *module key*.  The module key is the file's
path relative to the innermost directory named ``repro`` on its path
(``src/repro/analysis/cache.py`` → ``analysis/cache.py``), which is how
rules decide scope: the fixture corpus under ``tests/lint_fixtures/``
recreates a miniature ``repro/`` tree and is scoped exactly like the
real one, so known-bad fixtures exercise the same code paths CI runs.

Rules register themselves in :data:`RULES` at import; adding a rule is
one module with an object exposing ``id`` / ``summary`` / ``check``
plus a line in the docs catalogue (``docs/static-analysis.md``).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.lint.astutil import ImportMap, attach_parents
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.suppress import Suppressions, parse_suppressions

__all__ = ["RULES", "SourceFile", "check_paths", "default_root",
           "iter_python_files"]


@dataclass
class SourceFile:
    """One parsed file plus the context every rule needs."""

    path: Path          #: resolved filesystem path
    display: str        #: path as reported in findings
    module_key: str     #: path below the innermost ``repro/`` dir, or ""
    source: str
    tree: ast.Module
    imports: ImportMap
    suppressions: Suppressions

    def finding(self, rule: str, line: int, message: str,
                hint: str) -> Finding:
        return Finding(path=self.display, line=line, rule=rule,
                       message=message, hint=hint)


def _module_key(path: Path) -> str:
    parts = path.resolve().parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro" and index < len(parts) - 1:
            return "/".join(parts[index + 1:])
    return ""


def _display(path: Path) -> str:
    try:
        return os.path.relpath(path)
    except ValueError:      # different drive (windows) — keep absolute
        return str(path)


def load_source_file(path: Path) -> Tuple[Optional[SourceFile],
                                          Optional[Finding]]:
    """Parse one file; a syntax error becomes an (unsuppressible) finding."""
    source = path.read_text(encoding="utf-8")
    display = _display(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, Finding(
            path=display, line=exc.lineno or 1, rule="R0",
            message=f"file does not parse: {exc.msg}",
            hint="fix the syntax error; unparseable files cannot be "
                 "checked for invariants")
    attach_parents(tree)
    return SourceFile(path=path, display=display,
                      module_key=_module_key(path), source=source,
                      tree=tree, imports=ImportMap(tree),
                      suppressions=parse_suppressions(source)), None


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``.py`` under *paths* (files taken verbatim), sorted, deduped."""
    files = []
    for path in paths:
        if path.is_dir():
            files.extend(candidate for candidate in path.rglob("*.py")
                         if "__pycache__" not in candidate.parts)
        else:
            files.append(path)
    return sorted(set(path.resolve() for path in files))


def default_root() -> Path:
    """The installed ``repro`` package — what a bare ``repro check`` scans."""
    import repro

    return Path(repro.__file__).resolve().parent


def _registry() -> Dict[str, object]:
    # Imported here (not at module top) so engine <-> rule-module imports
    # can never cycle: rule modules import engine's SourceFile freely.
    from repro.analysis.lint import contracts, determinism, layering, locks

    rules = {}
    for module in (determinism, layering, locks, contracts):
        for rule in module.RULES:
            rules[rule.id] = rule
    return rules


#: rule id → rule object; populated lazily on first use.
RULES: Dict[str, object] = {}


def _rules() -> Dict[str, object]:
    if not RULES:
        RULES.update(_registry())
    return RULES


def known_rule_ids() -> Tuple[str, ...]:
    """Every selectable rule id, plus the meta rule ``R0``."""
    return ("R0",) + tuple(sorted(_rules()))


def check_paths(paths: Sequence[Path], *,
                select: Optional[Iterable[str]] = None,
                ignore: Optional[Iterable[str]] = None,
                ) -> Tuple[List[Finding], int, int]:
    """Run the enabled rules over *paths*.

    Returns ``(findings, files_checked, suppressed_count)``.  *select*
    restricts to the named rules, *ignore* drops rules from that set;
    the meta rule ``R0`` (suppression hygiene, parse errors) always
    runs and is never suppressible.
    """
    rules = _rules()
    enabled = set(select) if select else set(rules)
    enabled -= set(ignore or ())
    unknown = (set(select or ()) | set(ignore or ())) - set(rules) - {"R0"}
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    findings: List[Finding] = []
    suppressed = 0
    files = iter_python_files(paths)
    for path in files:
        source_file, parse_finding = load_source_file(path)
        if parse_finding is not None:
            findings.append(parse_finding)
            continue
        assert source_file is not None
        raw: List[Finding] = []
        for rule_id in sorted(enabled):
            raw.extend(rules[rule_id].check(source_file))
        for finding in raw:
            if source_file.suppressions.covers(finding.line, finding.rule):
                suppressed += 1
            else:
                findings.append(finding)
        if "R0" not in (ignore or ()):
            for line, message in source_file.suppressions.hygiene_problems(
                    known_rule_ids()):
                findings.append(source_file.finding(
                    "R0", line, message,
                    "write '# repro: allow[RULE] -- reason' with a real "
                    "rule id and a one-line justification"))
    return findings, len(files), suppressed
