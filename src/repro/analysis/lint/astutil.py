"""Shared AST plumbing for the invariant rules.

Three things every rule needs and none should reimplement:

* :class:`ImportMap` — resolve a ``Call``'s dotted callee back to its
  *canonical* module path (``np.random.default_rng`` →
  ``numpy.random.default_rng``; ``from time import time as t; t()`` →
  ``time.time``), so rules match on what is actually called rather than
  on whatever the file aliased it to;
* :func:`dotted_name` — the literal dotted chain of a
  ``Name``/``Attribute`` expression (``a.b.c``), or ``None`` for
  anything dynamic (subscripts, calls, lambdas);
* :func:`enclosing_scopes` / :func:`attach_parents` — lexical context:
  which class and function a node sits in, whether it sits under a
  ``with self._lock:`` block.

Everything here is pure ``ast`` — no imports of the checked code, so
the linter can never be confused (or crashed) by side effects of the
modules it reads.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "ImportMap",
    "attach_parents",
    "dotted_name",
    "enclosing_class",
    "enclosing_function_chain",
    "iter_calls",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, ``None`` if any link is dynamic."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Local name → canonical dotted module/object path for one module.

    Built from every ``import``/``from ... import`` in the tree
    (wherever it appears — function-local imports count, which matters
    because this codebase lazy-imports heavily in CLI paths).  A name
    bound by two different imports keeps the *last* binding, matching
    runtime semantics closely enough for invariant matching.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._alias: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    # ``import a.b`` binds ``a`` to package ``a``;
                    # ``import a.b as c`` binds ``c`` to ``a.b``.
                    target = alias.name if alias.asname else local
                    self._alias[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:  # relative imports stay project-local
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._alias[local] = f"{node.module}.{alias.name}"

    def canonical(self, node: ast.AST) -> Optional[str]:
        """The canonical dotted path of a callee expression, if static.

        The chain root is looked up in the alias table; an unknown root
        (a local variable, ``self``, a builtin) passes through verbatim,
        so ``open`` resolves to ``open`` and ``self._lock`` to
        ``self._lock``.
        """
        name = dotted_name(node)
        if name is None:
            return None
        root, _, rest = name.partition(".")
        target = self._alias.get(root, root)
        return f"{target}.{rest}" if rest else target


def attach_parents(tree: ast.AST) -> None:
    """Annotate every node with ``._lint_parent`` (one linear pass)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._lint_parent = node  # type: ignore[attr-defined]


def _parents(node: ast.AST) -> Iterator[ast.AST]:
    current = getattr(node, "_lint_parent", None)
    while current is not None:
        yield current
        current = getattr(current, "_lint_parent", None)


def enclosing_class(node: ast.AST) -> Optional[ast.ClassDef]:
    """The innermost class lexically containing *node* (after attach_parents)."""
    for parent in _parents(node):
        if isinstance(parent, ast.ClassDef):
            return parent
    return None


def enclosing_function_chain(node: ast.AST) -> Tuple[str, ...]:
    """Names of every enclosing function, outermost first."""
    chain: List[str] = []
    for parent in _parents(node):
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            chain.append(parent.name)
    return tuple(reversed(chain))


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node
