"""R1 — determinism: the model layer may not read clocks or global RNGs.

The stack's headline guarantee is that results are bit-identical across
every executor (serial / pool / batched / distrib / service) and that
Monte-Carlo sample *i* always draws from its own
``SeedSequence((seed, i))`` stream.  Both die the moment a point
function, quantity kernel or fuzzer invariant reads a wall clock or the
*global* random state: the value then depends on which process, at
which moment, happened to evaluate the point.

Scope — the deterministic domain, by module path below ``repro/``:

* the physics/model packages (``models``, ``sram``, ``sensors``,
  ``core``, ``power``, ``selftimed``, ``sim``) and ``units.py``;
* the campaign point functions and fuzzer invariants
  (``analysis/campaign/registry.py``,
  ``analysis/campaign/invariants.py``).

The execution layers (runner, cache, distrib, serve, obs) are *not* in
R1 scope — they measure wall time on purpose — and are covered by the
layering and clock rules instead.

Forbidden: every ``time.*`` clock, naive ``datetime``/``date``
constructors (``now``/``utcnow``/``today``), ``os.urandom``,
``uuid.uuid1``/``uuid.uuid4``, any call on the stdlib ``random``
module, and any ``numpy.random.*`` call that touches the global state.
Allowed: constructing seeded generators — ``SeedSequence``,
``Generator``, the bit generators, and ``default_rng(seed)`` *with* an
explicit seed argument (a bare ``default_rng()`` seeds from the OS and
is flagged).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.engine import SourceFile
from repro.analysis.lint.findings import Finding

__all__ = ["RULES", "DeterminismRule"]

#: Module-path prefixes (below ``repro/``) forming the deterministic domain.
DETERMINISTIC_PREFIXES = (
    "models/", "sram/", "sensors/", "core/", "power/", "selftimed/", "sim/",
)
DETERMINISTIC_FILES = (
    "units.py",
    "analysis/campaign/registry.py",
    "analysis/campaign/invariants.py",
)

_CLOCKS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.thread_time", "time.thread_time_ns",
})
_NAIVE_DATETIME = frozenset({
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})
_ENTROPY = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})

#: numpy.random members that *construct* seeded streams — the blessed path.
_NP_RANDOM_OK = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})


def in_scope(module_key: str) -> bool:
    return (module_key in DETERMINISTIC_FILES
            or module_key.startswith(DETERMINISTIC_PREFIXES))


class DeterminismRule:
    id = "R1"
    summary = ("model layer and point functions must not read clocks or "
               "global RNG state")

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        if not in_scope(sf.module_key):
            return
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            canon = sf.imports.canonical(node.func)
            if canon is None:
                continue
            verdict = self._verdict(canon, node)
            if verdict is not None:
                yield sf.finding("R1", node.lineno, verdict,
                                 "thread a seeded Generator "
                                 "(SeedSequence((seed, i))) or an injected "
                                 "clock through the call instead")

    @staticmethod
    def _verdict(canon: str, node: ast.Call):
        if canon in _CLOCKS:
            return (f"wall/CPU clock '{canon}' in deterministic code — "
                    "results would depend on when they run")
        if canon in _NAIVE_DATETIME:
            return (f"'{canon}' in deterministic code — results would "
                    "depend on when they run")
        if canon in _ENTROPY:
            return (f"OS entropy '{canon}' in deterministic code — "
                    "results would never replay")
        if canon.startswith("random.") and canon.count(".") == 1:
            return (f"stdlib global RNG '{canon}' — shared mutable state "
                    "makes results depend on evaluation order")
        if canon.startswith("numpy.random."):
            member = canon.split(".", 2)[2]
            if "." in member or member not in _NP_RANDOM_OK:
                return (f"global numpy RNG '{canon}' — shared state breaks "
                        "per-sample stream isolation")
            if member == "default_rng" and not node.args \
                    and not node.keywords:
                return ("'default_rng()' with no seed draws from the OS — "
                        "results would never replay")
        return None


RULES = (DeterminismRule(),)
