"""R2 — store layering, and R3 — clock discipline in lease logic.

**R2** guards the PR 4 architecture: every byte the cache/distrib/serve
stack persists flows through the :class:`~repro.analysis.cache.CacheStore`
interface, so the filesystem and object-store backends stay
byte-compatible and fault-injection tests wrap one seam.  Raw
``open``/``os.replace``/pathlib I/O inside ``analysis/cache.py``,
``analysis/distrib.py``, ``analysis/objstore.py`` or ``analysis/serve/``
is therefore a finding — except inside the named allowlist scopes that
*are* the backends (``LocalFSStore``, the object-store fake server),
where raw I/O is the whole job.

**R3** guards the PR 6 skew fix: whether a lease is stale is decided by
a per-reader *monotonic* stopwatch, never by comparing another
machine's wall clock against ours.  Inside lease/staleness functions
(name contains ``lease`` or ``stale`` in the store layers) any
``time.time``/``datetime`` read is a finding.  The three deliberate
wall-clock touch points that survive — advisory heartbeat timestamps
in lease payloads and the documented pre-first-advance fallback —
carry ``repro: allow`` annotations explaining exactly why.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.lint.astutil import (dotted_name, enclosing_class,
                                         enclosing_function_chain)
from repro.analysis.lint.engine import SourceFile
from repro.analysis.lint.findings import Finding

__all__ = ["RULES", "StoreLayeringRule", "ClockDisciplineRule"]

#: Module keys (below ``repro/``) whose bytes must flow through CacheStore.
STORE_LAYER_FILES = ("analysis/cache.py", "analysis/distrib.py",
                     "analysis/objstore.py")
STORE_LAYER_PREFIXES = ("analysis/serve/",)

#: (module key, class name) scopes where raw I/O *is* the backend.
STORE_ALLOWLIST = frozenset({
    ("analysis/cache.py", "LocalFSStore"),
    ("analysis/objstore.py", "FakeObjectServer"),
    ("analysis/objstore.py", "_ObjectStoreHandler"),
})

_OS_FILE_OPS = frozenset({
    "os.replace", "os.rename", "os.link", "os.symlink", "os.unlink",
    "os.remove", "os.mkdir", "os.makedirs", "os.rmdir", "os.removedirs",
    "os.truncate", "os.open",
})
_PATHLIB_METHODS = frozenset({
    "write_text", "write_bytes", "read_text", "read_bytes", "unlink",
    "mkdir", "rmdir", "touch", "symlink_to", "hardlink_to", "link_to",
})
#: Flagged only in their one-positional-argument pathlib form —
#: ``str.replace(old, new)`` takes two, ``Path.replace(target)`` one.
_PATHLIB_UNARY_METHODS = frozenset({"rename", "replace"})

_WALL_CLOCKS = frozenset({
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


def _in_store_layer(module_key: str) -> bool:
    return (module_key in STORE_LAYER_FILES
            or module_key.startswith(STORE_LAYER_PREFIXES))


class StoreLayeringRule:
    id = "R2"
    summary = ("cache/distrib/serve I/O must flow through CacheStore, "
               "not raw open()/os/pathlib calls")

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        if not _in_store_layer(sf.module_key):
            return
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            offence = self._offence(sf, node)
            if offence is None:
                continue
            owner = enclosing_class(node)
            if owner is not None and (sf.module_key,
                                      owner.name) in STORE_ALLOWLIST:
                continue
            yield sf.finding("R2", node.lineno, offence,
                             "route the bytes through the CacheStore "
                             "interface (store.get/put_atomic/"
                             "put_if_absent/delete) or move the code "
                             "behind the backend allowlist")

    @staticmethod
    def _offence(sf: SourceFile, node: ast.Call) -> Optional[str]:
        canon = sf.imports.canonical(node.func)
        if canon == "open":
            return "raw builtin open() in a store-layer module"
        if canon is not None:
            if canon in _OS_FILE_OPS:
                return f"raw file operation '{canon}' in a store-layer module"
            if canon.startswith("shutil."):
                return f"'{canon}' bypasses the CacheStore interface"
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            unary_form = (attr in _PATHLIB_UNARY_METHODS
                          and len(node.args) == 1 and not node.keywords)
            if attr in _PATHLIB_METHODS or unary_form:
                receiver = dotted_name(node.func.value) or "<expr>"
                return (f"pathlib-style call '{receiver}.{attr}()' "
                        "in a store-layer module")
        return None


class ClockDisciplineRule:
    id = "R3"
    summary = ("lease/staleness logic may only consume time.monotonic — "
               "wall clocks reintroduce cross-machine skew")

    #: Function-name fragments that mark lease/staleness logic.
    NAME_FRAGMENTS = ("lease", "stale")

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        if not _in_store_layer(sf.module_key):
            return
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            canon = sf.imports.canonical(node.func)
            if canon not in _WALL_CLOCKS:
                continue
            chain = enclosing_function_chain(node)
            if not any(fragment in name.lower()
                       for name in chain
                       for fragment in self.NAME_FRAGMENTS):
                continue
            yield sf.finding(
                "R3", node.lineno,
                f"wall clock '{canon}' inside lease/staleness logic "
                f"('{chain[-1]}') — another machine's heartbeat compared "
                "against this clock skews",
                "judge staleness with the per-reader time.monotonic() "
                "stopwatch; keep wall-clock timestamps advisory")


RULES = (StoreLayeringRule(), ClockDisciplineRule())
