"""Energy/delay figures of merit used across the benchmark harness."""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


def minimum_energy_point(energy_fn: Callable[[float], float],
                         vdd_low: float, vdd_high: float,
                         points: int = 200) -> Tuple[float, float]:
    """Locate the supply voltage minimising energy per operation.

    Scans *points* evenly spaced voltages in ``[vdd_low, vdd_high]`` and
    returns ``(vdd_at_minimum, energy_at_minimum)``.  The existence of an
    interior minimum (leakage dominating below it, switching above it) is the
    paper's SI-SRAM headline result ("minimum energy point per read or write
    at 0.4 V").
    """
    if vdd_high <= vdd_low:
        raise ConfigurationError("vdd_high must exceed vdd_low")
    if points < 2:
        raise ConfigurationError("points must be >= 2")
    best_vdd = vdd_low
    best_energy = float("inf")
    for i in range(points):
        vdd = vdd_low + (vdd_high - vdd_low) * i / (points - 1)
        energy = energy_fn(vdd)
        if energy < best_energy:
            best_energy = energy
            best_vdd = vdd
    return best_vdd, best_energy


def energy_delay_product(energy_fn: Callable[[float], float],
                         delay_fn: Callable[[float], float],
                         vdd: float) -> float:
    """Energy × delay at one operating voltage."""
    return energy_fn(vdd) * delay_fn(vdd)


def ratio_between(fn: Callable[[float], float], vdd_a: float,
                  vdd_b: float) -> float:
    """``fn(vdd_a) / fn(vdd_b)`` — e.g. the paper's 5.8 pJ / 1.9 pJ ≈ 3×."""
    denominator = fn(vdd_b)
    if denominator == 0:
        return float("inf")
    return fn(vdd_a) / denominator


def crossover_voltage(fn_a: Callable[[float], float],
                      fn_b: Callable[[float], float],
                      vdd_low: float, vdd_high: float,
                      points: int = 400) -> Optional[float]:
    """Lowest voltage in the range where ``fn_a`` overtakes ``fn_b``.

    Used to find where Design 2's QoS crosses above Design 1's (Fig. 2) or
    where one energy curve dips under another.  Returns ``None`` when no
    crossover occurs in the range.
    """
    if vdd_high <= vdd_low:
        raise ConfigurationError("vdd_high must exceed vdd_low")
    if points < 2:
        raise ConfigurationError("points must be >= 2")
    previous_sign = None
    for i in range(points):
        vdd = vdd_low + (vdd_high - vdd_low) * i / (points - 1)
        difference = fn_a(vdd) - fn_b(vdd)
        sign = difference > 0
        if previous_sign is not None and sign and not previous_sign:
            return vdd
        previous_sign = sign
    return None


def monotonicity_violations(values: Sequence[float]) -> int:
    """Count adjacent pairs where the sequence decreases.

    Sensor transfer functions (count versus voltage, thermometer code versus
    voltage) must be monotonic to be invertible; this is the check the sensor
    benchmarks report.
    """
    violations = 0
    for a, b in zip(values, list(values)[1:]):
        if b < a:
            violations += 1
    return violations
